//! Token-level Rust source scanner.
//!
//! The linter deliberately avoids a full parser: every invariant it
//! checks is expressible over a *masked* view of the source in which
//! comment bodies and string-literal contents are blanked out (length
//! and newlines preserved, so byte offsets and line numbers stay
//! valid). The scanner understands exactly the lexical features that
//! matter for masking to be sound:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments,
//! * plain, byte, and raw string literals (`"…"`, `b"…"`, `r#"…"#`),
//! * character literals vs. lifetimes (`'a'` vs. `<'a>`),
//! * `#[cfg(test)]` regions (brace-matched on the masked text),
//! * `fn` item spans (name plus brace-matched body),
//! * `// lint:allow(RULE): reason` suppression markers.

/// A string literal extracted from the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrLit {
    /// Byte offset of the opening quote in the file.
    pub offset: usize,
    /// The literal's contents (escapes left as written).
    pub value: String,
    /// The identifier immediately preceding the literal's enclosing
    /// `(`, if the literal is the first argument of a call like
    /// `counter("name", …)` or `span_begin("name")`. `None` when the
    /// literal is not in first-argument position.
    pub callee: Option<String>,
}

/// A `fn` item: its name and the byte range of its body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte offset of the body's opening brace.
    pub body_start: usize,
    /// Byte offset one past the body's closing brace.
    pub body_end: usize,
}

/// A `// lint:allow(RULE-ID): reason` suppression marker.
///
/// A marker suppresses findings of the named rule on its own line and
/// on the immediately following line. Markers without a reason are
/// malformed and reported by the driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the marker appears on.
    pub line: usize,
    /// The rule id inside the parentheses.
    pub rule: String,
    /// The justification after the colon (trimmed; may be empty for a
    /// malformed marker).
    pub reason: String,
}

/// One scanned source file: raw text, masked text, and extracted
/// structure.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Original text.
    pub raw: String,
    /// Text with comment bodies and string contents replaced by
    /// spaces; same length and line structure as `raw`.
    pub masked: String,
    /// Byte offsets of line starts (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Extracted string literals, in file order.
    pub strings: Vec<StrLit>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// `fn` items with brace-matched bodies.
    pub functions: Vec<FnSpan>,
    /// Suppression markers found in comments.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Scans `raw` into a masked view plus extracted structure.
    #[must_use]
    pub fn parse(path: &str, raw: &str) -> Self {
        let (masked, strings_pos) = mask(raw);
        let line_starts = line_starts(raw);
        let mut file = Self {
            path: path.to_owned(),
            raw: raw.to_owned(),
            masked,
            line_starts,
            strings: Vec::new(),
            test_ranges: Vec::new(),
            functions: Vec::new(),
            suppressions: Vec::new(),
        };
        file.strings = strings_pos
            .into_iter()
            .map(|(start, end)| StrLit {
                offset: start,
                value: raw[start + 1..end].to_owned(),
                callee: callee_of(&file.masked, start),
            })
            .collect();
        file.test_ranges = find_test_ranges(&file.masked);
        file.functions = find_functions(&file.masked);
        file.suppressions = find_suppressions(raw);
        file
    }

    /// 1-based line number of a byte offset.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// 1-based column of a byte offset on its line.
    #[must_use]
    pub fn col_of(&self, offset: usize) -> usize {
        offset - self.line_starts[self.line_of(offset) - 1] + 1
    }

    /// The trimmed text of a 1-based line.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.raw.len(), |&e| e - 1);
        self.raw[start..end.min(self.raw.len())].trim()
    }

    /// Whether a byte offset falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Byte offsets of every occurrence of `pat` in the masked text
    /// outside `#[cfg(test)]` regions.
    #[must_use]
    pub fn code_matches(&self, pat: &str) -> Vec<usize> {
        find_all(&self.masked, pat)
            .into_iter()
            .filter(|&off| !self.in_test_code(off))
            .collect()
    }

    /// Like [`SourceFile::code_matches`] but requires `pat` to start
    /// and end at identifier boundaries (so `seal` does not match
    /// `unseal` or `sealed`).
    #[must_use]
    pub fn code_token_matches(&self, pat: &str) -> Vec<usize> {
        let bytes = self.masked.as_bytes();
        self.code_matches(pat)
            .into_iter()
            .filter(|&off| {
                let before_ok = off == 0 || !is_ident_byte(bytes[off - 1]);
                let after = off + pat.len();
                let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
                before_ok && after_ok
            })
            .collect()
    }

    /// The innermost `fn` whose body contains `offset`, if any.
    #[must_use]
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| offset >= f.body_start && offset < f.body_end)
            .min_by_key(|f| f.body_end - f.body_start)
    }

    /// Whether a suppression marker (see [`Suppression`]) for `rule`
    /// with a non-empty reason covers the given 1-based line.
    #[must_use]
    pub fn suppression_for(&self, rule: &str, line: usize) -> Option<&Suppression> {
        self.suppressions.iter().find(|s| {
            s.rule == rule && !s.reason.is_empty() && (s.line == line || s.line + 1 == line)
        })
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All byte offsets where `pat` occurs in `hay`.
fn find_all(hay: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    if pat.is_empty() {
        return out;
    }
    let mut from = 0;
    while let Some(i) = hay[from..].find(pat) {
        out.push(from + i);
        from += i + 1;
    }
    out
}

fn line_starts(raw: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in raw.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Masks comments and string contents. Returns the masked text plus
/// the (open-quote, close-quote) byte range of each string literal.
fn mask(raw: &str) -> (String, Vec<(usize, usize)>) {
    let bytes = raw.as_bytes();
    let mut out = bytes.to_vec();
    let mut strings = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank(&mut out, i);
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        blank(&mut out, i);
                        blank(&mut out, i + 1);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank(&mut out, i);
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if raw_string_hashes(bytes, i).is_some() => {
                // Raw (possibly byte) string: r"…", r#"…"#, br##"…"##.
                let (quote, hashes) = raw_string_hashes(bytes, i).unwrap_or((i, 0));
                let start = quote;
                let mut j = quote + 1;
                let closer_found = loop {
                    if j >= bytes.len() {
                        break None;
                    }
                    if bytes[j] == b'"' && has_hashes(bytes, j + 1, hashes) {
                        break Some(j);
                    }
                    j += 1;
                };
                let end = closer_found.unwrap_or(bytes.len().saturating_sub(1));
                for k in start + 1..end {
                    blank(&mut out, k);
                }
                if !raw[i..start].contains('b') {
                    strings.push((start, end));
                }
                i = end + 1 + hashes;
            }
            b'"' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                let end = j.min(bytes.len().saturating_sub(1));
                for k in start + 1..end {
                    blank(&mut out, k);
                }
                let is_byte = start > 0 && bytes[start - 1] == b'b';
                if !is_byte {
                    strings.push((start, end));
                }
                i = end + 1;
            }
            b'\'' => {
                // Distinguish a char literal from a lifetime. A char
                // literal is `'x'` or `'\…'`; a lifetime is `'ident`
                // with no closing quote right after.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    // Escaped char literal: scan to the closing quote.
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    for k in i + 1..j {
                        blank(&mut out, k);
                    }
                    i = j + 1;
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    // Simple char literal 'x' (including quote chars).
                    blank(&mut out, i + 1);
                    i += 3;
                } else {
                    // Lifetime; leave it.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    (String::from_utf8_lossy(&out).into_owned(), strings)
}

/// If position `i` begins a raw-string prefix (`r`, `br`, `rb` is not
/// valid Rust, `r#…`), returns (offset of the opening quote, number of
/// hashes).
fn raw_string_hashes(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        // Reject identifiers ending in r, like `ptr"…"` is impossible
        // but `for r in` could be followed by `"…"`? `r` then `"`
        // immediately is always a raw string when not preceded by an
        // identifier byte.
        if i > 0 && is_ident_byte(bytes[i - 1]) {
            return None;
        }
        Some((j, hashes))
    } else {
        None
    }
}

fn has_hashes(bytes: &[u8], from: usize, n: usize) -> bool {
    (0..n).all(|k| from + k < bytes.len() && bytes[from + k] == b'#')
}

fn blank(out: &mut [u8], i: usize) {
    if out[i] != b'\n' && out[i] != b'\r' {
        out[i] = b' ';
    }
}

/// The identifier immediately before the `(` that precedes offset
/// `quote` (skipping whitespace), i.e. the callee of
/// `ident("literal"…)` or `ident!("literal"…)`.
fn callee_of(masked: &str, quote: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut i = quote;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b'(' {
        return None;
    }
    i -= 1;
    if i > 0 && bytes[i - 1] == b'!' {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    if i == end {
        None
    } else {
        Some(masked[i..end].to_owned())
    }
}

/// Finds `#[cfg(test)]` (and `#[cfg(all(test, …))]`) items and returns
/// the byte range from the attribute through the item's closing brace
/// (or terminating semicolon).
fn find_test_ranges(masked: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for tag in ["#[cfg(test)]", "#[cfg(all(test"] {
        for start in find_all(masked, tag) {
            if let Some(end) = item_end(masked, start + tag.len()) {
                ranges.push((start, end));
            }
        }
    }
    ranges.sort_unstable();
    ranges
}

/// From `from`, skips to the first `{` and brace-matches to the item's
/// end; if a `;` appears before any `{`, the item ends there.
fn item_end(masked: &str, from: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b';' => return Some(i + 1),
            b'{' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(i + 1);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return None;
            }
            _ => i += 1,
        }
    }
    None
}

/// Extracts `fn` items: the identifier after the `fn` keyword and the
/// brace-matched body span. Trait-method declarations (ending in `;`
/// before any `{`) are skipped.
fn find_functions(masked: &str) -> Vec<FnSpan> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for off in find_all(masked, "fn ") {
        let before_ok = off == 0 || !is_ident_byte(bytes[off - 1]);
        if !before_ok {
            continue;
        }
        let mut i = off + 3;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = masked[name_start..i].to_owned();
        // Find the body: first `{` at angle-bracket/paren depth that
        // is not preceded by a terminating `;`.
        let mut j = i;
        let mut body = None;
        while j < bytes.len() {
            match bytes[j] {
                b';' => break,
                b'{' => {
                    body = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        let Some(body_start) = body else { continue };
        if let Some(body_end) = item_end(masked, body_start) {
            out.push(FnSpan {
                name,
                body_start,
                body_end,
            });
        }
    }
    out
}

/// Finds `// lint:allow(RULE): reason` markers in the raw text.
fn find_suppressions(raw: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in raw.lines().enumerate() {
        let Some(pos) = line.find("lint:allow(") else {
            continue;
        };
        // Must be inside a line comment.
        let Some(comment) = line.find("//") else {
            continue;
        };
        if comment > pos {
            continue;
        }
        let rest = &line[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_owned();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("")
            .to_owned();
        out.push(Suppression {
            line: idx + 1,
            rule,
            reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let a = 1; // unwrap() here\n/* outer /* nested */ still */ let b = 2;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("nested"));
        assert!(f.masked.contains("let b = 2;"));
        assert_eq!(f.masked.len(), src.len());
    }

    #[test]
    fn masks_string_contents_and_extracts_literals() {
        let src = r#"counter("prosper.x", 1); let s = "panic!(oops)";"#;
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.masked.contains("panic!"));
        assert_eq!(f.strings.len(), 2);
        assert_eq!(f.strings[0].value, "prosper.x");
        assert_eq!(f.strings[0].callee.as_deref(), Some("counter"));
        assert_eq!(f.strings[1].callee, None);
    }

    #[test]
    fn handles_raw_strings_and_escapes() {
        let src = "let a = r#\"quote \" inside\"#; let b = \"esc \\\" q\"; let c = 'x'; let d: &'static str = \"y\";";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.masked.contains("inside"));
        assert!(!f.masked.contains("esc"));
        assert_eq!(f.strings.len(), 3);
        assert_eq!(f.strings[0].value, "quote \" inside");
    }

    #[test]
    fn char_literal_with_escape_and_lifetime() {
        let src = "let nl = '\\n'; fn f<'a>(x: &'a str) -> char { '\\'' }";
        let f = SourceFile::parse("t.rs", src);
        // Lifetimes survive, char contents are blanked.
        assert!(f.masked.contains("<'a>"));
        assert!(!f.masked.contains("\\n"));
    }

    #[test]
    fn cfg_test_region_detection() {
        let src =
            "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::parse("t.rs", src);
        let hits = f.code_matches(".unwrap()");
        assert_eq!(hits.len(), 1);
        assert_eq!(f.line_of(hits[0]), 1);
    }

    #[test]
    fn fn_spans_and_enclosing() {
        let src = "fn recover_all(a: u32) -> u32 {\n    helper()\n}\nfn helper() -> u32 { 7 }\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.functions.len(), 2);
        let off = src.find("helper()").unwrap();
        assert_eq!(f.enclosing_fn(off).unwrap().name, "recover_all");
    }

    #[test]
    fn trait_method_declarations_are_skipped() {
        let src = "trait T { fn decl(&self); fn with_body(&self) { () } }";
        let f = SourceFile::parse("t.rs", src);
        let names: Vec<_> = f.functions.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"with_body"));
        assert!(!names.contains(&"decl"));
    }

    #[test]
    fn suppression_markers() {
        let src = "// lint:allow(PA-PANIC004): bootstrap cannot fail\nx.unwrap();\n// lint:allow(PA-DET005)\ny();\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert!(f.suppression_for("PA-PANIC004", 2).is_some());
        // Marker without a reason does not suppress.
        assert!(f.suppression_for("PA-DET005", 4).is_none());
    }

    #[test]
    fn token_matches_respect_boundaries() {
        let src = "a.seal(); b.unseal(); let sealed = 1;";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.code_token_matches("seal").len(), 1);
    }

    #[test]
    fn line_of_and_line_text() {
        let src = "line one\nline two\nline three";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(9), 2);
        assert_eq!(f.line_text(2), "line two");
    }

    #[test]
    fn col_of_is_one_based_per_line() {
        let src = "line one\nline two\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.col_of(0), 1);
        assert_eq!(f.col_of(src.find("two").unwrap()), 6);
    }
}
