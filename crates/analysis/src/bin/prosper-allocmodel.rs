//! Allocator linearizability + persist-ordering model checker.
//!
//! ```text
//! cargo run -p prosper-analysis --bin prosper-allocmodel [-- --json] [--quick] [--skip-self-test]
//! ```
//!
//! Explores every bounded-preemption schedule of the two-level
//! lock-free allocator model (root gate → subtree dec → bit claim;
//! free in reverse; reservation steal; staged persist + seal) at the
//! serial path and 1/2/3 concurrent workers, checking conservation
//! invariants at every state, linearizability of every completed
//! history, and recovery over every seal-consistent post-crash
//! durable image. Each configuration runs twice — without and with
//! explored-state memoization — and the summary reports both schedule
//! counts so the pruning win is visible. By default the *self-test*
//! also runs: each deliberately seeded ordering/persistency bug must
//! be detected. Exits nonzero when a correct configuration has
//! findings or a seeded bug goes undetected.

#![forbid(unsafe_code)]

use prosper_analysis::allocmodel::{AllocBug, AllocConfig, AllocModel, AllocViolation};
use prosper_analysis::diag::json_string;
use prosper_analysis::interleave::{explore_model, ExplorerConfig, ModelReport};
use prosper_telemetry as telemetry;

struct RunSpec {
    name: &'static str,
    cfg: AllocConfig,
    bound: usize,
}

fn correct_configs(quick: bool) -> Vec<RunSpec> {
    let mut specs = vec![
        RunSpec {
            name: "serial",
            cfg: AllocConfig {
                workers: 1,
                reservations: false,
                persist: true,
                ..AllocConfig::default()
            },
            bound: 2,
        },
        RunSpec {
            name: "1-worker",
            cfg: AllocConfig {
                workers: 1,
                persist: true,
                ..AllocConfig::default()
            },
            bound: 2,
        },
        RunSpec {
            name: "2-worker",
            cfg: AllocConfig {
                workers: 2,
                persist: true,
                ..AllocConfig::default()
            },
            bound: 2,
        },
        RunSpec {
            name: "3-worker",
            cfg: AllocConfig {
                workers: 3,
                persist: false,
                ..AllocConfig::default()
            },
            bound: if quick { 1 } else { 2 },
        },
    ];
    if !quick {
        // Widest sweep: three workers racing the persist thread, and
        // an oversubscribed pool exercising legal OOM histories.
        specs.push(RunSpec {
            name: "3-worker+persist",
            cfg: AllocConfig {
                workers: 3,
                persist: true,
                ..AllocConfig::default()
            },
            bound: 2,
        });
        specs.push(RunSpec {
            name: "oversubscribed",
            cfg: AllocConfig {
                workers: 3,
                subtrees: 2,
                frames_per_subtree: 1,
                allocs_per_worker: 1,
                free_first: false,
                persist: false,
                ..AllocConfig::default()
            },
            bound: 2,
        });
    }
    specs
}

fn bug_configs() -> Vec<RunSpec> {
    AllocBug::ALL
        .iter()
        .map(|&bug| RunSpec {
            name: bug.name(),
            cfg: AllocConfig {
                workers: 2,
                persist: bug == AllocBug::SealBeforeStagedWords,
                bug,
                ..AllocConfig::default()
            },
            bound: 2,
        })
        .collect()
}

fn run_spec(spec: &RunSpec, memoize: bool) -> ModelReport<AllocViolation> {
    let model = AllocModel::new(spec.cfg);
    explore_model(
        &model,
        &ExplorerConfig {
            preemption_bound: spec.bound,
            max_schedules: 2_000_000,
            memoize,
        },
    )
}

struct Outcome {
    plain: ModelReport<AllocViolation>,
    memo: ModelReport<AllocViolation>,
}

fn run_both(spec: &RunSpec) -> Outcome {
    Outcome {
        plain: run_spec(spec, false),
        memo: run_spec(spec, true),
    }
}

fn describe(spec: &RunSpec, o: &Outcome) -> String {
    format!(
        "{}: workers={} subtrees={} frames/subtree={} allocs={} persist={} bound={}: \
         {} schedule(s) unmemoized -> {} memoized ({} pruned), \
         {} violation(s), {} deadlock(s){}",
        spec.name,
        spec.cfg.workers,
        spec.cfg.subtrees,
        spec.cfg.frames_per_subtree,
        spec.cfg.allocs_per_worker,
        spec.cfg.persist,
        spec.bound,
        o.plain.schedules,
        o.memo.schedules,
        o.memo.memo_hits,
        o.plain.violations.len(),
        o.plain.deadlocks,
        if o.plain.truncated || o.memo.truncated {
            " [truncated]"
        } else {
            ""
        },
    )
}

fn json_entry(out: &mut String, spec: &RunSpec, o: &Outcome, ok: bool) {
    out.push_str("{\"name\":");
    json_string(out, spec.name);
    out.push_str(",\"workers\":");
    out.push_str(&spec.cfg.workers.to_string());
    out.push_str(",\"subtrees\":");
    out.push_str(&spec.cfg.subtrees.to_string());
    out.push_str(",\"frames_per_subtree\":");
    out.push_str(&spec.cfg.frames_per_subtree.to_string());
    out.push_str(",\"allocs_per_worker\":");
    out.push_str(&spec.cfg.allocs_per_worker.to_string());
    out.push_str(",\"persist\":");
    out.push_str(if spec.cfg.persist { "true" } else { "false" });
    out.push_str(",\"bug\":");
    json_string(out, spec.cfg.bug.name());
    out.push_str(",\"bound\":");
    out.push_str(&spec.bound.to_string());
    out.push_str(",\"schedules_before_memo\":");
    out.push_str(&o.plain.schedules.to_string());
    out.push_str(",\"schedules_after_memo\":");
    out.push_str(&o.memo.schedules.to_string());
    out.push_str(",\"memo_hits\":");
    out.push_str(&o.memo.memo_hits.to_string());
    out.push_str(",\"deadlocks\":");
    out.push_str(&o.plain.deadlocks.to_string());
    out.push_str(",\"violations\":[");
    for (i, (v, _)) in o.plain.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, &v.to_string());
    }
    out.push_str("],\"ok\":");
    out.push_str(if ok { "true" } else { "false" });
    out.push('}');
}

fn emit_telemetry(schedules: u64, memo_hits: u64) {
    if telemetry::enabled() {
        telemetry::with(|tel| {
            let r = tel.registry();
            r.counter("prosper.allocmodel.schedules").add(schedules);
            r.counter("prosper.allocmodel.memo_hits").add(memo_hits);
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let self_test = !args.iter().any(|a| a == "--skip-self-test");
    if args
        .iter()
        .any(|a| a != "--json" && a != "--quick" && a != "--skip-self-test")
    {
        eprintln!("usage: prosper-allocmodel [--json] [--quick] [--skip-self-test]");
        std::process::exit(2);
    }

    let mut failed = false;
    let mut out = String::from("{\"correct\":[");

    for (i, spec) in correct_configs(quick).iter().enumerate() {
        let o = run_both(spec);
        // A correct configuration must be clean both ways, and
        // memoization must agree with the unmemoized verdict.
        let ok = o.plain.is_clean()
            && o.memo.is_clean()
            && !o.plain.truncated
            && !o.memo.truncated
            && o.plain.schedules > 0;
        failed |= !ok;
        emit_telemetry(o.plain.schedules + o.memo.schedules, o.memo.memo_hits);
        if json {
            if i > 0 {
                out.push(',');
            }
            json_entry(&mut out, spec, &o, ok);
        } else {
            println!(
                "[{}] {}",
                if ok { "ok" } else { "FAIL" },
                describe(spec, &o)
            );
            for (v, _) in &o.plain.violations {
                println!("      violation: {v}");
            }
        }
    }
    out.push_str("],\"self_test\":[");

    if self_test {
        for (i, spec) in bug_configs().iter().enumerate() {
            let o = run_both(spec);
            // A seeded bug must be detected — by the unmemoized run
            // at full strength, and still by the memoized run (the
            // per-state invariant checks survive pruning).
            let ok = !o.plain.is_clean() && !o.memo.is_clean();
            failed |= !ok;
            emit_telemetry(o.plain.schedules + o.memo.schedules, o.memo.memo_hits);
            if json {
                if i > 0 {
                    out.push(',');
                }
                json_entry(&mut out, spec, &o, ok);
            } else {
                println!(
                    "[{}] {}",
                    if ok { "ok" } else { "FAIL" },
                    describe(spec, &o)
                );
            }
        }
    }
    out.push_str("],\"ok\":");
    out.push_str(if failed { "false" } else { "true" });
    out.push('}');

    if json {
        println!("{out}");
    } else {
        println!(
            "prosper-allocmodel: {}",
            if failed { "FAIL" } else { "all checks passed" }
        );
    }
    if failed {
        std::process::exit(1);
    }
}
