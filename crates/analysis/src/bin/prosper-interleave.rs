//! Exhaustive interleaving checker for the parallel commit protocol.
//!
//! ```text
//! cargo run -p prosper-analysis --bin prosper-interleave [-- --json] [--skip-self-test]
//! ```
//!
//! Explores every bounded-preemption schedule of the modelled commit
//! protocol at 1, 2, and 4 workers — in both the classic
//! stage/seal/apply form and the PR-7 pipelined form where stage(N+1)
//! overlaps apply(N) — and reports races, commit-order violations,
//! and deadlocks. By default it also runs the
//! *self-test*: each deliberately seeded protocol bug must be
//! detected, proving the checker has teeth. Exits nonzero when a
//! correct configuration has findings, or when a seeded bug goes
//! undetected.

#![forbid(unsafe_code)]

use prosper_analysis::diag::json_string;
use prosper_analysis::interleave::{
    commit_program, explore, Bug, CommitConfig, ExploreReport, ExplorerConfig,
};

struct RunSpec {
    cfg: CommitConfig,
    bound: usize,
}

fn correct_configs() -> Vec<RunSpec> {
    vec![
        RunSpec {
            cfg: CommitConfig {
                workers: 1,
                stacks: 4,
                sequences: 2,
                pipelined: false,
                bug: Bug::None,
            },
            bound: 2,
        },
        RunSpec {
            cfg: CommitConfig {
                workers: 2,
                stacks: 4,
                sequences: 2,
                pipelined: false,
                bug: Bug::None,
            },
            bound: 1,
        },
        RunSpec {
            cfg: CommitConfig {
                workers: 4,
                stacks: 4,
                sequences: 1,
                pipelined: false,
                bug: Bug::None,
            },
            bound: 1,
        },
        // The PR-7 pipelined protocol: stage(N+1) overlaps apply(N).
        // Two sequences so the overlap window actually opens.
        RunSpec {
            cfg: CommitConfig {
                workers: 1,
                stacks: 4,
                sequences: 2,
                pipelined: true,
                bug: Bug::None,
            },
            bound: 2,
        },
        RunSpec {
            cfg: CommitConfig {
                workers: 2,
                stacks: 4,
                sequences: 2,
                pipelined: true,
                bug: Bug::None,
            },
            bound: 1,
        },
        // Widest exhaustive overlap-window exploration: 3 workers
        // with uneven chunks. (4 workers x 2 sequences exceeds the
        // schedule cap even at bound 0.)
        RunSpec {
            cfg: CommitConfig {
                workers: 3,
                stacks: 4,
                sequences: 2,
                pipelined: true,
                bug: Bug::None,
            },
            bound: 1,
        },
        // The 4-worker pipelined path for a single burst: the final
        // drain join replaces the per-sequence apply join.
        RunSpec {
            cfg: CommitConfig {
                workers: 4,
                stacks: 4,
                sequences: 1,
                pipelined: true,
                bug: Bug::None,
            },
            bound: 1,
        },
    ]
}

fn bug_configs() -> Vec<RunSpec> {
    Bug::ALL
        .iter()
        .map(|&bug| RunSpec {
            cfg: CommitConfig {
                workers: 2,
                stacks: 2,
                sequences: 2,
                // StageBeforePriorSeal only exists on the pipelined
                // path; the other seeds break the classic protocol.
                pipelined: bug == Bug::StageBeforePriorSeal,
                bug,
            },
            bound: 1,
        })
        .collect()
}

fn run_spec(spec: &RunSpec) -> ExploreReport {
    let program = commit_program(&spec.cfg);
    explore(
        &program,
        &ExplorerConfig {
            preemption_bound: spec.bound,
            max_schedules: 2_000_000,
            memoize: false,
        },
    )
}

fn describe(spec: &RunSpec, report: &ExploreReport) -> String {
    format!(
        "workers={} stacks={} sequences={} pipelined={} bug={} bound={}: {} schedule(s), \
         {} race(s), {} order violation(s), {} deadlock(s){}",
        spec.cfg.workers,
        spec.cfg.stacks,
        spec.cfg.sequences,
        spec.cfg.pipelined,
        spec.cfg.bug.name(),
        spec.bound,
        report.schedules,
        report.races.len(),
        report.order_violations.len(),
        report.deadlocks,
        if report.truncated { " [truncated]" } else { "" },
    )
}

fn json_entry(out: &mut String, spec: &RunSpec, report: &ExploreReport, ok: bool) {
    out.push_str("{\"workers\":");
    out.push_str(&spec.cfg.workers.to_string());
    out.push_str(",\"stacks\":");
    out.push_str(&spec.cfg.stacks.to_string());
    out.push_str(",\"sequences\":");
    out.push_str(&spec.cfg.sequences.to_string());
    out.push_str(",\"pipelined\":");
    out.push_str(if spec.cfg.pipelined { "true" } else { "false" });
    out.push_str(",\"bug\":");
    json_string(out, spec.cfg.bug.name());
    out.push_str(",\"schedules\":");
    out.push_str(&report.schedules.to_string());
    out.push_str(",\"races\":[");
    for (i, r) in report.races.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"location\":");
        json_string(out, &r.location);
        out.push_str(",\"threads\":[");
        json_string(out, &r.thread_a);
        out.push(',');
        json_string(out, &r.thread_b);
        out.push_str("],\"label\":");
        json_string(out, &r.label);
        out.push('}');
    }
    out.push_str("],\"order_violations\":[");
    for (i, (v, _)) in report.order_violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, &v.to_string());
    }
    out.push_str("],\"deadlocks\":");
    out.push_str(&report.deadlocks.to_string());
    out.push_str(",\"ok\":");
    out.push_str(if ok { "true" } else { "false" });
    out.push('}');
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let self_test = !args.iter().any(|a| a == "--skip-self-test");
    if args
        .iter()
        .any(|a| a != "--json" && a != "--skip-self-test")
    {
        eprintln!("usage: prosper-interleave [--json] [--skip-self-test]");
        std::process::exit(2);
    }

    let mut failed = false;
    let mut out = String::from("{\"correct\":[");

    for (i, spec) in correct_configs().iter().enumerate() {
        let report = run_spec(spec);
        let ok = report.is_clean() && !report.truncated;
        failed |= !ok;
        if json {
            if i > 0 {
                out.push(',');
            }
            json_entry(&mut out, spec, &report, ok);
        } else {
            println!(
                "[{}] {}",
                if ok { "ok" } else { "FAIL" },
                describe(spec, &report)
            );
            for (v, _) in &report.order_violations {
                println!("      order violation: {v}");
            }
            for r in &report.races {
                println!(
                    "      race on {} between {} and {} ({})",
                    r.location, r.thread_a, r.thread_b, r.label
                );
            }
        }
    }
    out.push_str("],\"self_test\":[");

    if self_test {
        for (i, spec) in bug_configs().iter().enumerate() {
            let report = run_spec(spec);
            // A seeded bug *must* be detected.
            let ok = !report.is_clean();
            failed |= !ok;
            if json {
                if i > 0 {
                    out.push(',');
                }
                json_entry(&mut out, spec, &report, ok);
            } else {
                println!(
                    "[{}] {}",
                    if ok { "ok" } else { "FAIL" },
                    describe(spec, &report)
                );
            }
        }
    }
    out.push_str("],\"ok\":");
    out.push_str(if failed { "false" } else { "true" });
    out.push('}');

    if json {
        println!("{out}");
    } else {
        println!(
            "prosper-interleave: {}",
            if failed { "FAIL" } else { "all checks passed" }
        );
    }
    if failed {
        std::process::exit(1);
    }
}
