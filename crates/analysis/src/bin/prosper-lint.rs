//! Workspace invariant linter.
//!
//! ```text
//! cargo run -p prosper-analysis --bin prosper-lint [-- --format json] [--root PATH]
//! ```
//!
//! Scans every `src/` tree in the workspace, runs the rule catalogue
//! (see `prosper_analysis::rules`), and prints findings. Exits
//! nonzero when any unsuppressed finding remains, so CI can gate on
//! it.

#![forbid(unsafe_code)]

use prosper_analysis::rules::{self, LintConfig};
use prosper_analysis::workspace;
use std::path::PathBuf;

fn main() {
    let mut format_json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                format_json = args.next().as_deref() == Some("json");
            }
            "--json" => format_json = true,
            "--root" => root_arg = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!(
                    "prosper-lint: workspace invariant linter\n\
                     usage: prosper-lint [--format json|text] [--root PATH]"
                );
                return;
            }
            other => {
                eprintln!("prosper-lint: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let root = root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    });
    let Some(root) = root else {
        eprintln!("prosper-lint: could not locate the workspace root (try --root)");
        std::process::exit(2);
    };
    let files = match workspace::load_sources(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("prosper-lint: failed to scan {}: {err}", root.display());
            std::process::exit(2);
        }
    };

    let report = rules::run(&files, &LintConfig::workspace_default());

    if format_json {
        println!("{}", report.to_json());
    } else {
        for rule in &report.rules {
            println!(
                "{}: {} — {} finding(s)",
                rule.id, rule.summary, rule.findings
            );
        }
        for d in &report.diagnostics {
            println!("{d}");
            if !d.snippet.is_empty() {
                println!("    {}", d.snippet);
            }
            if let Some(j) = &d.justification {
                println!("    suppressed: {j}");
            }
        }
        println!(
            "prosper-lint: {} file(s), {} finding(s), {} unsuppressed",
            report.files_scanned,
            report.diagnostics.len(),
            report.failure_count()
        );
    }

    if report.failure_count() > 0 {
        std::process::exit(1);
    }
}
