//! `PA-UNSAFE006` — `unsafe` is forbidden workspace-wide.
//!
//! The persistence model is checked by tests and by this analysis
//! crate under the assumption that all memory effects are visible to
//! safe Rust. Every crate root must carry `#![forbid(unsafe_code)]`
//! (compiler-enforced, non-overridable), and as a belt-and-braces
//! measure no `unsafe` token may appear anywhere in production code.

use super::{LintConfig, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct ForbidUnsafe;

impl Rule for ForbidUnsafe {
    fn id(&self) -> &'static str {
        "PA-UNSAFE006"
    }

    fn summary(&self) -> &'static str {
        "every crate root forbids unsafe_code and no unsafe token appears"
    }

    fn check(&self, files: &[SourceFile], _cfg: &LintConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in files {
            if file.path.ends_with("src/lib.rs")
                && !file.masked.contains("#![forbid(unsafe_code)]")
                && !file.masked.contains("#![deny(unsafe_code)]")
            {
                out.push(Diagnostic::new(
                    self.id(),
                    &file.path,
                    1,
                    "crate root does not carry #![forbid(unsafe_code)]",
                    file.line_text(1),
                ));
            }
            for off in file.code_token_matches("unsafe") {
                let line = file.line_of(off);
                out.push(
                    Diagnostic::new(
                        self.id(),
                        &file.path,
                        line,
                        "`unsafe` token in production code; the workspace is \
                         forbid(unsafe_code)",
                        file.line_text(line),
                    )
                    .with_offset(off, file.col_of(off)),
                );
            }
        }
        out
    }
}
