//! `PA-DET005` — determinism of simulator crates.
//!
//! The simulator's whole value is bit-for-bit reproducibility: the
//! crash matrix replays exact interleavings, the perf baseline
//! compares exact cycle counts. A wall-clock read or an ambient RNG
//! in simulation logic silently destroys that. Simulator crates must
//! take time from the simulated clock and randomness from a seeded
//! generator; the only sanctioned wall-clock site is
//! `prosper_telemetry::Stopwatch` (the telemetry crate is exempt —
//! observability measures host time by definition).

use super::{LintConfig, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Nondeterminism sources banned from simulator crates.
const NONDET_TOKENS: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "from_entropy",
    "rand::random",
];

/// See module docs.
#[derive(Debug)]
pub struct DeterministicSim;

impl Rule for DeterministicSim {
    fn id(&self) -> &'static str {
        "PA-DET005"
    }

    fn summary(&self) -> &'static str {
        "no wall-clock or ambient randomness in deterministic simulator crates"
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in files {
            if !cfg
                .sim_path_prefixes
                .iter()
                .any(|p| file.path.starts_with(p.as_str()))
            {
                continue;
            }
            for tok in NONDET_TOKENS {
                for off in file.code_token_matches(tok) {
                    let line = file.line_of(off);
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            &file.path,
                            line,
                            format!(
                                "`{tok}` in deterministic simulator code; use the \
                                 simulated clock / a seeded RNG (telemetry timing goes \
                                 through prosper_telemetry::Stopwatch)"
                            ),
                            file.line_text(line),
                        )
                        .with_offset(off, file.col_of(off)),
                    );
                }
            }
        }
        out
    }
}
