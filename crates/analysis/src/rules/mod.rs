//! The lint rule catalogue.
//!
//! | ID | Enforces |
//! |----|----------|
//! | `PA-NVM001` | durable-write discipline: staging/NVM mutation only via `persist.rs`/`recovery.rs` |
//! | `PA-CRASH002` | `CrashSite` exhaustiveness: every variant has an injection point and a crash-matrix reference |
//! | `PA-TEL003` | telemetry-name hygiene: literals are registered, well-formed, kind-correct, unique |
//! | `PA-PANIC004` | no `panic!`/`unwrap`/`expect` in recovery/redo/apply/restore paths |
//! | `PA-DET005` | no wall-clock or ambient randomness in deterministic simulator crates |
//! | `PA-UNSAFE006` | every crate root carries `#![forbid(unsafe_code)]` and no `unsafe` token appears |
//! | `PA-ATOMIC007` | atomic-ordering discipline: no `Ordering::Relaxed` or raw `fetch_sub` in protocol code |
//!
//! Suppression: `// lint:allow(RULE-ID): reason` on the finding's line
//! or the line above. A marker without a reason is itself reported
//! (`PA-META000`).

mod atomic;
mod crashsite;
mod determinism;
mod nvm;
mod panic_free;
mod telemetry_names;
mod unsafe_code;

use crate::diag::{Diagnostic, LintReport, RuleInfo};
use crate::source::SourceFile;

/// Paths and prefixes a rule run is parameterised by, so fixture
/// corpora can model miniature workspaces with the same defaults the
/// real workspace uses.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Files allowed to call raw staging/NVM mutation APIs.
    pub staging_allowlist: Vec<String>,
    /// The file that declares the crash-site enum.
    pub crash_enum_file: String,
    /// Name of the crash-site enum.
    pub crash_enum_name: String,
    /// Files where deterministic injection points may live.
    pub injection_files: Vec<String>,
    /// Files that must reference every crash site (the crash matrix).
    pub matrix_files: Vec<String>,
    /// Path prefixes of crates that must stay deterministic.
    pub sim_path_prefixes: Vec<String>,
    /// Path prefixes exempt from telemetry-literal checks (the
    /// registry itself).
    pub telemetry_exempt_prefixes: Vec<String>,
    /// Function-name prefixes that mark recovery/redo paths.
    pub recovery_fn_prefixes: Vec<String>,
    /// Path prefixes exempt from atomic-ordering discipline
    /// (`PA-ATOMIC007`): racy-by-design observability counters.
    pub atomic_exempt_prefixes: Vec<String>,
}

impl LintConfig {
    /// The configuration for the real Prosper workspace.
    #[must_use]
    pub fn workspace_default() -> Self {
        Self {
            staging_allowlist: vec![
                "crates/core/src/persist.rs".into(),
                "crates/core/src/recovery.rs".into(),
                // The frame allocator persists its NVM bitmap through
                // its own staging/seal discipline (DurableAllocTree).
                "crates/gemos/src/llalloc.rs".into(),
            ],
            crash_enum_file: "crates/gemos/src/crash.rs".into(),
            crash_enum_name: "CrashSite".into(),
            injection_files: vec![
                "crates/core/src/recovery.rs".into(),
                "crates/core/src/multithread.rs".into(),
                "crates/core/src/faultinject.rs".into(),
                "crates/core/src/oscomp.rs".into(),
                "crates/gemos/src/llalloc.rs".into(),
            ],
            matrix_files: vec!["crates/bench/src/crash_matrix.rs".into()],
            sim_path_prefixes: vec![
                "crates/core/".into(),
                "crates/gemos/".into(),
                "crates/memsim/".into(),
                "crates/trace/".into(),
                "crates/baselines/".into(),
            ],
            telemetry_exempt_prefixes: vec!["crates/telemetry/".into()],
            recovery_fn_prefixes: vec![
                "recover".into(),
                "redo".into(),
                "apply_record".into(),
                "apply_pending".into(),
                "restore".into(),
            ],
            atomic_exempt_prefixes: vec!["crates/telemetry/".into()],
        }
    }
}

/// A lint rule: an id, a one-line summary, and a checker over the
/// scanned workspace.
pub trait Rule {
    /// Stable identifier, e.g. `PA-NVM001`.
    fn id(&self) -> &'static str;
    /// One-line description for the report header.
    fn summary(&self) -> &'static str;
    /// Runs the rule over every scanned file.
    fn check(&self, files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic>;
}

impl std::fmt::Debug for dyn Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rule({})", self.id())
    }
}

/// Every rule, in catalogue order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nvm::DurableWriteDiscipline),
        Box::new(crashsite::CrashSiteExhaustiveness),
        Box::new(telemetry_names::TelemetryNameHygiene),
        Box::new(panic_free::PanicFreeRecovery),
        Box::new(determinism::DeterministicSim),
        Box::new(unsafe_code::ForbidUnsafe),
        Box::new(atomic::AtomicDiscipline),
    ]
}

/// The crash-site variants the `PA-CRASH002` parser sees in this
/// workspace, in declaration order — exposed so tests can cross-check
/// the textual parse against the compiled enum's `VARIANT_NAMES`.
#[must_use]
pub fn crash_variant_names(files: &[SourceFile], cfg: &LintConfig) -> Vec<String> {
    files
        .iter()
        .find(|f| f.path == cfg.crash_enum_file)
        .map(|f| {
            crashsite::parse_enum_variants(f, &cfg.crash_enum_name)
                .into_iter()
                .map(|(name, _)| name)
                .collect()
        })
        .unwrap_or_default()
}

/// Runs every rule, applies suppression markers, and reports
/// malformed markers under `PA-META000`.
#[must_use]
pub fn run(files: &[SourceFile], cfg: &LintConfig) -> LintReport {
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for rule in all_rules() {
        let mut diags = rule.check(files, cfg);
        for d in &mut diags {
            if let Some(f) = files.iter().find(|f| f.path == d.file) {
                if let Some(s) = f.suppression_for(&d.rule, d.line) {
                    d.suppressed = true;
                    d.justification = Some(s.reason.clone());
                }
            }
        }
        report.rules.push(RuleInfo {
            id: rule.id().to_owned(),
            summary: rule.summary().to_owned(),
            findings: diags.len(),
        });
        report.diagnostics.extend(diags);
    }
    // Malformed suppression markers: a marker that names a rule but
    // carries no justification is noise that silently rots; flag it.
    let mut meta = 0;
    for f in files {
        for s in &f.suppressions {
            if s.reason.is_empty() {
                report.diagnostics.push(Diagnostic::new(
                    "PA-META000",
                    &f.path,
                    s.line,
                    format!(
                        "suppression marker for {} has no justification; write \
                         `// lint:allow({}): reason`",
                        s.rule, s.rule
                    ),
                    f.line_text(s.line),
                ));
                meta += 1;
            }
        }
    }
    report.rules.push(RuleInfo {
        id: "PA-META000".into(),
        summary: "suppression markers must carry a justification".into(),
        findings: meta,
    });
    report
}
