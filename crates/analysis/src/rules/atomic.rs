//! `PA-ATOMIC007` — atomic-ordering discipline.
//!
//! The allocator's correctness argument (see the `allocmodel` module
//! and DESIGN.md §10) leans on two sync edges that a single weakened
//! ordering silently deletes: publication stores must Release so the
//! frame's prior writes are visible to the next owner, and durable
//! staged stores must order before their seal. `Ordering::Relaxed`
//! anywhere in protocol code is therefore treated as a bug until
//! justified — the model checker explores reorderings, but only the
//! ones the source admits, so a Relaxed store is precisely the class
//! of defect that never shows up in testing and always shows up in a
//! crash dump.
//!
//! The second half of the discipline is counter updates: a raw
//! `fetch_sub` on a free counter can underflow past zero under a
//! racing free (the exact shape of the seeded
//! `counter-store-before-bit-claim` bug). Decrements must go through
//! the checked `fetch_update`-based helpers (`try_dec`), which refuse
//! to go below zero.
//!
//! Telemetry counters are exempt by path prefix
//! ([`LintConfig::atomic_exempt_prefixes`]): observability counters
//! are monotonic, racy-by-design, and never published as protocol
//! state. Anything else needs a justified
//! `// lint:allow(PA-ATOMIC007): reason` marker.

use super::{LintConfig, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct AtomicDiscipline;

impl Rule for AtomicDiscipline {
    fn id(&self) -> &'static str {
        "PA-ATOMIC007"
    }

    fn summary(&self) -> &'static str {
        "no Relaxed atomics or raw fetch_sub in protocol code; counters go through checked helpers"
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in files {
            if cfg
                .atomic_exempt_prefixes
                .iter()
                .any(|p| file.path.starts_with(p.as_str()))
            {
                continue;
            }
            for off in file.code_token_matches("Ordering::Relaxed") {
                let line = file.line_of(off);
                out.push(
                    Diagnostic::new(
                        self.id(),
                        &file.path,
                        line,
                        "`Ordering::Relaxed` in protocol code; publication stores \
                         need Release and counter RMWs need AcqRel so the model \
                         checker's sync edges match the binary's",
                        file.line_text(line),
                    )
                    .with_offset(off, file.col_of(off)),
                );
            }
            for off in file.code_matches(".fetch_sub(") {
                let line = file.line_of(off);
                out.push(
                    Diagnostic::new(
                        self.id(),
                        &file.path,
                        line,
                        "raw `fetch_sub` on a shared counter can underflow under a \
                         racing free; decrement through the checked fetch_update \
                         helper (`try_dec`) instead",
                        file.line_text(line),
                    )
                    .with_offset(off, file.col_of(off)),
                );
            }
        }
        out
    }
}
