//! `PA-CRASH002` — crash-site exhaustiveness.
//!
//! The deterministic fault injector is only as good as its coverage:
//! a `CrashSite` variant that exists in the enum but is never
//! injected (no `crash_window!`/`observe` site references it) or
//! never exercised by the crash matrix is a crash point the test
//! suite silently does not test. This rule parses the enum from
//! source and demands, for every variant, at least one reference in
//! an injection file and at least one in a crash-matrix file.

use super::{LintConfig, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// See module docs.
#[derive(Debug)]
pub struct CrashSiteExhaustiveness;

/// Parses the variants of `enum <name>` from a scanned file, in
/// declaration order. Returns `(variant, line)` pairs.
#[must_use]
pub fn parse_enum_variants(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let needle = format!("enum {name}");
    let Some(pos) = file
        .code_token_matches(&needle)
        .into_iter()
        .next()
        .or_else(|| file.masked.find(&needle))
    else {
        return Vec::new();
    };
    let bytes = file.masked.as_bytes();
    let Some(open) = file.masked[pos..].find('{').map(|i| pos + i) else {
        return Vec::new();
    };
    // Split the body at depth-1 commas; the first identifier of each
    // chunk that is not an attribute is the variant name.
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut chunk_start = open + 1;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    push_variant(file, chunk_start, i, &mut variants);
                    break;
                }
            }
            b',' if depth == 1 => {
                push_variant(file, chunk_start, i, &mut variants);
                chunk_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

fn push_variant(file: &SourceFile, start: usize, end: usize, out: &mut Vec<(String, usize)>) {
    let bytes = file.masked.as_bytes();
    let mut i = start;
    while i < end {
        // Skip attributes like #[non_exhaustive] on the variant.
        if bytes[i] == b'#' {
            while i < end && bytes[i] != b']' {
                i += 1;
            }
            i += 1;
            continue;
        }
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let name_start = i;
            while i < end && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((
                file.masked[name_start..i].to_owned(),
                file.line_of(name_start),
            ));
            return;
        }
        i += 1;
    }
}

impl Rule for CrashSiteExhaustiveness {
    fn id(&self) -> &'static str {
        "PA-CRASH002"
    }

    fn summary(&self) -> &'static str {
        "every CrashSite variant needs an injection point and a crash-matrix reference"
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
        let Some(enum_file) = files.iter().find(|f| f.path == cfg.crash_enum_file) else {
            // The enum file is simply absent from this (fixture)
            // workspace: nothing to check.
            return Vec::new();
        };
        let variants = parse_enum_variants(enum_file, &cfg.crash_enum_name);
        let mut out = Vec::new();
        if variants.is_empty() {
            out.push(Diagnostic::new(
                self.id(),
                &enum_file.path,
                1,
                format!(
                    "could not parse any variants of enum {} — the exhaustiveness \
                     check is blind",
                    cfg.crash_enum_name
                ),
                "",
            ));
            return out;
        }
        for (variant, line) in &variants {
            let token = format!("{}::{}", cfg.crash_enum_name, variant);
            let referenced = |paths: &[String]| {
                files
                    .iter()
                    .filter(|f| paths.iter().any(|p| &f.path == p))
                    .any(|f| !f.code_token_matches(&token).is_empty())
            };
            if !referenced(&cfg.injection_files) {
                out.push(Diagnostic::new(
                    self.id(),
                    &enum_file.path,
                    *line,
                    format!(
                        "crash site {token} has no injection point in {}",
                        cfg.injection_files.join(", ")
                    ),
                    enum_file.line_text(*line),
                ));
            }
            if !referenced(&cfg.matrix_files) {
                out.push(Diagnostic::new(
                    self.id(),
                    &enum_file.path,
                    *line,
                    format!(
                        "crash site {token} is never exercised by the crash matrix ({})",
                        cfg.matrix_files.join(", ")
                    ),
                    enum_file.line_text(*line),
                ));
            }
        }
        out
    }
}
