//! `PA-NVM001` — durable-write discipline.
//!
//! The persistence model only holds if every mutation of NVM-resident
//! state flows through the staging pipeline in
//! `crates/core/src/persist.rs` (and its orchestrator,
//! `recovery.rs`): stage into the staging buffer, seal the commit
//! record, apply idempotently. A raw `stage_run`/`apply_run` call
//! from anywhere else can write NVM outside a sealed record and break
//! crash consistency in a way no test will see until the wrong crash
//! point is hit.

use super::{LintConfig, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Method-call tokens that mutate staging or NVM state directly.
const STAGING_TOKENS: &[&str] = &[
    ".begin_stage(",
    ".stage_run(",
    ".stage_partial(",
    ".seal(",
    ".apply_run(",
    ".finish_apply(",
    ".discard_staging(",
    ".sealed = ",
];

/// See module docs.
#[derive(Debug)]
pub struct DurableWriteDiscipline;

impl Rule for DurableWriteDiscipline {
    fn id(&self) -> &'static str {
        "PA-NVM001"
    }

    fn summary(&self) -> &'static str {
        "staging/NVM mutation APIs may only be called from the persistence layer"
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in files {
            if cfg.staging_allowlist.iter().any(|a| &file.path == a) {
                continue;
            }
            for tok in STAGING_TOKENS {
                for off in file.code_matches(tok) {
                    let line = file.line_of(off);
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            &file.path,
                            line,
                            format!(
                                "`{}` mutates staging/NVM state; only {} may do that \
                                 — route this through the commit pipeline",
                                tok.trim_matches(|c| c == '.' || c == '(' || c == ' '),
                                cfg.staging_allowlist.join(", "),
                            ),
                            file.line_text(line),
                        )
                        .with_offset(off, file.col_of(off)),
                    );
                }
            }
        }
        out
    }
}
