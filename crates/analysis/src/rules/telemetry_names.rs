//! `PA-TEL003` — telemetry-name hygiene.
//!
//! Metric and span names are stringly-typed: a typo (`prosper.ckpt.`
//! vs `prosper.chkpt.`) silently splits one series into two and no
//! test fails. This rule checks every string literal passed to an
//! instrumentation call (`counter`, `gauge`, `histogram`,
//! `span_begin`, `span_end`, `instant`) against the registered
//! catalogue in `prosper_telemetry::names`: the name must be
//! well-formed, registered, and registered *as the right kind*. It
//! also audits the catalogue itself for duplicate entries.

use super::{LintConfig, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;
use prosper_telemetry::names::{self, InstrumentKind};

/// See module docs.
#[derive(Debug)]
pub struct TelemetryNameHygiene;

fn expected_kind(callee: &str) -> Option<InstrumentKind> {
    match callee {
        "counter" => Some(InstrumentKind::Counter),
        "gauge" => Some(InstrumentKind::Gauge),
        "histogram" => Some(InstrumentKind::Histogram),
        "span_begin" | "span_end" | "instant" => Some(InstrumentKind::Span),
        _ => None,
    }
}

impl Rule for TelemetryNameHygiene {
    fn id(&self) -> &'static str {
        "PA-TEL003"
    }

    fn summary(&self) -> &'static str {
        "telemetry name literals must be well-formed, registered, and kind-correct"
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        // Audit the catalogue itself: duplicates make `lookup` lie.
        let mut seen = std::collections::BTreeMap::new();
        for (name, kind) in names::REGISTERED {
            if let Some(prev) = seen.insert(*name, *kind) {
                out.push(Diagnostic::new(
                    self.id(),
                    "crates/telemetry/src/names.rs",
                    1,
                    format!(
                        "registry lists `{name}` twice ({prev:?} and {kind:?}); \
                         registered names must be globally unique"
                    ),
                    *name,
                ));
            }
            if !names::is_well_formed(name) {
                out.push(Diagnostic::new(
                    self.id(),
                    "crates/telemetry/src/names.rs",
                    1,
                    format!("registered name `{name}` is not well-formed"),
                    *name,
                ));
            }
        }
        for file in files {
            if cfg
                .telemetry_exempt_prefixes
                .iter()
                .any(|p| file.path.starts_with(p.as_str()))
            {
                continue;
            }
            for lit in &file.strings {
                if file.in_test_code(lit.offset) {
                    continue;
                }
                let Some(expected) = lit.callee.as_deref().and_then(expected_kind) else {
                    continue;
                };
                let line = file.line_of(lit.offset);
                let col = file.col_of(lit.offset);
                if !names::is_well_formed(&lit.value) {
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            &file.path,
                            line,
                            format!(
                                "telemetry name `{}` is not well-formed (expected \
                                 `prosper.`-prefixed lowercase dotted segments)",
                                lit.value
                            ),
                            file.line_text(line),
                        )
                        .with_offset(lit.offset, col),
                    );
                    continue;
                }
                match names::lookup(&lit.value) {
                    None => out.push(
                        Diagnostic::new(
                            self.id(),
                            &file.path,
                            line,
                            format!(
                                "telemetry name `{}` is not in the registered catalogue \
                                 (crates/telemetry/src/names.rs); register it or fix the typo",
                                lit.value
                            ),
                            file.line_text(line),
                        )
                        .with_offset(lit.offset, col),
                    ),
                    Some(kind) if kind != expected => out.push(
                        Diagnostic::new(
                            self.id(),
                            &file.path,
                            line,
                            format!(
                                "telemetry name `{}` is registered as {kind:?} but used \
                                 as {expected:?}",
                                lit.value
                            ),
                            file.line_text(line),
                        )
                        .with_offset(lit.offset, col),
                    ),
                    Some(_) => {}
                }
            }
        }
        out
    }
}
