//! `PA-PANIC004` — panic-free recovery and redo paths.
//!
//! Recovery code runs exactly when the system is least able to
//! tolerate surprises: after a crash, replaying a sealed commit
//! record. A `panic!`/`unwrap`/`expect` there turns a recoverable
//! state into an unrecoverable one. Any function whose name marks it
//! as part of the recovery/redo/apply/restore surface must handle
//! its errors structurally.

use super::{LintConfig, Rule};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Panicking constructs that must not appear in recovery paths.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
];

/// See module docs.
#[derive(Debug)]
pub struct PanicFreeRecovery;

impl Rule for PanicFreeRecovery {
    fn id(&self) -> &'static str {
        "PA-PANIC004"
    }

    fn summary(&self) -> &'static str {
        "no panic!/unwrap/expect inside recovery, redo, apply, or restore functions"
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in files {
            for tok in PANIC_TOKENS {
                for off in file.code_matches(tok) {
                    let Some(f) = file.enclosing_fn(off) else {
                        continue;
                    };
                    if !cfg
                        .recovery_fn_prefixes
                        .iter()
                        .any(|p| f.name.starts_with(p.as_str()))
                    {
                        continue;
                    }
                    let line = file.line_of(off);
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            &file.path,
                            line,
                            format!(
                                "`{}` in recovery-path function `{}`; recovery must \
                                 degrade structurally, not panic",
                                tok.trim_matches(|c| c == '.' || c == '('),
                                f.name
                            ),
                            file.line_text(line),
                        )
                        .with_offset(off, file.col_of(off)),
                    );
                }
            }
        }
        out
    }
}
