//! Operation-level model of the `FrameAlloc` two-level atomic
//! protocol, explored exhaustively by the generic interleave engine.
//!
//! Each worker thread runs a script of alloc/free operations broken
//! into the protocol's atomic micro-steps, exactly mirroring
//! `prosper-gemos::llalloc`:
//!
//! * **alloc**: root-counter gate (`fetch_update` dec, or OOM) →
//!   subtree-counter dec (via the worker's reservation, or a steal of
//!   the fullest subtree followed by the reservation-slot publish) →
//!   bitfield bit claim (`fetch_or` of the lowest clear bit);
//! * **free**: bitfield bit clear → subtree-counter inc →
//!   root-counter inc (the reverse order, which is what keeps the
//!   in-flight invariant);
//! * **persist** (optional extra thread): stage every bitfield word
//!   into the durable log, then seal.
//!
//! Retry loops in the real code (`claim_in_subtree`'s load +
//! `fetch_or` loop, `take_lowest_subtree`'s scan) are coarsened into
//! one atomic find-and-update micro-step each; this is sound because
//! a failed CAS iteration writes nothing another thread can observe.
//! The steal's target scan + counter dec is coarsened the same way.
//!
//! After every step the model checks the exact conservation equations
//! (free bits = counter + held units + pending increments, at the
//! root and per subtree) plus the documented inequality
//! `sum(subtree_free) >= total_free + in-flight` — the invariant that
//! guarantees a gated alloc always finds a subtree. At every
//! completed schedule the event history goes through
//! [`check_alloc_history`] (linearizability against the serial
//! reference) and the durable log through [`check_crash_images`]
//! (every seal-consistent post-crash image recovers conservatively).
//!
//! [`AllocBug`] seeds ordering bugs that each drop or reorder exactly
//! one synchronization or persist edge, proving the checks have
//! teeth.

use super::history::{check_alloc_history, AllocHistoryViolation, AllocTraceEvent, HistoryContext};
use super::persist::{check_crash_images, DurableStore, PersistViolation};
use crate::interleave::{ModelProgram, StepEffect};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Seeded ordering bugs. Each drops or reorders exactly one edge of
/// the protocol; the model must detect every one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocBug {
    /// Correct protocol.
    None,
    /// The reservation path claims the bitfield bit *before* the
    /// subtree-counter decrement lands (drops the dec→claim edge).
    CounterStoreBeforeBitClaim,
    /// The steal publishes the reservation slot without the
    /// unit-transferring counter CAS (drops the CAS→publish edge).
    StealWithoutReservationCas,
    /// A free re-increments the root counter before the subtree
    /// counter (reorders the subtree-inc→root-inc edge).
    FreeRootBeforeSubtree,
    /// The persist thread seals before the last staged word is
    /// issued (reorders the stage→seal persist edge).
    SealBeforeStagedWords,
}

impl AllocBug {
    /// Every seeded bug.
    pub const ALL: [Self; 4] = [
        Self::CounterStoreBeforeBitClaim,
        Self::StealWithoutReservationCas,
        Self::FreeRootBeforeSubtree,
        Self::SealBeforeStagedWords,
    ];

    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::CounterStoreBeforeBitClaim => "counter-store-before-bit-claim",
            Self::StealWithoutReservationCas => "steal-without-reservation-cas",
            Self::FreeRootBeforeSubtree => "free-root-before-subtree",
            Self::SealBeforeStagedWords => "seal-before-staged-words",
        }
    }
}

/// Model geometry and workload.
#[derive(Clone, Copy, Debug)]
pub struct AllocConfig {
    /// Concurrent worker threads.
    pub workers: usize,
    /// Subtrees (one bitfield word each).
    pub subtrees: usize,
    /// Frames per subtree (at most 64).
    pub frames_per_subtree: u64,
    /// Allocations each worker performs.
    pub allocs_per_worker: usize,
    /// Each worker frees its first allocated frame after its allocs.
    pub free_first: bool,
    /// Use the reservation/steal path (`alloc_for`); otherwise the
    /// serial lowest-subtree path (`alloc`), checked against the
    /// `PhysMemory` lowest-free reference policy when single-worker.
    pub reservations: bool,
    /// Add the persist thread (stage every word, then seal).
    pub persist: bool,
    /// Seeded bug to plant.
    pub bug: AllocBug,
}

impl Default for AllocConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            subtrees: 2,
            frames_per_subtree: 2,
            allocs_per_worker: 2,
            free_first: true,
            reservations: true,
            persist: false,
            bug: AllocBug::None,
        }
    }
}

/// An invariant violation found by the allocator model.
#[derive(Clone, Debug)]
pub enum AllocViolation {
    /// `free_bits != total_free + gate-held units + pending root
    /// increments` — the root conservation equation.
    RootConservation {
        /// Free bits in the bitfield.
        free_bits: u64,
        /// Root counter value.
        total_free: u64,
        /// Units held between gate and claim.
        units: u64,
        /// Frees past the clear, root inc outstanding.
        pending: u64,
    },
    /// The per-subtree conservation equation failed.
    SubtreeConservation {
        /// Subtree index.
        subtree: usize,
        /// Free bits in the subtree's word.
        free_bits: u64,
        /// Subtree counter value.
        counter: u64,
        /// Units held between acquire and claim.
        units: u64,
        /// Frees past the clear, subtree inc outstanding.
        pending: u64,
    },
    /// `sum(subtree_free) >= total_free + in-flight` failed.
    InFlight {
        /// Sum of subtree counters.
        sum_subtree_free: u64,
        /// Root counter value.
        total_free: u64,
        /// Gated allocs holding no subtree unit.
        in_flight: u64,
    },
    /// A claim found a frame already outstanding.
    DoubleHandOut {
        /// Frame number.
        pfn: u64,
    },
    /// A claim found no clear bit in its acquired subtree.
    ClaimWithoutFreeBit {
        /// Subtree index.
        subtree: usize,
    },
    /// At quiescence, a bitfield bit is set with no owner.
    LostFrame {
        /// Frame number.
        pfn: u64,
    },
    /// The event history failed the linearizability replay.
    History(AllocHistoryViolation),
    /// A reachable post-crash image recovers incoherently.
    Persist(PersistViolation),
}

impl fmt::Display for AllocViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RootConservation {
                free_bits,
                total_free,
                units,
                pending,
            } => write!(
                f,
                "root conservation broken: free_bits={free_bits} != \
                 total_free={total_free} + units={units} + pending={pending}"
            ),
            Self::SubtreeConservation {
                subtree,
                free_bits,
                counter,
                units,
                pending,
            } => write!(
                f,
                "subtree {subtree} conservation broken: free_bits={free_bits} != \
                 counter={counter} + units={units} + pending={pending}"
            ),
            Self::InFlight {
                sum_subtree_free,
                total_free,
                in_flight,
            } => write!(
                f,
                "in-flight invariant broken: sum(subtree_free)={sum_subtree_free} < \
                 total_free={total_free} + in-flight={in_flight}"
            ),
            Self::DoubleHandOut { pfn } => write!(f, "frame {pfn} handed out twice"),
            Self::ClaimWithoutFreeBit { subtree } => {
                write!(f, "claim found no clear bit in subtree {subtree}")
            }
            Self::LostFrame { pfn } => write!(f, "frame {pfn} allocated with no owner"),
            Self::History(v) => write!(f, "history: {v}"),
            Self::Persist(v) => write!(f, "persist: {v}"),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    Alloc,
    Free(usize),
}

/// Micro-step cursor within the current operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Micro {
    /// Alloc: root gate. Free: bit clear.
    Start,
    /// Alloc: subtree-counter acquire (reservation or steal).
    Acquire,
    /// Alloc: publish the stolen subtree into the reservation slot.
    StealPublish,
    /// Alloc: bitfield bit claim.
    Claim,
    /// Bugged reservation path only: the deferred counter decrement.
    LateDec,
    /// Free: first counter re-increment (subtree, or root under the
    /// reordering bug).
    FreeMid1,
    /// Free: second counter re-increment.
    FreeMid2,
}

#[derive(Clone, Debug, Hash)]
struct WorkerState {
    op: usize,
    micro: Micro,
    target: usize,
    stolen: bool,
    late_dec: bool,
    has_root_unit: bool,
    has_sub_unit: Option<usize>,
    pending_sub: Option<usize>,
    pending_root: bool,
    free_pfn: u64,
    held: Vec<u64>,
}

/// Per-schedule model state.
#[derive(Clone, Debug)]
pub struct AllocState {
    bitmap: Vec<u64>,
    subtree_free: Vec<u64>,
    total_free: u64,
    reservations: Vec<u64>,
    handed: BTreeSet<u64>,
    workers: Vec<WorkerState>,
    persist_pc: usize,
    durable_log: Vec<DurableStore>,
    history: Vec<AllocTraceEvent>,
    /// Violations found during the last executed step, drained (by
    /// clone) by `check_step`; cleared at the start of each step.
    fresh: Vec<AllocViolation>,
}

/// The allocator model: a [`ModelProgram`] over [`AllocState`].
#[derive(Clone, Debug)]
pub struct AllocModel {
    cfg: AllocConfig,
    scripts: Vec<Vec<Op>>,
}

impl AllocModel {
    /// Builds the model for `cfg`.
    ///
    /// # Panics
    /// When `frames_per_subtree` exceeds 64 (one bitfield word per
    /// subtree) or the geometry is degenerate.
    #[must_use]
    pub fn new(cfg: AllocConfig) -> Self {
        assert!(
            cfg.frames_per_subtree >= 1 && cfg.frames_per_subtree <= 64,
            "one bitfield word per subtree"
        );
        assert!(cfg.subtrees >= 1 && cfg.workers >= 1);
        let mut script = vec![Op::Alloc; cfg.allocs_per_worker];
        if cfg.free_first && cfg.allocs_per_worker > 0 {
            script.push(Op::Free(0));
        }
        Self {
            scripts: vec![script; cfg.workers],
            cfg,
        }
    }

    /// The model's geometry as a [`HistoryContext`] for the shared
    /// history checker.
    #[must_use]
    pub fn history_ctx(&self) -> HistoryContext {
        HistoryContext {
            total_frames: self.total_frames(),
            base_pfn: 0,
            frames_per_subtree: self.cfg.frames_per_subtree,
            subtrees: self.cfg.subtrees,
            words_per_seal: self.cfg.subtrees,
            enforce_serial_policy: !self.cfg.reservations && self.cfg.workers == 1,
        }
    }

    fn total_frames(&self) -> u64 {
        self.cfg.subtrees as u64 * self.cfg.frames_per_subtree
    }

    fn word_mask(&self) -> u64 {
        if self.cfg.frames_per_subtree == 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.frames_per_subtree) - 1
        }
    }

    fn free_bits(&self, state: &AllocState, s: usize) -> u64 {
        self.cfg.frames_per_subtree - u64::from((state.bitmap[s] & self.word_mask()).count_ones())
    }

    /// Steal target: the subtree with the most free frames (ties to
    /// the lowest index), preferring ones not reserved by another
    /// worker, falling back to reserved ones — mirroring
    /// `FrameAlloc::steal_target`.
    fn steal_target(&self, state: &AllocState, tid: usize) -> Option<usize> {
        let reserved_by_other = |s: usize| {
            state
                .reservations
                .iter()
                .enumerate()
                .any(|(w, &r)| w != tid && r == s as u64 + 1)
        };
        let best = |skip_reserved: bool| {
            (0..self.cfg.subtrees)
                .filter(|&s| state.subtree_free[s] > 0)
                .filter(|&s| !skip_reserved || !reserved_by_other(s))
                .max_by_key(|&s| (state.subtree_free[s], std::cmp::Reverse(s)))
        };
        best(true).or_else(|| best(false))
    }

    fn alloc_step(&self, state: &mut AllocState, tid: usize) -> &'static str {
        let op_id = op_id(tid, state.workers[tid].op);
        match state.workers[tid].micro {
            Micro::Start => {
                if state.total_free == 0 {
                    state.history.push(AllocTraceEvent::Oom { op: op_id });
                    finish_op(&mut state.workers[tid]);
                    return "alloc:gate-oom";
                }
                state.total_free -= 1;
                state.workers[tid].has_root_unit = true;
                state.workers[tid].micro = Micro::Acquire;
                state.history.push(AllocTraceEvent::Gate { op: op_id });
                "alloc:gate"
            }
            Micro::Acquire => {
                if self.cfg.reservations {
                    let slot = state.reservations[tid];
                    if self.cfg.bug == AllocBug::CounterStoreBeforeBitClaim && slot != 0 {
                        // Seeded bug: the reservation path defers the
                        // counter decrement until after the bit claim.
                        let w = &mut state.workers[tid];
                        w.target = slot as usize - 1;
                        w.stolen = false;
                        w.late_dec = true;
                        w.micro = Micro::Claim;
                        return "alloc:acquire-deferred";
                    }
                    if slot != 0 && state.subtree_free[slot as usize - 1] > 0 {
                        let s = slot as usize - 1;
                        state.subtree_free[s] -= 1;
                        let w = &mut state.workers[tid];
                        w.target = s;
                        w.stolen = false;
                        w.has_sub_unit = Some(s);
                        w.micro = Micro::Claim;
                        state.history.push(AllocTraceEvent::SubtreeAcquire {
                            op: op_id,
                            subtree: u32::try_from(s).unwrap_or(u32::MAX),
                            stolen: false,
                        });
                        return "alloc:acquire-reserved";
                    }
                    // Steal. `enabled` guarantees a target exists.
                    let s = self
                        .steal_target(state, tid)
                        .expect("enabled() admits steals only with a free subtree");
                    let w = &mut state.workers[tid];
                    w.target = s;
                    w.stolen = true;
                    w.micro = Micro::StealPublish;
                    if self.cfg.bug == AllocBug::StealWithoutReservationCas {
                        // Seeded bug: publish without the
                        // unit-transferring counter CAS.
                        return "alloc:steal-nocas";
                    }
                    state.subtree_free[s] -= 1;
                    state.workers[tid].has_sub_unit = Some(s);
                    state.history.push(AllocTraceEvent::SubtreeAcquire {
                        op: op_id,
                        subtree: u32::try_from(s).unwrap_or(u32::MAX),
                        stolen: true,
                    });
                    "alloc:steal"
                } else {
                    // Serial path: lowest subtree with a free frame.
                    let s = (0..self.cfg.subtrees)
                        .find(|&s| state.subtree_free[s] > 0)
                        .expect("enabled() admits serial acquire only with a free subtree");
                    state.subtree_free[s] -= 1;
                    let w = &mut state.workers[tid];
                    w.target = s;
                    w.stolen = false;
                    w.has_sub_unit = Some(s);
                    w.micro = Micro::Claim;
                    state.history.push(AllocTraceEvent::SubtreeAcquire {
                        op: op_id,
                        subtree: u32::try_from(s).unwrap_or(u32::MAX),
                        stolen: false,
                    });
                    "alloc:acquire-lowest"
                }
            }
            Micro::StealPublish => {
                let s = state.workers[tid].target;
                state.reservations[tid] = s as u64 + 1;
                state.workers[tid].micro = Micro::Claim;
                "alloc:steal-publish"
            }
            Micro::Claim => {
                let s = state.workers[tid].target;
                let Some(bit) =
                    (0..self.cfg.frames_per_subtree).find(|b| state.bitmap[s] & (1 << b) == 0)
                else {
                    state
                        .fresh
                        .push(AllocViolation::ClaimWithoutFreeBit { subtree: s });
                    finish_op(&mut state.workers[tid]);
                    return "alloc:claim-empty";
                };
                state.bitmap[s] |= 1 << bit;
                let pfn = s as u64 * self.cfg.frames_per_subtree + bit;
                if !state.handed.insert(pfn) {
                    state.fresh.push(AllocViolation::DoubleHandOut { pfn });
                }
                state
                    .history
                    .push(AllocTraceEvent::Claim { op: op_id, pfn });
                let w = &mut state.workers[tid];
                w.held.push(pfn);
                w.has_root_unit = false;
                w.has_sub_unit = None;
                if w.late_dec {
                    w.micro = Micro::LateDec;
                } else {
                    finish_op(w);
                }
                "alloc:claim"
            }
            Micro::LateDec => {
                // The deferred decrement of the seeded bug, emitted
                // as a late acquire event so the history checker sees
                // the misordering too.
                let s = state.workers[tid].target;
                state.subtree_free[s] = state.subtree_free[s].saturating_sub(1);
                state.history.push(AllocTraceEvent::SubtreeAcquire {
                    op: op_id,
                    subtree: u32::try_from(s).unwrap_or(u32::MAX),
                    stolen: false,
                });
                finish_op(&mut state.workers[tid]);
                "alloc:late-dec"
            }
            Micro::FreeMid1 | Micro::FreeMid2 => unreachable!("free micro in alloc op"),
        }
    }

    fn free_step(&self, state: &mut AllocState, tid: usize, idx: usize) -> &'static str {
        let op_id = op_id(tid, state.workers[tid].op);
        let root_first = self.cfg.bug == AllocBug::FreeRootBeforeSubtree;
        match state.workers[tid].micro {
            Micro::Start => {
                if state.workers[tid].held.len() <= idx {
                    // The alloc this free pairs with hit OOM.
                    finish_op(&mut state.workers[tid]);
                    return "free:skip";
                }
                let pfn = state.workers[tid].held.remove(idx);
                let s = (pfn / self.cfg.frames_per_subtree) as usize;
                state.bitmap[s] &= !(1 << (pfn % self.cfg.frames_per_subtree));
                state.handed.remove(&pfn);
                let w = &mut state.workers[tid];
                w.free_pfn = pfn;
                w.target = s;
                w.pending_sub = Some(s);
                w.pending_root = true;
                w.micro = Micro::FreeMid1;
                state
                    .history
                    .push(AllocTraceEvent::FreeClear { op: op_id, pfn });
                "free:clear"
            }
            Micro::FreeMid1 => {
                state.workers[tid].micro = Micro::FreeMid2;
                if root_first {
                    state.total_free += 1;
                    state.workers[tid].pending_root = false;
                    state.history.push(AllocTraceEvent::FreeRoot { op: op_id });
                    "free:root-early"
                } else {
                    let s = state.workers[tid].target;
                    state.subtree_free[s] += 1;
                    state.workers[tid].pending_sub = None;
                    state.history.push(AllocTraceEvent::FreeSubtree {
                        op: op_id,
                        subtree: u32::try_from(s).unwrap_or(u32::MAX),
                    });
                    "free:subtree"
                }
            }
            Micro::FreeMid2 => {
                let label = if root_first {
                    let s = state.workers[tid].target;
                    state.subtree_free[s] += 1;
                    state.workers[tid].pending_sub = None;
                    state.history.push(AllocTraceEvent::FreeSubtree {
                        op: op_id,
                        subtree: u32::try_from(s).unwrap_or(u32::MAX),
                    });
                    "free:subtree-late"
                } else {
                    state.total_free += 1;
                    state.workers[tid].pending_root = false;
                    state.history.push(AllocTraceEvent::FreeRoot { op: op_id });
                    "free:root"
                };
                finish_op(&mut state.workers[tid]);
                label
            }
            _ => unreachable!("alloc micro in free op"),
        }
    }

    /// The persist thread's step schedule: word indices to stage in
    /// issue order, with the seal's position among them.
    fn persist_plan(&self) -> (Vec<usize>, usize) {
        let words: Vec<usize> = (0..self.cfg.subtrees).collect();
        if self.cfg.bug == AllocBug::SealBeforeStagedWords && self.cfg.subtrees >= 2 {
            // Seal is issued before the last staged word.
            (words, self.cfg.subtrees - 1)
        } else {
            (words, self.cfg.subtrees)
        }
    }

    fn persist_step(&self, state: &mut AllocState) -> &'static str {
        let (words, seal_at) = self.persist_plan();
        let pc = state.persist_pc;
        state.persist_pc += 1;
        if pc == seal_at {
            state.durable_log.push(DurableStore::Seal);
            state.history.push(AllocTraceEvent::Seal { seq: 1 });
            return "persist:seal";
        }
        let wi = if pc < seal_at { pc } else { pc - 1 };
        let idx = words[wi];
        let val = state.bitmap[idx] & self.word_mask();
        state.durable_log.push(DurableStore::Word { idx, val });
        state.history.push(AllocTraceEvent::StageWord {
            seq: 1,
            word: u32::try_from(idx).unwrap_or(u32::MAX),
            value: val,
        });
        "persist:stage"
    }

    fn persist_len(&self) -> usize {
        if self.cfg.persist {
            self.cfg.subtrees + 1
        } else {
            0
        }
    }
}

fn op_id(tid: usize, op: usize) -> u64 {
    tid as u64 * 100 + op as u64
}

fn finish_op(w: &mut WorkerState) {
    w.op += 1;
    w.micro = Micro::Start;
    w.stolen = false;
    w.late_dec = false;
}

impl ModelProgram for AllocModel {
    type State = AllocState;
    type Violation = AllocViolation;

    fn thread_count(&self) -> usize {
        self.cfg.workers + usize::from(self.cfg.persist)
    }

    fn thread_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (0..self.cfg.workers)
            .map(|w| format!("worker-{w}"))
            .collect();
        if self.cfg.persist {
            names.push("persist".to_owned());
        }
        names
    }

    fn init_state(&self) -> AllocState {
        AllocState {
            bitmap: vec![0; self.cfg.subtrees],
            subtree_free: vec![self.cfg.frames_per_subtree; self.cfg.subtrees],
            total_free: self.total_frames(),
            reservations: vec![0; self.cfg.workers],
            handed: BTreeSet::new(),
            workers: (0..self.cfg.workers)
                .map(|_| WorkerState {
                    op: 0,
                    micro: Micro::Start,
                    target: 0,
                    stolen: false,
                    late_dec: false,
                    has_root_unit: false,
                    has_sub_unit: None,
                    pending_sub: None,
                    pending_root: false,
                    free_pfn: 0,
                    held: Vec::new(),
                })
                .collect(),
            persist_pc: 0,
            durable_log: Vec::new(),
            history: Vec::new(),
            fresh: Vec::new(),
        }
    }

    fn thread_done(&self, state: &AllocState, tid: usize) -> bool {
        if tid >= self.cfg.workers {
            return state.persist_pc >= self.persist_len();
        }
        state.workers[tid].op >= self.scripts[tid].len()
    }

    fn enabled(&self, state: &AllocState, tid: usize, _sem_counts: &[u64]) -> bool {
        if tid >= self.cfg.workers {
            return state.persist_pc < self.persist_len();
        }
        let w = &state.workers[tid];
        let Some(op) = self.scripts[tid].get(w.op) else {
            return false;
        };
        if !matches!(op, Op::Alloc) || w.micro != Micro::Acquire {
            return true;
        }
        // The acquire micro-step needs a subtree with a free counter
        // unit; under the correct protocol the in-flight invariant
        // guarantees one exists for every gated alloc, so a deadlock
        // here is itself a detected bug. The deferred-decrement bug
        // path proceeds on the reservation alone.
        (self.cfg.bug == AllocBug::CounterStoreBeforeBitClaim
            && self.cfg.reservations
            && state.reservations[tid] != 0)
            || state.subtree_free.iter().any(|&c| c > 0)
    }

    fn step(&self, state: &mut AllocState, tid: usize) -> StepEffect {
        state.fresh.clear();
        let label = if tid >= self.cfg.workers {
            self.persist_step(state)
        } else {
            match self.scripts[tid][state.workers[tid].op] {
                Op::Alloc => self.alloc_step(state, tid),
                Op::Free(idx) => self.free_step(state, tid, idx),
            }
        };
        StepEffect {
            sync: None,
            // Every model micro-step is one atomic instruction in the
            // real allocator; there are no unordered plain accesses
            // to race on, so the location table stays empty.
            accesses: Vec::new(),
            label,
        }
    }

    fn check_step(&self, state: &AllocState) -> Vec<AllocViolation> {
        let mut out = state.fresh.clone();
        // Root conservation: free bits = root counter + gate-held
        // units + pending root increments.
        let free_bits: u64 = (0..self.cfg.subtrees)
            .map(|s| self.free_bits(state, s))
            .sum();
        let units = state.workers.iter().filter(|w| w.has_root_unit).count() as u64;
        let pending = state.workers.iter().filter(|w| w.pending_root).count() as u64;
        if free_bits != state.total_free + units + pending {
            out.push(AllocViolation::RootConservation {
                free_bits,
                total_free: state.total_free,
                units,
                pending,
            });
        }
        // Per-subtree conservation.
        for s in 0..self.cfg.subtrees {
            let fb = self.free_bits(state, s);
            let units = state
                .workers
                .iter()
                .filter(|w| w.has_sub_unit == Some(s))
                .count() as u64;
            let pending = state
                .workers
                .iter()
                .filter(|w| w.pending_sub == Some(s))
                .count() as u64;
            if fb != state.subtree_free[s] + units + pending {
                out.push(AllocViolation::SubtreeConservation {
                    subtree: s,
                    free_bits: fb,
                    counter: state.subtree_free[s],
                    units,
                    pending,
                });
            }
        }
        // In-flight coverage: every gated alloc without a subtree
        // unit must still be able to find one.
        let in_flight = state
            .workers
            .iter()
            .filter(|w| w.has_root_unit && w.has_sub_unit.is_none())
            .count() as u64;
        let sum: u64 = state.subtree_free.iter().sum();
        if sum < state.total_free + in_flight {
            out.push(AllocViolation::InFlight {
                sum_subtree_free: sum,
                total_free: state.total_free,
                in_flight,
            });
        }
        out
    }

    fn check_leaf(&self, state: &AllocState) -> Vec<AllocViolation> {
        let mut out = Vec::new();
        // Quiescent conservation: every set bit has an owner.
        for s in 0..self.cfg.subtrees {
            for b in 0..self.cfg.frames_per_subtree {
                let pfn = s as u64 * self.cfg.frames_per_subtree + b;
                if state.bitmap[s] & (1 << b) != 0 && !state.handed.contains(&pfn) {
                    out.push(AllocViolation::LostFrame { pfn });
                }
            }
        }
        // Linearizability of the full event history.
        out.extend(
            check_alloc_history(&state.history, &self.history_ctx())
                .into_iter()
                .map(AllocViolation::History),
        );
        // Every seal-consistent post-crash image recovers coherently.
        if self.cfg.persist {
            let base = vec![0u64; self.cfg.subtrees];
            out.extend(
                check_crash_images(&base, &state.durable_log)
                    .into_iter()
                    .map(AllocViolation::Persist),
            );
        }
        out
    }

    /// Fingerprint over everything the step-level checks and the
    /// remaining execution depend on — including the durable log (the
    /// persist leaf check stays memoization-safe) but excluding the
    /// event history, whose leaf replay only covers first-visit
    /// continuations under memoization (the documented trade-off).
    fn fingerprint(&self, state: &AllocState) -> Option<u64> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        state.bitmap.hash(&mut h);
        state.subtree_free.hash(&mut h);
        state.total_free.hash(&mut h);
        state.reservations.hash(&mut h);
        state.workers.hash(&mut h);
        state.persist_pc.hash(&mut h);
        state.durable_log.hash(&mut h);
        Some(h.finish())
    }
}
