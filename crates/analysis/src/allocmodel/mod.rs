//! Allocator linearizability + persist-ordering model checker.
//!
//! Verification layer for the llfree-style lock-free frame allocator
//! (`prosper-gemos::llalloc::FrameAlloc`) and its durable NVM tree,
//! built on the generic bounded-preemption explorer from
//! [`crate::interleave`]:
//!
//! * [`model`] — an operation-level model of the two-level atomic
//!   protocol (root gate → subtree dec → bit claim; free in reverse;
//!   reservation steal; staged persist + seal), with exact
//!   conservation invariants checked at every explored state and
//!   seeded ordering bugs ([`model::AllocBug`]) proving detection.
//! * [`history`] — the shared linearizability checker over allocator
//!   event streams: the model's traces and the real allocator's
//!   `AllocProbe` logs go through the same replay ("one checker, two
//!   witnesses"; see `tests/alloc_conformance.rs`).
//! * [`persist`] — seal-barrier subset semantics: exhaustive
//!   enumeration of reachable post-crash durable images, asserting
//!   recovery's popcount rebuild is conservation-preserving for all
//!   of them.
//! * [`probe`] — the 1:1 bridge from real `AllocProbe` event streams
//!   to the checker's trace vocabulary.

pub mod history;
pub mod model;
pub mod persist;
pub mod probe;

pub use history::{check_alloc_history, AllocHistoryViolation, AllocTraceEvent, HistoryContext};
pub use model::{AllocBug, AllocConfig, AllocModel, AllocViolation};
pub use persist::{check_crash_images, DurableStore, PersistViolation};
pub use probe::probe_trace;
