//! The allocator history checker — one checker, two witnesses.
//!
//! [`check_alloc_history`] validates a totally-ordered stream of
//! allocator protocol events ([`AllocTraceEvent`]) against the
//! two-level protocol's sequential specification. The same function
//! runs over two very different witnesses:
//!
//! * event traces produced by the exhaustive allocator model
//!   ([`super::model::AllocModel`]) at every completed schedule, and
//! * `AllocProbe` logs recorded from the *real*
//!   `prosper-gemos::llalloc::FrameAlloc` under concurrent load
//!   (see `tests/alloc_conformance.rs`).
//!
//! # Why a total order is enough (linearizability)
//!
//! Every event in the stream corresponds to one successful atomic
//! instruction — the root-gate `fetch_update`, the subtree-counter
//! `fetch_update`, the bitfield `fetch_or`/`fetch_and`, the counter
//! `fetch_add`s. Those instructions *are* the operations'
//! linearization points, and the probe records each event while
//! holding the lock around its instruction, so log order equals
//! atomic order. Checking the replay of that total order against the
//! sequential frame-set specification (allocs hand out free frames,
//! gate failures only on a zero counter, frees return held frames,
//! counters never go negative) is exactly a linearizability check
//! with known linearization points. The optional serial-policy mode
//! additionally pins the serial path to the `PhysMemory` reference
//! (always the lowest free frame).
//!
//! The replayed counters are *exact*, not conservative: the event
//! stream contains every successful atomic on each counter, so a
//! replayed decrement below zero or a gate passing a zero counter can
//! only mean a reordered or forged stream — which is what the
//! forged-reorder rejection tests prove.

use std::collections::BTreeSet;
use std::fmt;

/// One allocator protocol event. Each corresponds to one successful
/// atomic instruction on the real allocator (or one model micro-step).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocTraceEvent {
    /// Root-counter gate passed (`total_free` decremented).
    Gate {
        /// Operation id.
        op: u64,
    },
    /// A subtree counter was decremented for this op.
    SubtreeAcquire {
        /// Operation id.
        op: u64,
        /// Subtree index.
        subtree: u32,
        /// True when the unit came from a reservation steal.
        stolen: bool,
    },
    /// The bitfield bit was claimed (`fetch_or` won).
    Claim {
        /// Operation id.
        op: u64,
        /// Frame number handed out.
        pfn: u64,
    },
    /// Root-counter gate failed: the pool is exhausted.
    Oom {
        /// Operation id.
        op: u64,
    },
    /// The bitfield bit was cleared (`fetch_and` on a set bit).
    FreeClear {
        /// Operation id.
        op: u64,
        /// Frame number returned.
        pfn: u64,
    },
    /// The subtree counter was re-incremented by a free.
    FreeSubtree {
        /// Operation id.
        op: u64,
        /// Subtree index.
        subtree: u32,
    },
    /// The root counter was re-incremented by a free.
    FreeRoot {
        /// Operation id.
        op: u64,
    },
    /// One bitfield word was staged into the durable tree.
    StageWord {
        /// Staging sequence (epoch).
        seq: u64,
        /// Word index.
        word: u32,
        /// Staged word value.
        value: u64,
    },
    /// The seal record was written — the durability point.
    Seal {
        /// Staging sequence (epoch).
        seq: u64,
    },
}

/// Geometry and policy context for one history check.
#[derive(Clone, Debug)]
pub struct HistoryContext {
    /// Total usable frames (all free at history start).
    pub total_frames: u64,
    /// First frame number of the pool.
    pub base_pfn: u64,
    /// Frames per subtree (maps a pfn to its subtree).
    pub frames_per_subtree: u64,
    /// Number of subtrees.
    pub subtrees: usize,
    /// Bitfield words every seal must cover (`StageWord` count per
    /// epoch before its `Seal`).
    pub words_per_seal: usize,
    /// Pin claims to the serial `PhysMemory` reference policy (the
    /// lowest free frame). Only valid for serial (one-op-at-a-time)
    /// histories — reservations legally diverge from it.
    pub enforce_serial_policy: bool,
}

/// A violation of the allocator protocol found in an event stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocHistoryViolation {
    /// A `Claim` with no prior `SubtreeAcquire` for the op — the bit
    /// was taken without holding a counter unit.
    ClaimWithoutAcquire {
        /// Operation id.
        op: u64,
    },
    /// A `SubtreeAcquire` with no prior `Gate` for the op.
    AcquireWithoutGate {
        /// Operation id.
        op: u64,
    },
    /// An op repeated a protocol phase (two gates, two claims, …).
    DuplicatePhase {
        /// Operation id.
        op: u64,
        /// Phase name.
        phase: &'static str,
    },
    /// A free's phases ran out of order (clear → subtree → root).
    FreePhaseOrder {
        /// Operation id.
        op: u64,
        /// Offending phase.
        phase: &'static str,
    },
    /// The gate passed while the replayed root counter was zero.
    GateUnbacked {
        /// Operation id.
        op: u64,
    },
    /// A subtree decrement while the replayed counter was zero.
    AcquireUnbacked {
        /// Operation id.
        op: u64,
        /// Subtree index.
        subtree: u32,
    },
    /// The gate reported exhaustion while the replayed root counter
    /// still had free frames.
    OomWithFreeFrames {
        /// Operation id.
        op: u64,
        /// Replayed root counter at that point.
        total_free: u64,
    },
    /// A frame was handed out while already outstanding.
    DoubleHandOut {
        /// Operation id.
        op: u64,
        /// Frame number.
        pfn: u64,
    },
    /// A frame was freed while not outstanding.
    PhantomFree {
        /// Operation id.
        op: u64,
        /// Frame number.
        pfn: u64,
    },
    /// The claimed frame lies outside the acquired subtree.
    ClaimOutsideSubtree {
        /// Operation id.
        op: u64,
        /// Frame number.
        pfn: u64,
        /// Subtree the op acquired.
        acquired: u32,
    },
    /// `sum(subtree_free) >= total_free + in-flight` failed — the
    /// invariant that guarantees every gated alloc finds a subtree.
    InFlightInvariant {
        /// Replayed sum of subtree counters.
        sum_subtree_free: u64,
        /// Replayed root counter.
        total_free: u64,
        /// Ops past the gate without a subtree unit.
        in_flight: u64,
    },
    /// Serial-policy mode: the claim was not the lowest free frame.
    SerialPolicy {
        /// Operation id.
        op: u64,
        /// Frame claimed.
        pfn: u64,
        /// Lowest free frame at that point.
        lowest: u64,
    },
    /// A seal was written before all of its epoch's words were staged.
    SealBeforeStagedWords {
        /// Staging sequence.
        seq: u64,
        /// Words still missing at the seal.
        missing: usize,
    },
    /// A word was staged after its epoch's seal.
    StageAfterSeal {
        /// Staging sequence.
        seq: u64,
        /// Word index.
        word: u32,
    },
    /// Seal sequences must be strictly increasing.
    SealSequenceRegressed {
        /// Offending sequence.
        seq: u64,
        /// Previously sealed sequence.
        prior: u64,
    },
}

impl fmt::Display for AllocHistoryViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ClaimWithoutAcquire { op } => {
                write!(f, "op {op}: bit claimed without holding a subtree unit")
            }
            Self::AcquireWithoutGate { op } => {
                write!(
                    f,
                    "op {op}: subtree unit taken without passing the root gate"
                )
            }
            Self::DuplicatePhase { op, phase } => {
                write!(f, "op {op}: duplicate {phase} phase")
            }
            Self::FreePhaseOrder { op, phase } => {
                write!(
                    f,
                    "op {op}: free phase {phase} out of order (clear -> subtree -> root)"
                )
            }
            Self::GateUnbacked { op } => {
                write!(f, "op {op}: root gate passed with a zero replayed counter")
            }
            Self::AcquireUnbacked { op, subtree } => {
                write!(
                    f,
                    "op {op}: subtree {subtree} decremented below zero in replay"
                )
            }
            Self::OomWithFreeFrames { op, total_free } => {
                write!(
                    f,
                    "op {op}: OOM reported with {total_free} frames free in replay"
                )
            }
            Self::DoubleHandOut { op, pfn } => {
                write!(
                    f,
                    "op {op}: frame {pfn} handed out while already outstanding"
                )
            }
            Self::PhantomFree { op, pfn } => {
                write!(f, "op {op}: frame {pfn} freed while not outstanding")
            }
            Self::ClaimOutsideSubtree { op, pfn, acquired } => {
                write!(
                    f,
                    "op {op}: frame {pfn} claimed outside acquired subtree {acquired}"
                )
            }
            Self::InFlightInvariant {
                sum_subtree_free,
                total_free,
                in_flight,
            } => write!(
                f,
                "counter invariant broken: sum(subtree_free)={sum_subtree_free} < \
                 total_free={total_free} + in-flight={in_flight}"
            ),
            Self::SerialPolicy { op, pfn, lowest } => {
                write!(
                    f,
                    "op {op}: claimed {pfn}, serial policy requires lowest free {lowest}"
                )
            }
            Self::SealBeforeStagedWords { seq, missing } => {
                write!(f, "seq {seq}: sealed with {missing} staged word(s) missing")
            }
            Self::StageAfterSeal { seq, word } => {
                write!(f, "seq {seq}: word {word} staged after the seal")
            }
            Self::SealSequenceRegressed { seq, prior } => {
                write!(f, "seal sequence {seq} not above prior {prior}")
            }
        }
    }
}

#[derive(Clone, Copy, Default)]
struct OpProgress {
    gated: bool,
    acquired: Option<u32>,
    claimed: bool,
    oomed: bool,
    cleared: Option<u64>,
    sub_released: bool,
    root_released: bool,
}

/// Replays `events` against the allocator's sequential specification
/// and returns every violation found. See the module docs for why
/// this total-order replay is a linearizability check.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn check_alloc_history(
    events: &[AllocTraceEvent],
    ctx: &HistoryContext,
) -> Vec<AllocHistoryViolation> {
    let mut out = Vec::new();
    let mut ops: std::collections::BTreeMap<u64, OpProgress> = std::collections::BTreeMap::new();
    let mut handed: BTreeSet<u64> = BTreeSet::new();
    let mut total_free: i64 = i64::try_from(ctx.total_frames).unwrap_or(i64::MAX);
    let mut sub_free: Vec<i64> = (0..ctx.subtrees)
        .map(|s| {
            let lo = s as u64 * ctx.frames_per_subtree;
            i64::try_from(
                ctx.total_frames
                    .saturating_sub(lo)
                    .min(ctx.frames_per_subtree),
            )
            .unwrap_or(i64::MAX)
        })
        .collect();
    // Per-epoch staging progress: (staged word count, sealed).
    let mut epochs: std::collections::BTreeMap<u64, (usize, bool)> =
        std::collections::BTreeMap::new();
    let mut last_sealed_seq: u64 = 0;

    let subtree_of = |pfn: u64| -> u32 {
        u32::try_from((pfn - ctx.base_pfn) / ctx.frames_per_subtree).unwrap_or(u32::MAX)
    };

    for &ev in events {
        match ev {
            AllocTraceEvent::Gate { op } => {
                let p = ops.entry(op).or_default();
                if p.gated || p.oomed {
                    out.push(AllocHistoryViolation::DuplicatePhase { op, phase: "gate" });
                }
                p.gated = true;
                if total_free == 0 {
                    out.push(AllocHistoryViolation::GateUnbacked { op });
                }
                total_free -= 1;
            }
            AllocTraceEvent::Oom { op } => {
                let p = ops.entry(op).or_default();
                if p.gated || p.oomed {
                    out.push(AllocHistoryViolation::DuplicatePhase { op, phase: "gate" });
                }
                p.oomed = true;
                if total_free > 0 {
                    out.push(AllocHistoryViolation::OomWithFreeFrames {
                        op,
                        total_free: u64::try_from(total_free).unwrap_or(0),
                    });
                }
            }
            AllocTraceEvent::SubtreeAcquire { op, subtree, .. } => {
                let p = ops.entry(op).or_default();
                if !p.gated {
                    out.push(AllocHistoryViolation::AcquireWithoutGate { op });
                }
                if p.acquired.is_some() {
                    out.push(AllocHistoryViolation::DuplicatePhase {
                        op,
                        phase: "acquire",
                    });
                }
                p.acquired = Some(subtree);
                let s = subtree as usize;
                if s < sub_free.len() {
                    if sub_free[s] == 0 {
                        out.push(AllocHistoryViolation::AcquireUnbacked { op, subtree });
                    }
                    sub_free[s] -= 1;
                }
            }
            AllocTraceEvent::Claim { op, pfn } => {
                let p = ops.entry(op).or_default();
                match p.acquired {
                    None => out.push(AllocHistoryViolation::ClaimWithoutAcquire { op }),
                    Some(acquired) if subtree_of(pfn) != acquired => {
                        out.push(AllocHistoryViolation::ClaimOutsideSubtree { op, pfn, acquired });
                    }
                    Some(_) => {}
                }
                if p.claimed {
                    out.push(AllocHistoryViolation::DuplicatePhase { op, phase: "claim" });
                }
                p.claimed = true;
                if ctx.enforce_serial_policy {
                    let lowest = (ctx.base_pfn..ctx.base_pfn + ctx.total_frames)
                        .find(|q| !handed.contains(q))
                        .unwrap_or(pfn);
                    if pfn != lowest {
                        out.push(AllocHistoryViolation::SerialPolicy { op, pfn, lowest });
                    }
                }
                if !handed.insert(pfn) {
                    out.push(AllocHistoryViolation::DoubleHandOut { op, pfn });
                }
            }
            AllocTraceEvent::FreeClear { op, pfn } => {
                let p = ops.entry(op).or_default();
                if p.cleared.is_some() {
                    out.push(AllocHistoryViolation::DuplicatePhase { op, phase: "clear" });
                }
                p.cleared = Some(pfn);
                if !handed.remove(&pfn) {
                    out.push(AllocHistoryViolation::PhantomFree { op, pfn });
                }
            }
            AllocTraceEvent::FreeSubtree { op, subtree } => {
                let p = ops.entry(op).or_default();
                if p.cleared.is_none() || p.sub_released {
                    out.push(AllocHistoryViolation::FreePhaseOrder {
                        op,
                        phase: "subtree-inc",
                    });
                }
                if p.root_released {
                    // Root came back before the subtree — the exact
                    // reordering the in-flight invariant forbids.
                    out.push(AllocHistoryViolation::FreePhaseOrder {
                        op,
                        phase: "subtree-inc-after-root",
                    });
                }
                p.sub_released = true;
                if (subtree as usize) < sub_free.len() {
                    sub_free[subtree as usize] += 1;
                }
            }
            AllocTraceEvent::FreeRoot { op } => {
                let p = ops.entry(op).or_default();
                if !p.sub_released {
                    out.push(AllocHistoryViolation::FreePhaseOrder {
                        op,
                        phase: "root-inc",
                    });
                }
                if p.root_released {
                    out.push(AllocHistoryViolation::DuplicatePhase {
                        op,
                        phase: "root-inc",
                    });
                }
                p.root_released = true;
                total_free += 1;
            }
            AllocTraceEvent::StageWord { seq, word, .. } => {
                let e = epochs.entry(seq).or_insert((0, false));
                if e.1 {
                    out.push(AllocHistoryViolation::StageAfterSeal { seq, word });
                }
                e.0 += 1;
            }
            AllocTraceEvent::Seal { seq } => {
                let e = epochs.entry(seq).or_insert((0, false));
                if e.0 < ctx.words_per_seal {
                    out.push(AllocHistoryViolation::SealBeforeStagedWords {
                        seq,
                        missing: ctx.words_per_seal - e.0,
                    });
                }
                e.1 = true;
                if seq <= last_sealed_seq {
                    out.push(AllocHistoryViolation::SealSequenceRegressed {
                        seq,
                        prior: last_sealed_seq,
                    });
                }
                last_sealed_seq = seq;
            }
        }
        // The in-flight invariant, replayed after every event: the
        // subtree counters must always cover the root counter plus
        // every alloc that passed the gate but holds no subtree unit
        // yet — otherwise a gated alloc can find no subtree and spin.
        let in_flight = ops
            .values()
            .filter(|p| p.gated && p.acquired.is_none() && !p.claimed)
            .count() as u64;
        let sum: i64 = sub_free.iter().sum();
        if sum < total_free + i64::try_from(in_flight).unwrap_or(0) {
            out.push(AllocHistoryViolation::InFlightInvariant {
                sum_subtree_free: u64::try_from(sum.max(0)).unwrap_or(0),
                total_free: u64::try_from(total_free.max(0)).unwrap_or(0),
                in_flight,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> HistoryContext {
        HistoryContext {
            total_frames: 4,
            base_pfn: 0,
            frames_per_subtree: 2,
            subtrees: 2,
            words_per_seal: 2,
            enforce_serial_policy: false,
        }
    }

    fn alloc_events(op: u64, subtree: u32, pfn: u64) -> Vec<AllocTraceEvent> {
        vec![
            AllocTraceEvent::Gate { op },
            AllocTraceEvent::SubtreeAcquire {
                op,
                subtree,
                stolen: false,
            },
            AllocTraceEvent::Claim { op, pfn },
        ]
    }

    #[test]
    fn clean_serial_history_passes() {
        let mut ev = alloc_events(1, 0, 0);
        ev.extend(alloc_events(2, 0, 1));
        ev.extend([
            AllocTraceEvent::FreeClear { op: 3, pfn: 0 },
            AllocTraceEvent::FreeSubtree { op: 3, subtree: 0 },
            AllocTraceEvent::FreeRoot { op: 3 },
            AllocTraceEvent::StageWord {
                seq: 1,
                word: 0,
                value: 2,
            },
            AllocTraceEvent::StageWord {
                seq: 1,
                word: 1,
                value: 0,
            },
            AllocTraceEvent::Seal { seq: 1 },
        ]);
        let mut c = ctx();
        c.enforce_serial_policy = true;
        assert!(check_alloc_history(&ev, &c).is_empty());
    }

    #[test]
    fn double_hand_out_is_flagged() {
        let mut ev = alloc_events(1, 0, 0);
        ev.extend(alloc_events(2, 0, 0));
        assert!(check_alloc_history(&ev, &ctx())
            .iter()
            .any(|v| matches!(v, AllocHistoryViolation::DoubleHandOut { pfn: 0, .. })));
    }

    #[test]
    fn claim_without_acquire_is_flagged() {
        let ev = [
            AllocTraceEvent::Gate { op: 1 },
            AllocTraceEvent::Claim { op: 1, pfn: 0 },
        ];
        assert!(check_alloc_history(&ev, &ctx())
            .iter()
            .any(|v| matches!(v, AllocHistoryViolation::ClaimWithoutAcquire { op: 1 })));
    }

    #[test]
    fn root_before_subtree_free_breaks_in_flight_invariant() {
        let mut ev = alloc_events(1, 0, 0);
        ev.extend([
            AllocTraceEvent::FreeClear { op: 2, pfn: 0 },
            AllocTraceEvent::FreeRoot { op: 2 },
            AllocTraceEvent::FreeSubtree { op: 2, subtree: 0 },
        ]);
        let got = check_alloc_history(&ev, &ctx());
        assert!(got
            .iter()
            .any(|v| matches!(v, AllocHistoryViolation::FreePhaseOrder { .. })));
        assert!(got
            .iter()
            .any(|v| matches!(v, AllocHistoryViolation::InFlightInvariant { .. })));
    }

    #[test]
    fn seal_before_staged_words_is_flagged() {
        let ev = [
            AllocTraceEvent::StageWord {
                seq: 1,
                word: 0,
                value: 0,
            },
            AllocTraceEvent::Seal { seq: 1 },
            AllocTraceEvent::StageWord {
                seq: 1,
                word: 1,
                value: 0,
            },
        ];
        let got = check_alloc_history(&ev, &ctx());
        assert!(got
            .iter()
            .any(|v| matches!(v, AllocHistoryViolation::SealBeforeStagedWords { .. })));
        assert!(got
            .iter()
            .any(|v| matches!(v, AllocHistoryViolation::StageAfterSeal { .. })));
    }

    #[test]
    fn serial_policy_divergence_is_flagged() {
        let ev = alloc_events(1, 1, 2);
        let mut c = ctx();
        c.enforce_serial_policy = true;
        assert!(check_alloc_history(&ev, &c)
            .iter()
            .any(|v| matches!(v, AllocHistoryViolation::SerialPolicy { lowest: 0, .. })));
    }
}
