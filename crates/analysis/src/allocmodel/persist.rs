//! Persist-ordering subset semantics for the durable allocator tree.
//!
//! The `DurableAllocTree` persists one epoch as a sequence of
//! staged-word stores followed by a seal store. At a crash, the set
//! of stores that actually reached NVM is any subset of the issued
//! stores that respects the seal barrier:
//!
//! * every store issued *before* the seal is ordered before it — if
//!   the seal is durable, so are they (the flush/fence discipline the
//!   seal implies);
//! * stores issued *after* the seal (which only exist under the
//!   seal-before-staged-words bug) are individually optional — any
//!   subset of them may or may not have landed.
//!
//! Recovery discards every unsealed epoch, so crash images without
//! the seal recover to the previous committed image and are trivially
//! safe. The interesting images are the ones *with* the seal:
//! [`check_crash_images`] enumerates every such image at every crash
//! point and demands it equal the full intended epoch image — the
//! conservation property that a frame observed allocated when its
//! word was staged is still allocated after recovery's popcount
//! rebuild. Under the correct discipline there is exactly one sealed
//! image; a reordered seal makes torn images reachable, and this
//! check finds them exhaustively rather than by sampling.

use std::collections::BTreeMap;
use std::fmt;

/// One store issued to the durable region, in issue order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DurableStore {
    /// A staged bitfield word.
    Word {
        /// Word index within the tree.
        idx: usize,
        /// Value stored.
        val: u64,
    },
    /// The seal record — the epoch's durability point.
    Seal,
}

/// A reachable post-crash image that recovery mishandles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistViolation {
    /// A sealed crash image disagrees with the intended epoch image.
    TornCommit {
        /// Crash point (number of issued stores at the crash).
        crash_point: usize,
        /// Word index that differs.
        word: usize,
        /// Value recovery rebuilds from.
        recovered: u64,
        /// Value the full epoch intended.
        expected: u64,
    },
}

impl fmt::Display for PersistViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TornCommit {
                crash_point,
                word,
                recovered,
                expected,
            } => write!(
                f,
                "torn sealed image at crash point {crash_point}: word {word} \
                 recovered as {recovered:#x}, epoch intended {expected:#x}"
            ),
        }
    }
}

/// Enumerates every post-crash image reachable from `log` (one
/// epoch's stores in issue order) over the committed `base` image and
/// returns a violation for each sealed image that differs from the
/// intended epoch image. Word indices must be `< base.len()`.
#[must_use]
pub fn check_crash_images(base: &[u64], log: &[DurableStore]) -> Vec<PersistViolation> {
    let Some(seal_pos) = log.iter().position(|s| matches!(s, DurableStore::Seal)) else {
        // No seal issued: every crash image is unsealed and recovery
        // discards the epoch. Nothing to check.
        return Vec::new();
    };

    // The intended image: base overlaid with the final value of every
    // word the epoch staged, wherever it was issued.
    let mut intended: BTreeMap<usize, u64> = BTreeMap::new();
    for s in log {
        if let DurableStore::Word { idx, val } = *s {
            intended.insert(idx, val);
        }
    }

    let mut out = Vec::new();
    // Stores issued after the seal are individually optional in a
    // sealed crash image. Enumerate every subset at every crash point.
    for crash_point in seal_pos + 1..=log.len() {
        let optional: Vec<(usize, u64)> = log[seal_pos + 1..crash_point]
            .iter()
            .filter_map(|s| match *s {
                DurableStore::Word { idx, val } => Some((idx, val)),
                DurableStore::Seal => None,
            })
            .collect();
        assert!(
            optional.len() <= 16,
            "crash-image subset enumeration capped at 2^16 images"
        );
        for mask in 0u32..(1u32 << optional.len()) {
            let mut image: Vec<u64> = base.to_vec();
            for s in &log[..seal_pos] {
                if let DurableStore::Word { idx, val } = *s {
                    image[idx] = val;
                }
            }
            for (bit, &(idx, val)) in optional.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    image[idx] = val;
                }
            }
            for (word, recovered) in image.iter().enumerate() {
                let expected = intended.get(&word).copied().unwrap_or(base[word]);
                if *recovered != expected {
                    out.push(PersistViolation::TornCommit {
                        crash_point,
                        word,
                        recovered: *recovered,
                        expected,
                    });
                }
            }
        }
    }
    // The same tear shows up at every later crash point; report each
    // distinct (word, recovered, expected) tear once, at its earliest
    // crash point.
    out.sort_unstable_by_key(|v| match *v {
        PersistViolation::TornCommit {
            crash_point,
            word,
            recovered,
            expected,
        } => (word, recovered, expected, crash_point),
    });
    out.dedup_by_key(|v| match *v {
        PersistViolation::TornCommit {
            word,
            recovered,
            expected,
            ..
        } => (word, recovered, expected),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_order_has_no_torn_images() {
        let log = [
            DurableStore::Word { idx: 0, val: 0b11 },
            DurableStore::Word { idx: 1, val: 0b01 },
            DurableStore::Seal,
        ];
        assert!(check_crash_images(&[0, 0], &log).is_empty());
    }

    #[test]
    fn unsealed_epoch_is_always_safe() {
        let log = [
            DurableStore::Word { idx: 0, val: 0xff },
            DurableStore::Word { idx: 1, val: 0xee },
        ];
        assert!(check_crash_images(&[0, 0], &log).is_empty());
    }

    #[test]
    fn seal_before_last_word_yields_torn_images() {
        let log = [
            DurableStore::Word { idx: 0, val: 0b11 },
            DurableStore::Seal,
            DurableStore::Word { idx: 1, val: 0b01 },
        ];
        let got = check_crash_images(&[0, 0], &log);
        // Crash right after the seal: word 1 never landed but the
        // epoch is sealed -> recovery rebuilds from a torn image.
        assert!(got.iter().any(|v| matches!(
            v,
            PersistViolation::TornCommit {
                word: 1,
                recovered: 0,
                expected: 1,
                ..
            }
        )));
    }

    #[test]
    fn post_seal_store_that_lands_still_counts_sealed_subsets() {
        // Even when the late store lands at the final crash point,
        // earlier crash points where it had not landed are torn.
        let log = [DurableStore::Seal, DurableStore::Word { idx: 0, val: 7 }];
        let got = check_crash_images(&[0], &log);
        assert_eq!(got.len(), 1);
    }
}
