//! Bridge from the real allocator's probe stream to the model
//! checker's trace vocabulary.
//!
//! [`prosper_gemos::llalloc::AllocProbe`] records every protocol
//! atomic the instrumented `FrameAlloc` executes, in linearization
//! order (the probe lock is held around each instruction and its log
//! append). The event vocabularies are deliberately identical, so the
//! conversion is 1:1 and the *same* [`check_alloc_history`] run
//! validates model traces and real-hardware traces alike — the "one
//! checker, two witnesses" half of the conformance argument.
//!
//! [`check_alloc_history`]: super::check_alloc_history

use super::AllocTraceEvent;
use prosper_gemos::llalloc::{AllocProbe, AllocProbeEvent};

impl From<AllocProbeEvent> for AllocTraceEvent {
    fn from(ev: AllocProbeEvent) -> Self {
        match ev {
            AllocProbeEvent::Gate { op } => Self::Gate { op },
            AllocProbeEvent::Oom { op } => Self::Oom { op },
            AllocProbeEvent::SubtreeAcquire {
                op,
                subtree,
                stolen,
            } => Self::SubtreeAcquire {
                op,
                subtree,
                stolen,
            },
            AllocProbeEvent::Claim { op, pfn } => Self::Claim { op, pfn },
            AllocProbeEvent::FreeClear { op, pfn } => Self::FreeClear { op, pfn },
            AllocProbeEvent::FreeSubtree { op, subtree } => Self::FreeSubtree { op, subtree },
            AllocProbeEvent::FreeRoot { op } => Self::FreeRoot { op },
            AllocProbeEvent::StageWord { seq, word, value } => Self::StageWord { seq, word, value },
            AllocProbeEvent::Seal { seq } => Self::Seal { seq },
        }
    }
}

/// Drains a probe's recorded events as checker-ready trace events, in
/// linearization order.
#[must_use]
pub fn probe_trace(probe: &AllocProbe) -> Vec<AllocTraceEvent> {
    probe.events().into_iter().map(Into::into).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_is_field_faithful() {
        let ev = AllocProbeEvent::SubtreeAcquire {
            op: 7,
            subtree: 3,
            stolen: true,
        };
        assert_eq!(
            AllocTraceEvent::from(ev),
            AllocTraceEvent::SubtreeAcquire {
                op: 7,
                subtree: 3,
                stolen: true
            }
        );
        let ev = AllocProbeEvent::StageWord {
            seq: 2,
            word: 5,
            value: 0xAB,
        };
        assert_eq!(
            AllocTraceEvent::from(ev),
            AllocTraceEvent::StageWord {
                seq: 2,
                word: 5,
                value: 0xAB
            }
        );
    }
}
