//! Workspace discovery: finds the repository root and collects the
//! Rust sources the lint rules run over.

use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Walks upward from `start` looking for the workspace root (a
/// directory whose `Cargo.toml` contains a `[workspace]` table).
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Loads every `.rs` file under the workspace's `src/` trees:
/// `src/`, `crates/*/src/`, and `shims/*/src/`. Integration-test
/// directories, benches, examples, fixtures, and `target/` are not
/// scanned — the rules police production code; `#[cfg(test)]` regions
/// inside `src/` are excluded by the scanner itself.
pub fn load_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut src_dirs = vec![root.join("src")];
    for group in ["crates", "shims"] {
        let group_dir = root.join(group);
        if let Ok(entries) = std::fs::read_dir(&group_dir) {
            for entry in entries.flatten() {
                let src = entry.path().join("src");
                if src.is_dir() {
                    src_dirs.push(src);
                }
            }
        }
    }
    let mut files = Vec::new();
    for dir in src_dirs {
        if dir.is_dir() {
            collect_rs(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.flatten().collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let raw = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile::parse(&rel, &raw));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_root_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crate dir");
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn loads_workspace_sources() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).unwrap();
        let files = load_sources(&root).unwrap();
        assert!(files.iter().any(|f| f.path == "crates/core/src/persist.rs"));
        assert!(files.iter().any(|f| f.path.starts_with("shims/")));
        // Fixture corpora must not leak into the workspace scan.
        assert!(files.iter().all(|f| !f.path.contains("/fixtures/")));
    }
}
