//! Vector clocks for happens-before race detection.

/// A fixed-width vector clock; index = model thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// A zero clock for `n` threads.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self(vec![0; n])
    }

    /// Advances this thread's own component.
    pub fn tick(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    /// Componentwise maximum (join).
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// True when `self` happens-before-or-equals `other`
    /// (componentwise `<=`).
    #[must_use]
    pub fn leq(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// True when neither clock orders the other: the two events they
    /// stamp are concurrent.
    #[must_use]
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_via_join() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        a.tick(0); // a = [1,0]
        b.join(&a);
        b.tick(1); // b = [1,1]
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn concurrent_when_unjoined() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent(&b));
    }
}
