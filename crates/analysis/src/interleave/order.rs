//! Commit-order invariants, checked over event traces.
//!
//! The checker is shared between two producers: the model explorer
//! (every explored schedule yields a trace) and the real commit path
//! (`prosper_core::recovery::CommitProbe` logs map 1:1 onto
//! [`OrderEvent`]). One checker, two witnesses.

use std::fmt;

/// One commit-protocol event, tagged with its sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderEvent {
    /// The tracker finished quiescing for this sequence.
    Quiesced {
        /// Commit sequence number.
        seq: u64,
    },
    /// The coordinator inspected (and cleared) one stack's bitmap.
    Inspect {
        /// Commit sequence number.
        seq: u64,
        /// Stack/thread id whose bitmap was inspected.
        tid: u32,
    },
    /// A worker staged one stack's runs.
    Stage {
        /// Commit sequence number.
        seq: u64,
        /// Stack/thread id staged.
        tid: u32,
    },
    /// The serial seal — the single durable commit point.
    Seal {
        /// Commit sequence number.
        seq: u64,
    },
    /// A worker applied one stack's staged runs.
    Apply {
        /// Commit sequence number.
        seq: u64,
        /// Stack/thread id applied.
        tid: u32,
    },
    /// The coordinator retired the commit record.
    Retire {
        /// Commit sequence number.
        seq: u64,
    },
    /// A deferred spine merge folded one stack's delta batches up to
    /// and including the batch sealed at `seq` (staged-delta spine
    /// mode).
    Merge {
        /// Newest sealed sequence the merge folded.
        seq: u64,
        /// Stack/thread id whose spine was merged.
        tid: u32,
    },
}

impl OrderEvent {
    /// The sequence number the event belongs to.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match *self {
            OrderEvent::Quiesced { seq }
            | OrderEvent::Inspect { seq, .. }
            | OrderEvent::Stage { seq, .. }
            | OrderEvent::Seal { seq }
            | OrderEvent::Apply { seq, .. }
            | OrderEvent::Retire { seq }
            | OrderEvent::Merge { seq, .. } => seq,
        }
    }
}

/// A violated commit-order invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderViolation {
    /// A sequence sealed more than once: two commit points.
    DuplicateSeal {
        /// Offending sequence.
        seq: u64,
    },
    /// A sequence staged or applied work but never sealed.
    MissingSeal {
        /// Offending sequence.
        seq: u64,
    },
    /// A stage event landed after its sequence's seal: the seal was
    /// not the commit point for that stack's data.
    StageAfterSeal {
        /// Offending sequence.
        seq: u64,
        /// Stack staged late.
        tid: u32,
    },
    /// An apply event landed before its sequence's seal: NVM mutated
    /// before the commit point.
    ApplyBeforeSeal {
        /// Offending sequence.
        seq: u64,
        /// Stack applied early.
        tid: u32,
    },
    /// The record retired before every apply finished.
    RetireBeforeApply {
        /// Offending sequence.
        seq: u64,
    },
    /// A later sequence staged before the earlier sequence's seal:
    /// the staged-ahead buffers would belong to a sequence whose
    /// predecessor can still be discarded wholesale. (Staging *after*
    /// the prior seal, while the prior apply drains, is the legal
    /// pipelined overlap.)
    StageBeforePriorSeal {
        /// The not-yet-sealed earlier sequence.
        earlier: u64,
        /// The prematurely staged later sequence.
        later: u64,
        /// Stack staged early.
        tid: u32,
    },
    /// A later sequence sealed before the earlier sequence finished
    /// applying: the new commit point lands on top of half-applied
    /// predecessor state.
    SealBeforePriorApplyDone {
        /// The still-applying earlier sequence.
        earlier: u64,
        /// The prematurely sealed later sequence.
        later: u64,
    },
    /// A later sequence sealed while the earlier sequence's record
    /// was still live (retire missing or late): the coordinator moved
    /// on with the predecessor's drain and record cleanup
    /// outstanding.
    SealBeforePriorRetire {
        /// The not-yet-retired earlier sequence.
        earlier: u64,
        /// The prematurely sealed later sequence.
        later: u64,
    },
    /// A bitmap inspection happened before the quiescence handshake
    /// for its sequence.
    InspectBeforeQuiesce {
        /// Offending sequence.
        seq: u64,
        /// Stack inspected early.
        tid: u32,
    },
    /// A spine merge folded up to a batch whose sequence had not
    /// sealed yet: the merge crossed an unsealed batch, so a crash
    /// inside it could make unsealed data durable.
    MergeCrossesUnsealedBatch {
        /// The unsealed sequence the merge folded.
        seq: u64,
        /// Stack merged early.
        tid: u32,
    },
    /// A later spine merge on the same stack folded up to an *older*
    /// sequence than an earlier merge: the fold went backwards, so
    /// recovery would not see a prefix-closed spine (a retired batch
    /// reappearing behind the fold point).
    MergeRegressed {
        /// Stack whose fold regressed.
        tid: u32,
        /// The newer sequence the earlier merge had already folded.
        earlier: u64,
        /// The older sequence the later merge regressed to.
        later: u64,
    },
}

impl fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderViolation::DuplicateSeal { seq } => {
                write!(f, "sequence {seq} sealed more than once")
            }
            OrderViolation::MissingSeal { seq } => {
                write!(f, "sequence {seq} staged/applied work without a seal")
            }
            OrderViolation::StageAfterSeal { seq, tid } => {
                write!(f, "stack {tid} staged after seal of sequence {seq}")
            }
            OrderViolation::ApplyBeforeSeal { seq, tid } => {
                write!(f, "stack {tid} applied before seal of sequence {seq}")
            }
            OrderViolation::RetireBeforeApply { seq } => {
                write!(f, "sequence {seq} retired before all applies finished")
            }
            OrderViolation::StageBeforePriorSeal {
                earlier,
                later,
                tid,
            } => {
                write!(
                    f,
                    "stack {tid} staged for sequence {later} before sequence {earlier} sealed"
                )
            }
            OrderViolation::SealBeforePriorApplyDone { earlier, later } => {
                write!(
                    f,
                    "sequence {later} sealed before sequence {earlier} finished applying"
                )
            }
            OrderViolation::SealBeforePriorRetire { earlier, later } => {
                write!(
                    f,
                    "sequence {later} sealed before sequence {earlier}'s record retired"
                )
            }
            OrderViolation::InspectBeforeQuiesce { seq, tid } => {
                write!(
                    f,
                    "bitmap of stack {tid} inspected before quiescence of sequence {seq}"
                )
            }
            OrderViolation::MergeCrossesUnsealedBatch { seq, tid } => {
                write!(
                    f,
                    "spine merge on stack {tid} crossed the unsealed batch of sequence {seq}"
                )
            }
            OrderViolation::MergeRegressed {
                tid,
                earlier,
                later,
            } => {
                write!(
                    f,
                    "spine merge on stack {tid} regressed from sequence {earlier} to {later}"
                )
            }
        }
    }
}

/// Checks the commit-order invariants over one trace. Returns every
/// violation found (empty = trace is valid).
#[must_use]
pub fn check_order(events: &[OrderEvent]) -> Vec<OrderViolation> {
    let mut out = Vec::new();
    let mut seqs: Vec<u64> = events.iter().map(OrderEvent::seq).collect();
    seqs.sort_unstable();
    seqs.dedup();

    for &seq in &seqs {
        let seal_positions: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, OrderEvent::Seal { seq: s } if *s == seq))
            .map(|(i, _)| i)
            .collect();
        if seal_positions.len() > 1 {
            out.push(OrderViolation::DuplicateSeal { seq });
        }
        let has_work = events.iter().any(|e| {
            matches!(e, OrderEvent::Stage { seq: s, .. } | OrderEvent::Apply { seq: s, .. } if *s == seq)
        });
        let Some(&seal) = seal_positions.first() else {
            if has_work {
                out.push(OrderViolation::MissingSeal { seq });
            }
            continue;
        };
        let quiesce = events
            .iter()
            .position(|e| matches!(e, OrderEvent::Quiesced { seq: s } if *s == seq));
        for (i, e) in events.iter().enumerate() {
            match *e {
                OrderEvent::Stage { seq: s, tid } if s == seq && i > seal => {
                    out.push(OrderViolation::StageAfterSeal { seq, tid });
                }
                OrderEvent::Apply { seq: s, tid } if s == seq && i < seal => {
                    out.push(OrderViolation::ApplyBeforeSeal { seq, tid });
                }
                OrderEvent::Inspect { seq: s, tid } if s == seq => {
                    if let Some(q) = quiesce {
                        if i < q {
                            out.push(OrderViolation::InspectBeforeQuiesce { seq, tid });
                        }
                    }
                }
                _ => {}
            }
        }
        let last_apply = events
            .iter()
            .rposition(|e| matches!(e, OrderEvent::Apply { seq: s, .. } if *s == seq));
        let retire = events
            .iter()
            .position(|e| matches!(e, OrderEvent::Retire { seq: s } if *s == seq));
        if let (Some(a), Some(r)) = (last_apply, retire) {
            if r < a {
                out.push(OrderViolation::RetireBeforeApply { seq });
            }
        }
    }

    // The sharpened cross-sequence invariant (PR 7). The pipelined
    // commit makes one overlap *legal*: stage(N+1) may run inside
    // apply(N)'s drain window — hiding the next stage behind the
    // drain is the pipeline's entire win. What stays forbidden is
    // sharpened accordingly: no stage(N+1) before seal(N) (the
    // staged-ahead buffers would outlive a discardable predecessor),
    // and no seal(N+1) before apply(N) fully drains (the new commit
    // point would land on half-applied predecessor state). Everything
    // else — apply(N+1), retire(N+1) — is transitively ordered
    // through its own seal by the per-sequence checks above.
    for window in seqs.windows(2) {
        let (earlier, later) = (window[0], window[1]);
        let seal_earlier = events
            .iter()
            .position(|e| matches!(e, OrderEvent::Seal { seq: s } if *s == earlier));
        if let Some(se) = seal_earlier {
            for e in events.iter().take(se) {
                if let OrderEvent::Stage { seq: s, tid } = *e {
                    if s == later {
                        out.push(OrderViolation::StageBeforePriorSeal {
                            earlier,
                            later,
                            tid,
                        });
                    }
                }
            }
        }
        let seal_later = events
            .iter()
            .position(|e| matches!(e, OrderEvent::Seal { seq: s } if *s == later));
        let last_apply_earlier = events
            .iter()
            .rposition(|e| matches!(e, OrderEvent::Apply { seq: s, .. } if *s == earlier));
        if let (Some(sl), Some(la)) = (seal_later, last_apply_earlier) {
            if sl < la {
                out.push(OrderViolation::SealBeforePriorApplyDone { earlier, later });
            }
        }
        // The retire closes the earlier sequence's drain window (it
        // follows the last apply by the per-sequence rule above); the
        // next commit point must not pass a still-open window. Only
        // enforced when the later seal is in the trace, so a
        // crash-truncated stream is not penalized for a retire it
        // never reached.
        let retire_earlier = events
            .iter()
            .position(|e| matches!(e, OrderEvent::Retire { seq: s } if *s == earlier));
        if let Some(sl) = seal_later {
            let sealed_earlier = events
                .iter()
                .any(|e| matches!(e, OrderEvent::Seal { seq: s } if *s == earlier));
            if sealed_earlier && retire_earlier.is_none_or(|r| sl < r) {
                out.push(OrderViolation::SealBeforePriorRetire { earlier, later });
            }
        }
    }

    // Spine-mode rules (PR 8). A merge folds the spine up to a sealed
    // batch, so the referenced sequence must have sealed *earlier in
    // the trace* — merge never crosses an unsealed batch. And per
    // stack the fold point is monotone: a merge that regresses to an
    // older sequence would resurrect retired batches, so recovery
    // could no longer rely on the spine being a prefix-closed suffix
    // of the sealed history.
    let mut last_fold: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if let OrderEvent::Merge { seq, tid } = *e {
            let sealed_before = events[..i]
                .iter()
                .any(|p| matches!(p, OrderEvent::Seal { seq: s } if *s == seq));
            if !sealed_before {
                out.push(OrderViolation::MergeCrossesUnsealedBatch { seq, tid });
            }
            let prev = last_fold.get(&tid).copied();
            if let Some(prev) = prev {
                if seq < prev {
                    out.push(OrderViolation::MergeRegressed {
                        tid,
                        earlier: prev,
                        later: seq,
                    });
                }
            }
            last_fold.insert(tid, prev.unwrap_or(0).max(seq));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_trace() -> Vec<OrderEvent> {
        vec![
            OrderEvent::Quiesced { seq: 1 },
            OrderEvent::Inspect { seq: 1, tid: 0 },
            OrderEvent::Stage { seq: 1, tid: 0 },
            OrderEvent::Stage { seq: 1, tid: 1 },
            OrderEvent::Seal { seq: 1 },
            OrderEvent::Apply { seq: 1, tid: 1 },
            OrderEvent::Apply { seq: 1, tid: 0 },
            OrderEvent::Retire { seq: 1 },
        ]
    }

    #[test]
    fn valid_trace_passes() {
        assert!(check_order(&good_trace()).is_empty());
    }

    #[test]
    fn detects_stage_after_seal() {
        let mut t = good_trace();
        t.swap(3, 4); // stage tid=1 after seal
        assert!(t.iter().any(|e| matches!(e, OrderEvent::Seal { .. })));
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::StageAfterSeal { seq: 1, tid: 1 }));
    }

    #[test]
    fn detects_apply_before_seal() {
        let mut t = good_trace();
        t.swap(4, 5);
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::ApplyBeforeSeal { seq: 1, tid: 1 }));
    }

    #[test]
    fn detects_duplicate_and_missing_seal() {
        let mut t = good_trace();
        t.push(OrderEvent::Seal { seq: 1 });
        assert!(check_order(&t).contains(&OrderViolation::DuplicateSeal { seq: 1 }));
        let t2 = vec![OrderEvent::Stage { seq: 3, tid: 0 }];
        assert!(check_order(&t2).contains(&OrderViolation::MissingSeal { seq: 3 }));
    }

    #[test]
    fn pipelined_overlap_after_prior_seal_is_legal() {
        // PR 7: sequence 2 stages inside sequence 1's apply drain —
        // after seal(1), before retire(1). This was a violation under
        // the pre-pipeline checker and is the legal overlap now.
        let mut t = good_trace();
        t.insert(5, OrderEvent::Stage { seq: 2, tid: 0 });
        t.push(OrderEvent::Seal { seq: 2 });
        t.push(OrderEvent::Apply { seq: 2, tid: 0 });
        t.push(OrderEvent::Retire { seq: 2 });
        let v = check_order(&t);
        assert!(v.is_empty(), "legal pipelined overlap rejected: {v:?}");
    }

    #[test]
    fn detects_stage_before_prior_seal() {
        // The sharpened boundary: the same staged-ahead work becomes a
        // violation the moment it slides before seal(1).
        let mut t = good_trace();
        t.insert(2, OrderEvent::Stage { seq: 2, tid: 0 });
        t.push(OrderEvent::Seal { seq: 2 });
        t.push(OrderEvent::Apply { seq: 2, tid: 0 });
        t.push(OrderEvent::Retire { seq: 2 });
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::StageBeforePriorSeal {
            earlier: 1,
            later: 2,
            tid: 0
        }));
    }

    #[test]
    fn detects_seal_before_prior_apply_done() {
        // Sequence 2 stages legally (after seal(1)) but seals while
        // apply(1) is still draining: the second commit point must
        // wait for the drain.
        let mut t = good_trace();
        t.insert(5, OrderEvent::Stage { seq: 2, tid: 0 });
        t.insert(6, OrderEvent::Seal { seq: 2 });
        t.push(OrderEvent::Apply { seq: 2, tid: 0 });
        t.push(OrderEvent::Retire { seq: 2 });
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::SealBeforePriorApplyDone {
            earlier: 1,
            later: 2
        }));
    }

    #[test]
    fn detects_seal_before_prior_retire() {
        // Sequence 2 stages and seals only after apply(1) drained, but
        // the coordinator never closed sequence 1's record (retire
        // missing): the overlap left the predecessor's cleanup
        // outstanding.
        let mut t = good_trace();
        t.pop(); // drop Retire { seq: 1 }
        t.push(OrderEvent::Stage { seq: 2, tid: 0 });
        t.push(OrderEvent::Seal { seq: 2 });
        t.push(OrderEvent::Apply { seq: 2, tid: 0 });
        t.push(OrderEvent::Retire { seq: 2 });
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::SealBeforePriorRetire {
            earlier: 1,
            later: 2
        }));
        // A late retire (after the next seal) is the same violation.
        let mut t2 = good_trace();
        t2.pop();
        t2.push(OrderEvent::Stage { seq: 2, tid: 0 });
        t2.push(OrderEvent::Seal { seq: 2 });
        t2.push(OrderEvent::Retire { seq: 1 });
        t2.push(OrderEvent::Apply { seq: 2, tid: 0 });
        t2.push(OrderEvent::Retire { seq: 2 });
        let v2 = check_order(&t2);
        assert!(v2.contains(&OrderViolation::SealBeforePriorRetire {
            earlier: 1,
            later: 2
        }));
    }

    #[test]
    fn merge_after_seal_is_legal_and_ordering_is_enforced() {
        // Legal spine schedule: batches seal at 1 and 2, then one
        // merge folds both (fold point = newest sealed sequence).
        let mut t = good_trace();
        t.push(OrderEvent::Stage { seq: 2, tid: 0 });
        t.push(OrderEvent::Seal { seq: 2 });
        t.push(OrderEvent::Apply { seq: 2, tid: 0 });
        t.push(OrderEvent::Retire { seq: 2 });
        t.push(OrderEvent::Merge { seq: 2, tid: 0 });
        assert!(check_order(&t).is_empty(), "legal merge rejected");

        // The same merge slid before seal(2) crosses an unsealed
        // batch.
        let mut bad = good_trace();
        bad.push(OrderEvent::Stage { seq: 2, tid: 0 });
        bad.push(OrderEvent::Merge { seq: 2, tid: 0 });
        bad.push(OrderEvent::Seal { seq: 2 });
        bad.push(OrderEvent::Apply { seq: 2, tid: 0 });
        bad.push(OrderEvent::Retire { seq: 2 });
        let v = check_order(&bad);
        assert!(v.contains(&OrderViolation::MergeCrossesUnsealedBatch { seq: 2, tid: 0 }));
    }

    #[test]
    fn detects_regressed_merge_fold_point() {
        let mut t = good_trace();
        t.push(OrderEvent::Stage { seq: 2, tid: 0 });
        t.push(OrderEvent::Seal { seq: 2 });
        t.push(OrderEvent::Apply { seq: 2, tid: 0 });
        t.push(OrderEvent::Retire { seq: 2 });
        t.push(OrderEvent::Merge { seq: 2, tid: 0 });
        // A later merge on the same stack folding only up to seq 1
        // resurrects the already-retired batch 2.
        t.push(OrderEvent::Merge { seq: 1, tid: 0 });
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::MergeRegressed {
            tid: 0,
            earlier: 2,
            later: 1
        }));
        // A different stack folding up to 1 is unrelated and legal.
        let mut other = good_trace();
        other.push(OrderEvent::Merge { seq: 1, tid: 0 });
        other.push(OrderEvent::Merge { seq: 1, tid: 1 });
        assert!(check_order(&other).is_empty());
    }

    #[test]
    fn detects_retire_before_apply_and_early_inspect() {
        let t = vec![
            OrderEvent::Inspect { seq: 1, tid: 0 },
            OrderEvent::Quiesced { seq: 1 },
            OrderEvent::Stage { seq: 1, tid: 0 },
            OrderEvent::Seal { seq: 1 },
            OrderEvent::Retire { seq: 1 },
            OrderEvent::Apply { seq: 1, tid: 0 },
        ];
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::RetireBeforeApply { seq: 1 }));
        assert!(v.contains(&OrderViolation::InspectBeforeQuiesce { seq: 1, tid: 0 }));
    }
}
