//! Commit-order invariants, checked over event traces.
//!
//! The checker is shared between two producers: the model explorer
//! (every explored schedule yields a trace) and the real commit path
//! (`prosper_core::recovery::CommitProbe` logs map 1:1 onto
//! [`OrderEvent`]). One checker, two witnesses.

use std::fmt;

/// One commit-protocol event, tagged with its sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderEvent {
    /// The tracker finished quiescing for this sequence.
    Quiesced {
        /// Commit sequence number.
        seq: u64,
    },
    /// The coordinator inspected (and cleared) one stack's bitmap.
    Inspect {
        /// Commit sequence number.
        seq: u64,
        /// Stack/thread id whose bitmap was inspected.
        tid: u32,
    },
    /// A worker staged one stack's runs.
    Stage {
        /// Commit sequence number.
        seq: u64,
        /// Stack/thread id staged.
        tid: u32,
    },
    /// The serial seal — the single durable commit point.
    Seal {
        /// Commit sequence number.
        seq: u64,
    },
    /// A worker applied one stack's staged runs.
    Apply {
        /// Commit sequence number.
        seq: u64,
        /// Stack/thread id applied.
        tid: u32,
    },
    /// The coordinator retired the commit record.
    Retire {
        /// Commit sequence number.
        seq: u64,
    },
}

impl OrderEvent {
    /// The sequence number the event belongs to.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match *self {
            OrderEvent::Quiesced { seq }
            | OrderEvent::Inspect { seq, .. }
            | OrderEvent::Stage { seq, .. }
            | OrderEvent::Seal { seq }
            | OrderEvent::Apply { seq, .. }
            | OrderEvent::Retire { seq } => seq,
        }
    }
}

/// A violated commit-order invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderViolation {
    /// A sequence sealed more than once: two commit points.
    DuplicateSeal {
        /// Offending sequence.
        seq: u64,
    },
    /// A sequence staged or applied work but never sealed.
    MissingSeal {
        /// Offending sequence.
        seq: u64,
    },
    /// A stage event landed after its sequence's seal: the seal was
    /// not the commit point for that stack's data.
    StageAfterSeal {
        /// Offending sequence.
        seq: u64,
        /// Stack staged late.
        tid: u32,
    },
    /// An apply event landed before its sequence's seal: NVM mutated
    /// before the commit point.
    ApplyBeforeSeal {
        /// Offending sequence.
        seq: u64,
        /// Stack applied early.
        tid: u32,
    },
    /// The record retired before every apply finished.
    RetireBeforeApply {
        /// Offending sequence.
        seq: u64,
    },
    /// Work for a later sequence started before an earlier sequence
    /// finished applying.
    CrossSequenceOverlap {
        /// The unfinished earlier sequence.
        earlier: u64,
        /// The prematurely started later sequence.
        later: u64,
    },
    /// A bitmap inspection happened before the quiescence handshake
    /// for its sequence.
    InspectBeforeQuiesce {
        /// Offending sequence.
        seq: u64,
        /// Stack inspected early.
        tid: u32,
    },
}

impl fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderViolation::DuplicateSeal { seq } => {
                write!(f, "sequence {seq} sealed more than once")
            }
            OrderViolation::MissingSeal { seq } => {
                write!(f, "sequence {seq} staged/applied work without a seal")
            }
            OrderViolation::StageAfterSeal { seq, tid } => {
                write!(f, "stack {tid} staged after seal of sequence {seq}")
            }
            OrderViolation::ApplyBeforeSeal { seq, tid } => {
                write!(f, "stack {tid} applied before seal of sequence {seq}")
            }
            OrderViolation::RetireBeforeApply { seq } => {
                write!(f, "sequence {seq} retired before all applies finished")
            }
            OrderViolation::CrossSequenceOverlap { earlier, later } => {
                write!(
                    f,
                    "sequence {later} started before sequence {earlier} finished applying"
                )
            }
            OrderViolation::InspectBeforeQuiesce { seq, tid } => {
                write!(
                    f,
                    "bitmap of stack {tid} inspected before quiescence of sequence {seq}"
                )
            }
        }
    }
}

/// Checks the commit-order invariants over one trace. Returns every
/// violation found (empty = trace is valid).
#[must_use]
pub fn check_order(events: &[OrderEvent]) -> Vec<OrderViolation> {
    let mut out = Vec::new();
    let mut seqs: Vec<u64> = events.iter().map(OrderEvent::seq).collect();
    seqs.sort_unstable();
    seqs.dedup();

    for &seq in &seqs {
        let seal_positions: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, OrderEvent::Seal { seq: s } if *s == seq))
            .map(|(i, _)| i)
            .collect();
        if seal_positions.len() > 1 {
            out.push(OrderViolation::DuplicateSeal { seq });
        }
        let has_work = events.iter().any(|e| {
            matches!(e, OrderEvent::Stage { seq: s, .. } | OrderEvent::Apply { seq: s, .. } if *s == seq)
        });
        let Some(&seal) = seal_positions.first() else {
            if has_work {
                out.push(OrderViolation::MissingSeal { seq });
            }
            continue;
        };
        let quiesce = events
            .iter()
            .position(|e| matches!(e, OrderEvent::Quiesced { seq: s } if *s == seq));
        for (i, e) in events.iter().enumerate() {
            match *e {
                OrderEvent::Stage { seq: s, tid } if s == seq && i > seal => {
                    out.push(OrderViolation::StageAfterSeal { seq, tid });
                }
                OrderEvent::Apply { seq: s, tid } if s == seq && i < seal => {
                    out.push(OrderViolation::ApplyBeforeSeal { seq, tid });
                }
                OrderEvent::Inspect { seq: s, tid } if s == seq => {
                    if let Some(q) = quiesce {
                        if i < q {
                            out.push(OrderViolation::InspectBeforeQuiesce { seq, tid });
                        }
                    }
                }
                _ => {}
            }
        }
        let last_apply = events
            .iter()
            .rposition(|e| matches!(e, OrderEvent::Apply { seq: s, .. } if *s == seq));
        let retire = events
            .iter()
            .position(|e| matches!(e, OrderEvent::Retire { seq: s } if *s == seq));
        if let (Some(a), Some(r)) = (last_apply, retire) {
            if r < a {
                out.push(OrderViolation::RetireBeforeApply { seq });
            }
        }
    }

    // Sequences must not overlap: every event of sequence B (other
    // than tracker quiescence, which legitimately runs concurrently
    // with the tail of A's apply in a pipelined tracker) must come
    // after the last apply of every earlier sequence A.
    for window in seqs.windows(2) {
        let (earlier, later) = (window[0], window[1]);
        let Some(last_apply_earlier) = events
            .iter()
            .rposition(|e| matches!(e, OrderEvent::Apply { seq: s, .. } if *s == earlier))
        else {
            continue;
        };
        let first_later = events.iter().position(|e| {
            matches!(
                e,
                OrderEvent::Stage { seq: s, .. }
                    | OrderEvent::Seal { seq: s }
                    | OrderEvent::Apply { seq: s, .. } if *s == later
            )
        });
        if let Some(fl) = first_later {
            if fl < last_apply_earlier {
                out.push(OrderViolation::CrossSequenceOverlap { earlier, later });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_trace() -> Vec<OrderEvent> {
        vec![
            OrderEvent::Quiesced { seq: 1 },
            OrderEvent::Inspect { seq: 1, tid: 0 },
            OrderEvent::Stage { seq: 1, tid: 0 },
            OrderEvent::Stage { seq: 1, tid: 1 },
            OrderEvent::Seal { seq: 1 },
            OrderEvent::Apply { seq: 1, tid: 1 },
            OrderEvent::Apply { seq: 1, tid: 0 },
            OrderEvent::Retire { seq: 1 },
        ]
    }

    #[test]
    fn valid_trace_passes() {
        assert!(check_order(&good_trace()).is_empty());
    }

    #[test]
    fn detects_stage_after_seal() {
        let mut t = good_trace();
        t.swap(3, 4); // stage tid=1 after seal
        assert!(t.iter().any(|e| matches!(e, OrderEvent::Seal { .. })));
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::StageAfterSeal { seq: 1, tid: 1 }));
    }

    #[test]
    fn detects_apply_before_seal() {
        let mut t = good_trace();
        t.swap(4, 5);
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::ApplyBeforeSeal { seq: 1, tid: 1 }));
    }

    #[test]
    fn detects_duplicate_and_missing_seal() {
        let mut t = good_trace();
        t.push(OrderEvent::Seal { seq: 1 });
        assert!(check_order(&t).contains(&OrderViolation::DuplicateSeal { seq: 1 }));
        let t2 = vec![OrderEvent::Stage { seq: 3, tid: 0 }];
        assert!(check_order(&t2).contains(&OrderViolation::MissingSeal { seq: 3 }));
    }

    #[test]
    fn detects_cross_sequence_overlap() {
        let mut t = good_trace();
        // Sequence 2 stages before sequence 1's last apply.
        t.insert(5, OrderEvent::Stage { seq: 2, tid: 0 });
        t.push(OrderEvent::Seal { seq: 2 });
        t.push(OrderEvent::Apply { seq: 2, tid: 0 });
        t.push(OrderEvent::Retire { seq: 2 });
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::CrossSequenceOverlap {
            earlier: 1,
            later: 2
        }));
    }

    #[test]
    fn detects_retire_before_apply_and_early_inspect() {
        let t = vec![
            OrderEvent::Inspect { seq: 1, tid: 0 },
            OrderEvent::Quiesced { seq: 1 },
            OrderEvent::Stage { seq: 1, tid: 0 },
            OrderEvent::Seal { seq: 1 },
            OrderEvent::Retire { seq: 1 },
            OrderEvent::Apply { seq: 1, tid: 0 },
        ];
        let v = check_order(&t);
        assert!(v.contains(&OrderViolation::RetireBeforeApply { seq: 1 }));
        assert!(v.contains(&OrderViolation::InspectBeforeQuiesce { seq: 1, tid: 0 }));
    }
}
