//! A faithful synchronization skeleton of the parallel commit
//! protocol, plus deliberately seeded bugs.
//!
//! Thread layout mirrors `commit_with_workers` in
//! `crates/core/src/recovery.rs`:
//!
//! * thread `0` — the **coordinator**: quiescence handshake, bitmap
//!   inspect+clear, serial seal, record retire;
//! * threads `1..=workers` — **stage/apply workers** over contiguous
//!   chunks of stacks (a static partition standing in for
//!   `for_each_stack`'s work-stealing assignment);
//! * thread `workers + 1` — the **tracker/mutator**: dirties stack
//!   words and bitmap bits between commits and answers the
//!   quiescence handshake.
//!
//! Synchronization is modelled as counting semaphores with
//! release/acquire vector-clock edges; shared state as explicit
//! locations. The [`Bug`] variants each drop exactly one edge the
//! real protocol relies on, so the explorer's detection of each one
//! is a regression test of the checker itself.

use super::order::OrderEvent;

/// Index of a modelled shared-memory location.
pub type Loc = usize;

/// One access a step performs on a shared location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// A read of the location.
    Read(Loc),
    /// A write of the location.
    Write(Loc),
}

/// A blocking or signalling semaphore operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncAction {
    /// Increment the semaphore and publish this thread's clock.
    Release(usize),
    /// Block until the semaphore count reaches `need`, then join the
    /// semaphore's clock.
    Acquire {
        /// Semaphore index.
        sync: usize,
        /// Required count.
        need: u64,
    },
}

/// One atomic step of a model thread.
#[derive(Clone, Debug, Default)]
pub struct Step {
    /// Optional semaphore operation (performed first).
    pub sync: Option<SyncAction>,
    /// Shared-location accesses this step performs.
    pub accesses: Vec<Access>,
    /// Optional commit-order event this step emits.
    pub event: Option<OrderEvent>,
    /// Human-readable label for race reports.
    pub label: &'static str,
}

/// A complete model: per-thread step lists plus naming metadata.
#[derive(Clone, Debug)]
pub struct Program {
    /// Step list per thread, index = model thread id.
    pub threads: Vec<Vec<Step>>,
    /// Display name per thread.
    pub thread_names: Vec<String>,
    /// Display name per location.
    pub locations: Vec<String>,
    /// Number of semaphores.
    pub syncs: usize,
}

/// A deliberately seeded protocol bug (a dropped synchronization
/// edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bug {
    /// The correct protocol.
    None,
    /// The coordinator seals without waiting for stage workers: the
    /// seal stops being the commit point for late-staged stacks.
    SealBeforeStageDone,
    /// Apply workers share an unsynchronized progress cursor: a
    /// write-write race.
    SharedApplyCursor,
    /// The coordinator inspects bitmaps without the tracker
    /// quiescence handshake: a torn bitmap read/clear race.
    SkipQuiesceHandshake,
    /// The coordinator starts the next sequence without waiting for
    /// apply completion: commit sequences overlap. In the pipelined
    /// program this drops the apply-drain edge in front of the next
    /// seal — the sharpened invariant's second half.
    OverlappedSequences,
    /// Pipelined-only: the coordinator opens the next sequence's
    /// stage gate *before* this sequence's seal, so workers can stage
    /// N+1 buffers while N is still discardable — the sharpened
    /// invariant's first half.
    StageBeforePriorSeal,
}

impl Bug {
    /// Every seeded bug (excluding `None`).
    pub const ALL: &'static [Bug] = &[
        Bug::SealBeforeStageDone,
        Bug::SharedApplyCursor,
        Bug::SkipQuiesceHandshake,
        Bug::OverlappedSequences,
        Bug::StageBeforePriorSeal,
    ];

    /// Short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Bug::None => "none",
            Bug::SealBeforeStageDone => "seal-before-stage-done",
            Bug::SharedApplyCursor => "shared-apply-cursor",
            Bug::SkipQuiesceHandshake => "skip-quiesce-handshake",
            Bug::OverlappedSequences => "overlapped-sequences",
            Bug::StageBeforePriorSeal => "stage-before-prior-seal",
        }
    }
}

/// Parameters of a modelled commit run.
#[derive(Clone, Copy, Debug)]
pub struct CommitConfig {
    /// Number of stage/apply worker threads.
    pub workers: usize,
    /// Number of stacks (per-thread program stacks being committed).
    pub stacks: usize,
    /// Number of back-to-back commit sequences.
    pub sequences: u64,
    /// Model the PR-7 pipelined protocol: the coordinator defers the
    /// apply join, so stage(N+1) legally overlaps apply(N); seal(N+1)
    /// still waits for apply(N) to drain.
    pub pipelined: bool,
    /// Which protocol edge, if any, to break.
    pub bug: Bug,
}

/// Locations per stack plus the shared record and cursor.
struct Locs {
    stacks: usize,
}

impl Locs {
    fn bitmap(&self, t: usize) -> Loc {
        t
    }
    fn volatile(&self, t: usize) -> Loc {
        self.stacks + t
    }
    fn staging(&self, t: usize) -> Loc {
        2 * self.stacks + t
    }
    fn persistent(&self, t: usize) -> Loc {
        3 * self.stacks + t
    }
    fn record(&self) -> Loc {
        4 * self.stacks
    }
    fn cursor(&self) -> Loc {
        4 * self.stacks + 1
    }
    fn names(&self) -> Vec<String> {
        let mut v = Vec::new();
        for kind in ["bitmap", "volatile", "staging", "persistent"] {
            for t in 0..self.stacks {
                v.push(format!("{kind}[{t}]"));
            }
        }
        v.push("commit_record".into());
        v.push("apply_cursor".into());
        v
    }
}

/// Semaphores per sequence.
struct Syncs;

impl Syncs {
    const PER_SEQ: usize = 6;
    fn quiesced(s: u64) -> usize {
        Self::PER_SEQ * s as usize
    }
    fn resume(s: u64) -> usize {
        Self::PER_SEQ * s as usize + 1
    }
    fn stage_go(s: u64) -> usize {
        Self::PER_SEQ * s as usize + 2
    }
    fn stage_done(s: u64) -> usize {
        Self::PER_SEQ * s as usize + 3
    }
    fn apply_go(s: u64) -> usize {
        Self::PER_SEQ * s as usize + 4
    }
    fn apply_done(s: u64) -> usize {
        Self::PER_SEQ * s as usize + 5
    }
}

/// The contiguous chunk of stacks worker `w` (1-based model tid)
/// owns. The real `for_each_stack` assigns stacks by work-stealing, so
/// any worker may touch any stack; the model pins a static partition
/// instead, which over-approximates every stealing schedule for the
/// properties checked here (each stack is staged and applied exactly
/// once per sequence by a single owner, and the owner carries the
/// program-order edge between apply(N) and the staging-buffer reuse in
/// stage(N+1)).
fn chunk(w: usize, workers: usize, stacks: usize) -> std::ops::Range<usize> {
    let per = stacks.div_ceil(workers);
    let start = (w - 1) * per;
    start.min(stacks)..(start + per).min(stacks)
}

/// Builds the model program for one commit configuration.
// Threads are addressed by model tid (coordinator 0, workers 1..=W,
// tracker W+1); indexing reads clearer than enumerate-skip-take here.
#[allow(clippy::needless_range_loop)]
#[must_use]
pub fn commit_program(cfg: &CommitConfig) -> Program {
    let locs = Locs { stacks: cfg.stacks };
    let coordinator = 0usize;
    let tracker = cfg.workers + 1;
    let mut threads: Vec<Vec<Step>> = vec![Vec::new(); cfg.workers + 2];

    for s in 0..cfg.sequences {
        // Tracker/mutator: dirty stacks, then answer the handshake.
        if s > 0 {
            threads[tracker].push(Step {
                sync: Some(SyncAction::Acquire {
                    sync: Syncs::resume(s - 1),
                    need: 1,
                }),
                label: "tracker: wait for resume",
                ..Step::default()
            });
        }
        for t in 0..cfg.stacks {
            threads[tracker].push(Step {
                accesses: vec![
                    Access::Write(locs.volatile(t)),
                    Access::Write(locs.bitmap(t)),
                ],
                label: "tracker: dirty stack words + bitmap",
                ..Step::default()
            });
        }
        threads[tracker].push(Step {
            sync: Some(SyncAction::Release(Syncs::quiesced(s))),
            event: Some(OrderEvent::Quiesced { seq: s }),
            label: "tracker: quiesced",
            ..Step::default()
        });

        // Coordinator.
        if cfg.bug != Bug::SkipQuiesceHandshake {
            threads[coordinator].push(Step {
                sync: Some(SyncAction::Acquire {
                    sync: Syncs::quiesced(s),
                    need: 1,
                }),
                label: "coordinator: quiescence handshake",
                ..Step::default()
            });
        }
        for t in 0..cfg.stacks {
            threads[coordinator].push(Step {
                accesses: vec![Access::Read(locs.bitmap(t)), Access::Write(locs.bitmap(t))],
                event: Some(OrderEvent::Inspect {
                    seq: s,
                    tid: t as u32,
                }),
                label: "coordinator: inspect+clear bitmap",
                ..Step::default()
            });
        }
        threads[coordinator].push(Step {
            sync: Some(SyncAction::Release(Syncs::stage_go(s))),
            label: "coordinator: start stage",
            ..Step::default()
        });
        if cfg.bug != Bug::SealBeforeStageDone {
            threads[coordinator].push(Step {
                sync: Some(SyncAction::Acquire {
                    sync: Syncs::stage_done(s),
                    need: cfg.workers as u64,
                }),
                label: "coordinator: join stage",
                ..Step::default()
            });
        }
        if cfg.pipelined && s > 0 {
            // The seal seeded away by StageBeforePriorSeal lands
            // here: only after the next sequence finished staging —
            // the commit point drifted behind the staged-ahead work.
            if cfg.bug == Bug::StageBeforePriorSeal {
                threads[coordinator].push(Step {
                    accesses: vec![Access::Write(locs.record())],
                    event: Some(OrderEvent::Seal { seq: s - 1 }),
                    label: "coordinator: late seal of prior sequence (bug)",
                    ..Step::default()
                });
            }
            // Sharpened invariant, second half: the next seal waits
            // for the prior sequence's drain window to close — the
            // apply join plus the record retire. OverlappedSequences
            // drops both: it seals ahead with the predecessor's
            // cleanup outstanding (the retire lands after the seal,
            // below).
            if cfg.bug != Bug::OverlappedSequences {
                threads[coordinator].push(Step {
                    sync: Some(SyncAction::Acquire {
                        sync: Syncs::apply_done(s - 1),
                        need: cfg.workers as u64,
                    }),
                    label: "coordinator: drain prior apply",
                    ..Step::default()
                });
                threads[coordinator].push(Step {
                    accesses: vec![Access::Write(locs.record())],
                    event: Some(OrderEvent::Retire { seq: s - 1 }),
                    label: "coordinator: retire prior record",
                    ..Step::default()
                });
            }
        }
        let defer_seal =
            cfg.pipelined && cfg.bug == Bug::StageBeforePriorSeal && s + 1 < cfg.sequences;
        if !defer_seal {
            threads[coordinator].push(Step {
                accesses: vec![Access::Write(locs.record())],
                event: Some(OrderEvent::Seal { seq: s }),
                label: "coordinator: serial seal",
                ..Step::default()
            });
        }
        if cfg.pipelined && s > 0 && cfg.bug == Bug::OverlappedSequences {
            // The dropped drain edge: the prior record retires only
            // after this sequence already sealed.
            threads[coordinator].push(Step {
                accesses: vec![Access::Write(locs.record())],
                event: Some(OrderEvent::Retire { seq: s - 1 }),
                label: "coordinator: late retire of prior record (bug)",
                ..Step::default()
            });
        }
        threads[coordinator].push(Step {
            sync: Some(SyncAction::Release(Syncs::resume(s))),
            label: "coordinator: resume mutator",
            ..Step::default()
        });
        threads[coordinator].push(Step {
            sync: Some(SyncAction::Release(Syncs::apply_go(s))),
            label: "coordinator: start apply",
            ..Step::default()
        });
        if cfg.pipelined {
            // Pipelined: no apply join here — the next iteration's
            // stage legally overlaps this apply's drain. The drain is
            // joined just before the *next* seal (above), or after
            // the loop for the final sequence.
            if s + 1 == cfg.sequences {
                threads[coordinator].push(Step {
                    sync: Some(SyncAction::Acquire {
                        sync: Syncs::apply_done(s),
                        need: cfg.workers as u64,
                    }),
                    label: "coordinator: join final apply",
                    ..Step::default()
                });
                threads[coordinator].push(Step {
                    accesses: vec![Access::Write(locs.record())],
                    event: Some(OrderEvent::Retire { seq: s }),
                    label: "coordinator: retire record",
                    ..Step::default()
                });
            }
        } else {
            let overlap = cfg.bug == Bug::OverlappedSequences && s + 1 < cfg.sequences;
            if !overlap {
                threads[coordinator].push(Step {
                    sync: Some(SyncAction::Acquire {
                        sync: Syncs::apply_done(s),
                        need: cfg.workers as u64,
                    }),
                    label: "coordinator: join apply",
                    ..Step::default()
                });
                threads[coordinator].push(Step {
                    accesses: vec![Access::Write(locs.record())],
                    event: Some(OrderEvent::Retire { seq: s }),
                    label: "coordinator: retire record",
                    ..Step::default()
                });
            }
        }

        // Workers.
        for w in 1..=cfg.workers {
            let my = chunk(w, cfg.workers, cfg.stacks);
            threads[w].push(Step {
                sync: Some(SyncAction::Acquire {
                    sync: Syncs::stage_go(s),
                    need: 1,
                }),
                label: "worker: wait for stage",
                ..Step::default()
            });
            for t in my.clone() {
                threads[w].push(Step {
                    accesses: vec![
                        Access::Read(locs.volatile(t)),
                        Access::Write(locs.staging(t)),
                    ],
                    event: Some(OrderEvent::Stage {
                        seq: s,
                        tid: t as u32,
                    }),
                    label: "worker: stage runs",
                    ..Step::default()
                });
            }
            threads[w].push(Step {
                sync: Some(SyncAction::Release(Syncs::stage_done(s))),
                label: "worker: stage done",
                ..Step::default()
            });
            threads[w].push(Step {
                sync: Some(SyncAction::Acquire {
                    sync: Syncs::apply_go(s),
                    need: 1,
                }),
                label: "worker: wait for apply",
                ..Step::default()
            });
            for t in my {
                let mut accesses = vec![
                    Access::Read(locs.staging(t)),
                    Access::Write(locs.persistent(t)),
                ];
                if cfg.bug == Bug::SharedApplyCursor {
                    accesses.push(Access::Write(locs.cursor()));
                }
                threads[w].push(Step {
                    accesses,
                    event: Some(OrderEvent::Apply {
                        seq: s,
                        tid: t as u32,
                    }),
                    label: "worker: apply staged runs",
                    ..Step::default()
                });
            }
            threads[w].push(Step {
                sync: Some(SyncAction::Release(Syncs::apply_done(s))),
                label: "worker: apply done",
                ..Step::default()
            });
        }
    }

    let mut thread_names = vec!["coordinator".to_owned()];
    for w in 1..=cfg.workers {
        thread_names.push(format!("worker[{w}]"));
    }
    thread_names.push("tracker".to_owned());

    Program {
        threads,
        thread_names,
        locations: locs.names(),
        syncs: Syncs::PER_SEQ * cfg.sequences as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_chunking_covers_all_stacks() {
        assert_eq!(chunk(1, 2, 4), 0..2);
        assert_eq!(chunk(2, 2, 4), 2..4);
        assert_eq!(chunk(1, 4, 2), 0..1);
        assert_eq!(chunk(3, 4, 2), 2..2); // idle worker
    }

    #[test]
    fn program_shape() {
        let p = commit_program(&CommitConfig {
            workers: 2,
            stacks: 2,
            sequences: 1,
            pipelined: false,
            bug: Bug::None,
        });
        assert_eq!(p.threads.len(), 4);
        assert_eq!(p.thread_names.len(), 4);
        assert_eq!(p.syncs, 6);
        // Coordinator emits exactly one seal per sequence.
        let seals = p.threads[0]
            .iter()
            .filter(|s| matches!(s.event, Some(OrderEvent::Seal { .. })))
            .count();
        assert_eq!(seals, 1);
    }

    /// The pipelined coordinator releases the next sequence's stage
    /// gate before joining the prior apply — the structural overlap —
    /// while still sealing exactly once per sequence.
    #[test]
    fn pipelined_program_defers_the_apply_join() {
        let p = commit_program(&CommitConfig {
            workers: 2,
            stacks: 2,
            sequences: 2,
            pipelined: true,
            bug: Bug::None,
        });
        let labels: Vec<&str> = p.threads[0].iter().map(|s| s.label).collect();
        let second_stage_go = labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == "coordinator: start stage")
            .nth(1)
            .map(|(i, _)| i)
            .expect("two sequences start staging");
        let drain = labels
            .iter()
            .position(|l| *l == "coordinator: drain prior apply")
            .expect("the prior apply is drained before the next seal");
        assert!(
            second_stage_go < drain,
            "stage(1) must open before apply(0) is joined: {labels:?}"
        );
        let seals = p.threads[0]
            .iter()
            .filter(|s| matches!(s.event, Some(OrderEvent::Seal { .. })))
            .count();
        assert_eq!(seals, 2);
        let retires = p.threads[0]
            .iter()
            .filter(|s| matches!(s.event, Some(OrderEvent::Retire { .. })))
            .count();
        assert_eq!(retires, 2);
    }

    #[test]
    fn bugged_programs_differ_from_correct() {
        for &bug in Bug::ALL {
            // StageBeforePriorSeal only exists on the pipelined path;
            // a step-count diff cannot see its reordering, so compare
            // the full per-thread (label, access-count) shape.
            let pipelined = bug == Bug::StageBeforePriorSeal;
            let cfg = |bug| CommitConfig {
                workers: 2,
                stacks: 2,
                sequences: 2,
                pipelined,
                bug,
            };
            let shape = |prog: &Program| {
                prog.threads
                    .iter()
                    .map(|t| {
                        t.iter()
                            .map(|s| (s.label, s.accesses.len()))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            };
            assert!(
                shape(&commit_program(&cfg(bug))) != shape(&commit_program(&cfg(Bug::None))),
                "bug {bug:?} produced an identical program"
            );
        }
    }
}
