//! Miniature loom-style concurrency checker for the parallel commit
//! protocol.
//!
//! The real `commit_with_workers` path in `prosper-core` fans stage
//! and apply work out to scoped threads around a serial seal. Its
//! correctness argument rests on a handful of ordering invariants
//! (see [`order`]): the seal is the single commit point, stage and
//! apply for one sequence number never overlap, sequences never
//! overlap each other, and the tracker quiescence handshake orders
//! bitmap clears against mutator writes.
//!
//! This module checks those invariants *exhaustively* on a model:
//!
//! * [`model`] builds a faithful synchronization skeleton of the
//!   protocol — coordinator, N stage/apply workers, a tracker thread —
//!   as explicit steps with acquire/release edges and shared-location
//!   accesses, plus deliberately seeded bugs ([`model::Bug`]) that
//!   drop specific edges.
//! * [`explorer`] enumerates every schedule of that skeleton under a
//!   preemption bound (DFS over enabled threads), maintaining vector
//!   clocks ([`vclock`]) to flag happens-before races, and checks the
//!   event trace of each schedule with [`order::check_order`].
//! * The same [`order::check_order`] runs over `CommitProbeEvent`
//!   logs recorded from the *real* commit path, tying the model to
//!   the implementation (see `tests/real_commit_conformance.rs`).

pub mod explorer;
pub mod model;
pub mod order;
pub mod vclock;

pub use explorer::{
    explore, explore_model, ExploreReport, ExplorerConfig, ModelProgram, ModelReport, RaceReport,
    StepEffect,
};
pub use model::{commit_program, Bug, CommitConfig, Program};
pub use order::{check_order, OrderEvent, OrderViolation};
pub use vclock::VClock;
