//! Exhaustive bounded-preemption schedule exploration with
//! vector-clock race detection.
//!
//! The explorer runs a [`Program`] under every schedule reachable
//! within a preemption bound (a context switch away from a
//! still-enabled thread counts as a preemption; switches at blocking
//! points are free). Each executed step advances the running
//! thread's vector clock; release/acquire pairs on the model
//! semaphores transfer clocks, and every shared-location access is
//! checked for happens-before ordering against the location's last
//! writer and concurrent readers. Completed schedules additionally
//! have their event traces checked against the commit-order
//! invariants.

use super::model::{Access, Program, Step, SyncAction};
use super::order::{check_order, OrderEvent, OrderViolation};
use super::vclock::VClock;
use std::collections::BTreeSet;

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct ExplorerConfig {
    /// Maximum context switches away from a still-enabled thread.
    pub preemption_bound: usize,
    /// Hard cap on completed schedules; exceeding it sets
    /// [`ExploreReport::truncated`].
    pub max_schedules: u64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_schedules: 2_000_000,
        }
    }
}

/// A data race between two threads on one location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Location name from the program's naming table.
    pub location: String,
    /// First involved thread (the earlier, unordered accessor).
    pub thread_a: String,
    /// Second involved thread (the racing accessor).
    pub thread_b: String,
    /// Step label of the racing access.
    pub label: String,
    /// The schedule (thread id per step) that exhibited the race.
    pub schedule: Vec<usize>,
}

/// Everything the explorer found.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Completed schedules explored.
    pub schedules: u64,
    /// True when `max_schedules` stopped exploration early.
    pub truncated: bool,
    /// Schedules that deadlocked (no enabled thread before
    /// completion).
    pub deadlocks: u64,
    /// Distinct data races (deduplicated by location + thread pair).
    pub races: Vec<RaceReport>,
    /// Distinct commit-order violations with a witness schedule each.
    pub order_violations: Vec<(OrderViolation, Vec<usize>)>,
}

impl ExploreReport {
    /// True when no race, order violation, or deadlock was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.order_violations.is_empty() && self.deadlocks == 0
    }
}

#[derive(Clone, Debug, Default)]
struct SyncState {
    count: u64,
    vc: VClock,
}

#[derive(Clone, Debug, Default)]
struct LocState {
    last_write: Option<(usize, VClock)>,
    reads: Vec<(usize, VClock)>,
}

#[derive(Clone, Debug)]
struct ExecState {
    pc: Vec<usize>,
    tvc: Vec<VClock>,
    syncs: Vec<SyncState>,
    locs: Vec<LocState>,
    trace: Vec<OrderEvent>,
    schedule: Vec<usize>,
    last_tid: Option<usize>,
    preemptions: usize,
}

struct Explorer<'a> {
    program: &'a Program,
    cfg: ExplorerConfig,
    report: ExploreReport,
    seen_races: BTreeSet<(usize, usize, usize)>,
    seen_violations: BTreeSet<String>,
}

/// Explores every schedule of `program` within the bounds of `cfg`.
#[must_use]
pub fn explore(program: &Program, cfg: &ExplorerConfig) -> ExploreReport {
    let threads = program.threads.len();
    let init = ExecState {
        pc: vec![0; threads],
        tvc: (0..threads)
            .map(|t| {
                let mut vc = VClock::new(threads);
                vc.tick(t);
                vc
            })
            .collect(),
        syncs: (0..program.syncs)
            .map(|_| SyncState {
                count: 0,
                vc: VClock::new(threads),
            })
            .collect(),
        locs: (0..program.locations.len())
            .map(|_| LocState::default())
            .collect(),
        trace: Vec::new(),
        schedule: Vec::new(),
        last_tid: None,
        preemptions: 0,
    };
    let mut explorer = Explorer {
        program,
        cfg: *cfg,
        report: ExploreReport::default(),
        seen_races: BTreeSet::new(),
        seen_violations: BTreeSet::new(),
    };
    explorer.dfs(init);
    explorer.report
}

impl Explorer<'_> {
    fn enabled(&self, state: &ExecState, tid: usize) -> bool {
        let Some(step) = self.program.threads[tid].get(state.pc[tid]) else {
            return false;
        };
        match step.sync {
            Some(SyncAction::Acquire { sync, need }) => state.syncs[sync].count >= need,
            _ => true,
        }
    }

    /// Runs one step of `tid`, updating clocks, race state, and the
    /// event trace.
    fn exec(&mut self, state: &mut ExecState, tid: usize) {
        let step: &Step = &self.program.threads[tid][state.pc[tid]];
        state.pc[tid] += 1;
        state.schedule.push(tid);
        state.tvc[tid].tick(tid);
        match step.sync {
            Some(SyncAction::Acquire { sync, .. }) => {
                let vc = state.syncs[sync].vc.clone();
                state.tvc[tid].join(&vc);
            }
            Some(SyncAction::Release(sync)) => {
                state.syncs[sync].count += 1;
                let vc = state.tvc[tid].clone();
                state.syncs[sync].vc.join(&vc);
            }
            None => {}
        }
        for &access in &step.accesses {
            let vc = state.tvc[tid].clone();
            match access {
                Access::Read(loc) => {
                    if let Some((wt, wvc)) = &state.locs[loc].last_write {
                        if *wt != tid && wvc.concurrent(&vc) {
                            self.record_race(loc, *wt, tid, step.label, &state.schedule);
                        }
                    }
                    let entry = &mut state.locs[loc].reads;
                    entry.retain(|(t, _)| *t != tid);
                    entry.push((tid, vc));
                }
                Access::Write(loc) => {
                    if let Some((wt, wvc)) = &state.locs[loc].last_write {
                        if *wt != tid && wvc.concurrent(&vc) {
                            self.record_race(loc, *wt, tid, step.label, &state.schedule);
                        }
                    }
                    for (rt, rvc) in &state.locs[loc].reads {
                        if *rt != tid && rvc.concurrent(&vc) {
                            self.record_race(loc, *rt, tid, step.label, &state.schedule);
                        }
                    }
                    state.locs[loc].reads.clear();
                    state.locs[loc].last_write = Some((tid, vc));
                }
            }
        }
        if let Some(event) = step.event {
            state.trace.push(event);
        }
        state.last_tid = Some(tid);
    }

    fn record_race(&mut self, loc: usize, a: usize, b: usize, label: &str, schedule: &[usize]) {
        let key = (loc, a.min(b), a.max(b));
        if self.seen_races.insert(key) {
            self.report.races.push(RaceReport {
                location: self.program.locations[loc].clone(),
                thread_a: self.program.thread_names[a.min(b)].clone(),
                thread_b: self.program.thread_names[a.max(b)].clone(),
                label: label.to_owned(),
                schedule: schedule.to_vec(),
            });
        }
    }

    fn leaf(&mut self, state: &ExecState, deadlocked: bool) {
        self.report.schedules += 1;
        if deadlocked {
            self.report.deadlocks += 1;
            return;
        }
        for v in check_order(&state.trace) {
            let key = v.to_string();
            if self.seen_violations.insert(key) {
                self.report
                    .order_violations
                    .push((v, state.schedule.clone()));
            }
        }
    }

    fn dfs(&mut self, mut state: ExecState) {
        loop {
            if self.report.truncated || self.report.schedules >= self.cfg.max_schedules {
                self.report.truncated = true;
                return;
            }
            let threads = self.program.threads.len();
            let done = (0..threads).all(|t| state.pc[t] >= self.program.threads[t].len());
            if done {
                self.leaf(&state, false);
                return;
            }
            let enabled: Vec<usize> = (0..threads).filter(|&t| self.enabled(&state, t)).collect();
            if enabled.is_empty() {
                self.leaf(&state, true);
                return;
            }
            // Choice set under the preemption bound: continuing the
            // last-run thread is free; switching away from it while
            // it is still enabled costs one preemption.
            let last_enabled = state.last_tid.is_some_and(|t| enabled.contains(&t));
            let choices: Vec<usize> = if last_enabled {
                if state.preemptions >= self.cfg.preemption_bound {
                    vec![state.last_tid.unwrap_or(enabled[0])]
                } else {
                    enabled
                }
            } else {
                enabled
            };
            if choices.len() == 1 {
                // No branching: run in place without cloning.
                self.exec(&mut state, choices[0]);
                continue;
            }
            for (i, &tid) in choices.iter().enumerate() {
                let preempt = last_enabled && state.last_tid != Some(tid);
                if i + 1 == choices.len() {
                    if preempt {
                        state.preemptions += 1;
                    }
                    self.exec(&mut state, tid);
                    break;
                }
                let mut branch = state.clone();
                if preempt {
                    branch.preemptions += 1;
                }
                self.exec(&mut branch, tid);
                self.dfs(branch);
                if self.report.truncated {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::model::{commit_program, Bug, CommitConfig};

    fn run_cfg(
        bug: Bug,
        workers: usize,
        sequences: u64,
        bound: usize,
        pipelined: bool,
    ) -> ExploreReport {
        let program = commit_program(&CommitConfig {
            workers,
            stacks: workers.max(2),
            sequences,
            pipelined,
            bug,
        });
        explore(
            &program,
            &ExplorerConfig {
                preemption_bound: bound,
                max_schedules: 2_000_000,
            },
        )
    }

    fn run(bug: Bug, workers: usize, sequences: u64, bound: usize) -> ExploreReport {
        run_cfg(bug, workers, sequences, bound, false)
    }

    #[test]
    fn correct_single_worker_is_clean() {
        let r = run(Bug::None, 1, 2, 2);
        assert!(!r.truncated);
        assert!(r.schedules > 0);
        assert!(r.is_clean(), "unexpected findings: {r:?}");
    }

    #[test]
    fn seal_before_stage_done_is_detected() {
        let r = run(Bug::SealBeforeStageDone, 2, 1, 1);
        assert!(r
            .order_violations
            .iter()
            .any(|(v, _)| matches!(v, OrderViolation::StageAfterSeal { .. })));
    }

    #[test]
    fn shared_apply_cursor_races() {
        let r = run(Bug::SharedApplyCursor, 2, 1, 1);
        assert!(r.races.iter().any(|race| race.location == "apply_cursor"));
    }

    #[test]
    fn skipped_quiesce_races_on_bitmap() {
        let r = run(Bug::SkipQuiesceHandshake, 1, 1, 1);
        assert!(r
            .races
            .iter()
            .any(|race| race.location.starts_with("bitmap")));
    }

    /// The pipelined protocol — stage(N+1) overlapping apply(N) — is
    /// race- and violation-free under every explored schedule.
    #[test]
    fn pipelined_correct_is_clean() {
        for (workers, bound) in [(1, 2), (2, 1)] {
            let r = run_cfg(Bug::None, workers, 2, bound, true);
            assert!(!r.truncated);
            assert!(r.schedules > 0);
            assert!(r.is_clean(), "workers={workers}: {r:?}");
        }
    }

    /// Seeded pipelined bug: the commit point drifts behind the
    /// staged-ahead work, so stage(N+1) precedes seal(N).
    #[test]
    fn stage_before_prior_seal_is_detected() {
        let r = run_cfg(Bug::StageBeforePriorSeal, 2, 2, 1, true);
        assert!(
            r.order_violations
                .iter()
                .any(|(v, _)| matches!(v, OrderViolation::StageBeforePriorSeal { .. })),
            "expected a stage-before-prior-seal violation: {r:?}"
        );
    }

    /// Dropping the drain edge in the pipelined coordinator lets
    /// seal(N+1) pass while sequence N's drain window (apply join +
    /// record retire) is still open.
    #[test]
    fn pipelined_overlapped_sequences_seal_early() {
        let r = run_cfg(Bug::OverlappedSequences, 2, 2, 1, true);
        assert!(
            r.order_violations
                .iter()
                .any(|(v, _)| matches!(v, OrderViolation::SealBeforePriorRetire { .. })),
            "expected a seal-before-prior-retire violation: {r:?}"
        );
    }
}
