//! Exhaustive bounded-preemption schedule exploration with
//! vector-clock race detection.
//!
//! The explorer is generic over a [`ModelProgram`]: any model that
//! exposes per-thread scripts over a cloneable state, semaphore-based
//! blocking, and invariant checks can be explored. Two models ride on
//! it today — the static commit-protocol skeleton ([`Program`]) and
//! the data-dependent allocator model
//! (`crate::allocmodel::AllocModel`).
//!
//! The engine runs a model under every schedule reachable within a
//! preemption bound (a context switch away from a still-enabled
//! thread counts as a preemption; switches at blocking points are
//! free). Each executed step advances the running thread's vector
//! clock; release/acquire pairs on the model semaphores transfer
//! clocks, and every shared-location access is checked for
//! happens-before ordering against the location's last writer and
//! concurrent readers. Model-specific invariants run after every step
//! ([`ModelProgram::check_step`]) and at every completed schedule
//! ([`ModelProgram::check_leaf`]).
//!
//! # Explored-state memoization
//!
//! With [`ExplorerConfig::memoize`] set, the engine deduplicates
//! states by a model-supplied fingerprint
//! ([`ModelProgram::fingerprint`]) combined with the semaphore
//! counts, last-run thread, and preemption budget: a state reached a
//! second time has its entire subtree pruned, since every state
//! reachable from it was already visited (and step-level invariants
//! checked) on the first visit. This keeps per-*state* invariant
//! coverage exhaustive while cutting the schedule count by orders of
//! magnitude. Two caveats, which is why memoization is opt-in: leaf
//! checks over full event *histories* only see the first visit's
//! continuations, and race reports may miss clock configurations
//! unique to pruned paths. Models whose fingerprint returns `None`
//! (the commit [`Program`], whose order checker is history-based) are
//! never pruned.

use super::model::{Access, Program, Step, SyncAction};
use super::order::{check_order, OrderEvent, OrderViolation};
use super::vclock::VClock;
use std::collections::{BTreeSet, HashSet};
use std::fmt::Display;
use std::hash::{Hash, Hasher};

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct ExplorerConfig {
    /// Maximum context switches away from a still-enabled thread.
    pub preemption_bound: usize,
    /// Hard cap on completed schedules; exceeding it sets
    /// [`ExploreReport::truncated`].
    pub max_schedules: u64,
    /// Prune states already explored (see the module docs for the
    /// soundness trade-off). Ignored by models without a fingerprint.
    pub memoize: bool,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_schedules: 2_000_000,
            memoize: false,
        }
    }
}

/// The engine-visible effect of one executed model step.
#[derive(Clone, Debug, Default)]
pub struct StepEffect {
    /// Semaphore operation the step performed, if any. An `Acquire`
    /// must already have been admitted by [`ModelProgram::enabled`].
    pub sync: Option<SyncAction>,
    /// Shared-location accesses (checked for happens-before races).
    pub accesses: Vec<Access>,
    /// Human-readable label for race reports.
    pub label: &'static str,
}

/// A model the generic engine can explore: per-thread scripts over a
/// cloneable state, semaphore gating, and invariant checks.
pub trait ModelProgram {
    /// Mutable model state threaded through one schedule.
    type State: Clone;
    /// Model-specific invariant violation.
    type Violation: Display;

    /// Number of model threads.
    fn thread_count(&self) -> usize;
    /// Number of counting semaphores (release/acquire edges).
    fn sync_count(&self) -> usize {
        0
    }
    /// Display name per thread.
    fn thread_names(&self) -> Vec<String>;
    /// Display name per shared location (sizes the race-state table).
    fn location_names(&self) -> Vec<String> {
        Vec::new()
    }
    /// The initial model state.
    fn init_state(&self) -> Self::State;
    /// True when `tid` has no further steps.
    fn thread_done(&self, state: &Self::State, tid: usize) -> bool;
    /// True when `tid`'s next step can execute given the semaphore
    /// counts (and any model-internal gating).
    fn enabled(&self, state: &Self::State, tid: usize, sem_counts: &[u64]) -> bool;
    /// Executes `tid`'s next step, mutating the state.
    fn step(&self, state: &mut Self::State, tid: usize) -> StepEffect;
    /// Invariants checked after every executed step.
    fn check_step(&self, _state: &Self::State) -> Vec<Self::Violation> {
        Vec::new()
    }
    /// Invariants checked at every completed (non-deadlocked)
    /// schedule.
    fn check_leaf(&self, _state: &Self::State) -> Vec<Self::Violation> {
        Vec::new()
    }
    /// Stable state fingerprint for explored-state memoization, or
    /// `None` when the model's checks are history-dependent and
    /// pruning would be unsound.
    fn fingerprint(&self, _state: &Self::State) -> Option<u64> {
        None
    }
}

/// A data race between two threads on one location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Location name from the model's naming table.
    pub location: String,
    /// First involved thread (the earlier, unordered accessor).
    pub thread_a: String,
    /// Second involved thread (the racing accessor).
    pub thread_b: String,
    /// Step label of the racing access.
    pub label: String,
    /// The schedule (thread id per step) that exhibited the race.
    pub schedule: Vec<usize>,
}

/// Everything the generic engine found for one model.
#[derive(Clone, Debug)]
pub struct ModelReport<V> {
    /// Completed schedules explored.
    pub schedules: u64,
    /// True when `max_schedules` stopped exploration early.
    pub truncated: bool,
    /// Schedules that deadlocked (no enabled thread before
    /// completion).
    pub deadlocks: u64,
    /// Subtrees pruned by explored-state memoization.
    pub memo_hits: u64,
    /// Distinct data races (deduplicated by location + thread pair).
    pub races: Vec<RaceReport>,
    /// Distinct invariant violations with a witness schedule each.
    pub violations: Vec<(V, Vec<usize>)>,
}

impl<V> Default for ModelReport<V> {
    fn default() -> Self {
        Self {
            schedules: 0,
            truncated: false,
            deadlocks: 0,
            memo_hits: 0,
            races: Vec::new(),
            violations: Vec::new(),
        }
    }
}

impl<V> ModelReport<V> {
    /// True when no race, violation, or deadlock was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.violations.is_empty() && self.deadlocks == 0
    }
}

/// Everything the explorer found for the commit [`Program`].
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Completed schedules explored.
    pub schedules: u64,
    /// True when `max_schedules` stopped exploration early.
    pub truncated: bool,
    /// Schedules that deadlocked (no enabled thread before
    /// completion).
    pub deadlocks: u64,
    /// Subtrees pruned by explored-state memoization (always 0 for
    /// the commit program, whose checker is history-based).
    pub memo_hits: u64,
    /// Distinct data races (deduplicated by location + thread pair).
    pub races: Vec<RaceReport>,
    /// Distinct commit-order violations with a witness schedule each.
    pub order_violations: Vec<(OrderViolation, Vec<usize>)>,
}

impl ExploreReport {
    /// True when no race, order violation, or deadlock was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.order_violations.is_empty() && self.deadlocks == 0
    }
}

#[derive(Clone, Debug, Default)]
struct SyncState {
    count: u64,
    vc: VClock,
}

#[derive(Clone, Debug, Default)]
struct LocState {
    last_write: Option<(usize, VClock)>,
    reads: Vec<(usize, VClock)>,
}

#[derive(Clone, Debug)]
struct EngineState<S> {
    model: S,
    tvc: Vec<VClock>,
    syncs: Vec<SyncState>,
    locs: Vec<LocState>,
    schedule: Vec<usize>,
    last_tid: Option<usize>,
    preemptions: usize,
}

struct Engine<'a, M: ModelProgram> {
    model: &'a M,
    cfg: ExplorerConfig,
    thread_names: Vec<String>,
    loc_names: Vec<String>,
    report: ModelReport<M::Violation>,
    seen_races: BTreeSet<(usize, usize, usize)>,
    seen_violations: BTreeSet<String>,
    memo: HashSet<u64>,
}

/// Explores every schedule of `model` within the bounds of `cfg`.
#[must_use]
pub fn explore_model<M: ModelProgram>(
    model: &M,
    cfg: &ExplorerConfig,
) -> ModelReport<M::Violation> {
    let threads = model.thread_count();
    let loc_names = model.location_names();
    let init = EngineState {
        model: model.init_state(),
        tvc: (0..threads)
            .map(|t| {
                let mut vc = VClock::new(threads);
                vc.tick(t);
                vc
            })
            .collect(),
        syncs: (0..model.sync_count())
            .map(|_| SyncState {
                count: 0,
                vc: VClock::new(threads),
            })
            .collect(),
        locs: (0..loc_names.len()).map(|_| LocState::default()).collect(),
        schedule: Vec::new(),
        last_tid: None,
        preemptions: 0,
    };
    let mut engine = Engine {
        model,
        cfg: *cfg,
        thread_names: model.thread_names(),
        loc_names,
        report: ModelReport::default(),
        seen_races: BTreeSet::new(),
        seen_violations: BTreeSet::new(),
        memo: HashSet::new(),
    };
    engine.dfs(init);
    engine.report
}

impl<M: ModelProgram> Engine<'_, M> {
    fn enabled(&self, state: &EngineState<M::State>, tid: usize) -> bool {
        !self.model.thread_done(&state.model, tid) && {
            let counts: Vec<u64> = state.syncs.iter().map(|s| s.count).collect();
            self.model.enabled(&state.model, tid, &counts)
        }
    }

    /// Prunes the subtree when this state (model fingerprint +
    /// semaphore counts + scheduling budget) was already explored.
    fn prune(&mut self, state: &EngineState<M::State>) -> bool {
        if !self.cfg.memoize {
            return false;
        }
        let Some(fp) = self.model.fingerprint(&state.model) else {
            return false;
        };
        let mut h = std::collections::hash_map::DefaultHasher::new();
        fp.hash(&mut h);
        for s in &state.syncs {
            s.count.hash(&mut h);
        }
        state.last_tid.hash(&mut h);
        state.preemptions.hash(&mut h);
        if self.memo.insert(h.finish()) {
            return false;
        }
        self.report.memo_hits += 1;
        true
    }

    /// Runs one step of `tid`, updating clocks, race state, and
    /// invariant findings.
    fn exec(&mut self, state: &mut EngineState<M::State>, tid: usize) {
        let effect = self.model.step(&mut state.model, tid);
        state.schedule.push(tid);
        state.tvc[tid].tick(tid);
        match effect.sync {
            Some(SyncAction::Acquire { sync, .. }) => {
                let vc = state.syncs[sync].vc.clone();
                state.tvc[tid].join(&vc);
            }
            Some(SyncAction::Release(sync)) => {
                state.syncs[sync].count += 1;
                let vc = state.tvc[tid].clone();
                state.syncs[sync].vc.join(&vc);
            }
            None => {}
        }
        for &access in &effect.accesses {
            let vc = state.tvc[tid].clone();
            match access {
                Access::Read(loc) => {
                    if let Some((wt, wvc)) = &state.locs[loc].last_write {
                        if *wt != tid && wvc.concurrent(&vc) {
                            self.record_race(loc, *wt, tid, effect.label, &state.schedule);
                        }
                    }
                    let entry = &mut state.locs[loc].reads;
                    entry.retain(|(t, _)| *t != tid);
                    entry.push((tid, vc));
                }
                Access::Write(loc) => {
                    if let Some((wt, wvc)) = &state.locs[loc].last_write {
                        if *wt != tid && wvc.concurrent(&vc) {
                            self.record_race(loc, *wt, tid, effect.label, &state.schedule);
                        }
                    }
                    for (rt, rvc) in &state.locs[loc].reads {
                        if *rt != tid && rvc.concurrent(&vc) {
                            self.record_race(loc, *rt, tid, effect.label, &state.schedule);
                        }
                    }
                    state.locs[loc].reads.clear();
                    state.locs[loc].last_write = Some((tid, vc));
                }
            }
        }
        state.last_tid = Some(tid);
        for v in self.model.check_step(&state.model) {
            self.record_violation(v, &state.schedule);
        }
    }

    fn record_race(&mut self, loc: usize, a: usize, b: usize, label: &str, schedule: &[usize]) {
        let key = (loc, a.min(b), a.max(b));
        if self.seen_races.insert(key) {
            self.report.races.push(RaceReport {
                location: self.loc_names[loc].clone(),
                thread_a: self.thread_names[a.min(b)].clone(),
                thread_b: self.thread_names[a.max(b)].clone(),
                label: label.to_owned(),
                schedule: schedule.to_vec(),
            });
        }
    }

    fn record_violation(&mut self, v: M::Violation, schedule: &[usize]) {
        let key = v.to_string();
        if self.seen_violations.insert(key) {
            self.report.violations.push((v, schedule.to_vec()));
        }
    }

    fn leaf(&mut self, state: &EngineState<M::State>, deadlocked: bool) {
        self.report.schedules += 1;
        if deadlocked {
            self.report.deadlocks += 1;
            return;
        }
        for v in self.model.check_leaf(&state.model) {
            self.record_violation(v, &state.schedule);
        }
    }

    fn dfs(&mut self, mut state: EngineState<M::State>) {
        loop {
            if self.report.truncated || self.report.schedules >= self.cfg.max_schedules {
                self.report.truncated = true;
                return;
            }
            if self.prune(&state) {
                return;
            }
            let threads = self.model.thread_count();
            let done = (0..threads).all(|t| self.model.thread_done(&state.model, t));
            if done {
                self.leaf(&state, false);
                return;
            }
            let enabled: Vec<usize> = (0..threads).filter(|&t| self.enabled(&state, t)).collect();
            if enabled.is_empty() {
                self.leaf(&state, true);
                return;
            }
            // Choice set under the preemption bound: continuing the
            // last-run thread is free; switching away from it while
            // it is still enabled costs one preemption.
            let last_enabled = state.last_tid.is_some_and(|t| enabled.contains(&t));
            let choices: Vec<usize> = if last_enabled {
                if state.preemptions >= self.cfg.preemption_bound {
                    vec![state.last_tid.unwrap_or(enabled[0])]
                } else {
                    enabled
                }
            } else {
                enabled
            };
            if choices.len() == 1 {
                // No branching: run in place without cloning.
                self.exec(&mut state, choices[0]);
                continue;
            }
            for (i, &tid) in choices.iter().enumerate() {
                let preempt = last_enabled && state.last_tid != Some(tid);
                if i + 1 == choices.len() {
                    if preempt {
                        state.preemptions += 1;
                    }
                    self.exec(&mut state, tid);
                    break;
                }
                let mut branch = state.clone();
                if preempt {
                    branch.preemptions += 1;
                }
                self.exec(&mut branch, tid);
                self.dfs(branch);
                if self.report.truncated {
                    return;
                }
            }
        }
    }
}

/// Per-schedule state of a static [`Program`]: thread cursors plus
/// the commit-order event trace.
#[derive(Clone, Debug)]
pub struct ProgramState {
    pc: Vec<usize>,
    trace: Vec<OrderEvent>,
}

impl ModelProgram for Program {
    type State = ProgramState;
    type Violation = OrderViolation;

    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn sync_count(&self) -> usize {
        self.syncs
    }

    fn thread_names(&self) -> Vec<String> {
        self.thread_names.clone()
    }

    fn location_names(&self) -> Vec<String> {
        self.locations.clone()
    }

    fn init_state(&self) -> ProgramState {
        ProgramState {
            pc: vec![0; self.threads.len()],
            trace: Vec::new(),
        }
    }

    fn thread_done(&self, state: &ProgramState, tid: usize) -> bool {
        state.pc[tid] >= self.threads[tid].len()
    }

    fn enabled(&self, state: &ProgramState, tid: usize, sem_counts: &[u64]) -> bool {
        let Some(step) = self.threads[tid].get(state.pc[tid]) else {
            return false;
        };
        match step.sync {
            Some(SyncAction::Acquire { sync, need }) => sem_counts[sync] >= need,
            _ => true,
        }
    }

    fn step(&self, state: &mut ProgramState, tid: usize) -> StepEffect {
        let step: &Step = &self.threads[tid][state.pc[tid]];
        state.pc[tid] += 1;
        if let Some(event) = step.event {
            state.trace.push(event);
        }
        StepEffect {
            sync: step.sync,
            accesses: step.accesses.clone(),
            label: step.label,
        }
    }

    fn check_leaf(&self, state: &ProgramState) -> Vec<OrderViolation> {
        check_order(&state.trace)
    }
}

/// Explores every schedule of the commit `program` within the bounds
/// of `cfg`.
#[must_use]
pub fn explore(program: &Program, cfg: &ExplorerConfig) -> ExploreReport {
    let r = explore_model(program, cfg);
    ExploreReport {
        schedules: r.schedules,
        truncated: r.truncated,
        deadlocks: r.deadlocks,
        memo_hits: r.memo_hits,
        races: r.races,
        order_violations: r.violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::model::{commit_program, Bug, CommitConfig};

    fn run_cfg(
        bug: Bug,
        workers: usize,
        sequences: u64,
        bound: usize,
        pipelined: bool,
    ) -> ExploreReport {
        let program = commit_program(&CommitConfig {
            workers,
            stacks: workers.max(2),
            sequences,
            pipelined,
            bug,
        });
        explore(
            &program,
            &ExplorerConfig {
                preemption_bound: bound,
                max_schedules: 2_000_000,
                memoize: false,
            },
        )
    }

    fn run(bug: Bug, workers: usize, sequences: u64, bound: usize) -> ExploreReport {
        run_cfg(bug, workers, sequences, bound, false)
    }

    #[test]
    fn correct_single_worker_is_clean() {
        let r = run(Bug::None, 1, 2, 2);
        assert!(!r.truncated);
        assert!(r.schedules > 0);
        assert!(r.is_clean(), "unexpected findings: {r:?}");
    }

    #[test]
    fn seal_before_stage_done_is_detected() {
        let r = run(Bug::SealBeforeStageDone, 2, 1, 1);
        assert!(r
            .order_violations
            .iter()
            .any(|(v, _)| matches!(v, OrderViolation::StageAfterSeal { .. })));
    }

    #[test]
    fn shared_apply_cursor_races() {
        let r = run(Bug::SharedApplyCursor, 2, 1, 1);
        assert!(r.races.iter().any(|race| race.location == "apply_cursor"));
    }

    #[test]
    fn skipped_quiesce_races_on_bitmap() {
        let r = run(Bug::SkipQuiesceHandshake, 1, 1, 1);
        assert!(r
            .races
            .iter()
            .any(|race| race.location.starts_with("bitmap")));
    }

    /// The pipelined protocol — stage(N+1) overlapping apply(N) — is
    /// race- and violation-free under every explored schedule.
    #[test]
    fn pipelined_correct_is_clean() {
        for (workers, bound) in [(1, 2), (2, 1)] {
            let r = run_cfg(Bug::None, workers, 2, bound, true);
            assert!(!r.truncated);
            assert!(r.schedules > 0);
            assert!(r.is_clean(), "workers={workers}: {r:?}");
        }
    }

    /// Seeded pipelined bug: the commit point drifts behind the
    /// staged-ahead work, so stage(N+1) precedes seal(N).
    #[test]
    fn stage_before_prior_seal_is_detected() {
        let r = run_cfg(Bug::StageBeforePriorSeal, 2, 2, 1, true);
        assert!(
            r.order_violations
                .iter()
                .any(|(v, _)| matches!(v, OrderViolation::StageBeforePriorSeal { .. })),
            "expected a stage-before-prior-seal violation: {r:?}"
        );
    }

    /// Dropping the drain edge in the pipelined coordinator lets
    /// seal(N+1) pass while sequence N's drain window (apply join +
    /// record retire) is still open.
    #[test]
    fn pipelined_overlapped_sequences_seal_early() {
        let r = run_cfg(Bug::OverlappedSequences, 2, 2, 1, true);
        assert!(
            r.order_violations
                .iter()
                .any(|(v, _)| matches!(v, OrderViolation::SealBeforePriorRetire { .. })),
            "expected a seal-before-prior-retire violation: {r:?}"
        );
    }

    /// The commit program never memoizes (its order checker is
    /// history-based, so it opts out via a `None` fingerprint):
    /// memoized runs are bit-identical to unmemoized ones.
    #[test]
    fn commit_program_opts_out_of_memoization() {
        let program = commit_program(&CommitConfig {
            workers: 2,
            stacks: 2,
            sequences: 1,
            pipelined: false,
            bug: Bug::None,
        });
        let plain = explore(
            &program,
            &ExplorerConfig {
                preemption_bound: 1,
                max_schedules: 2_000_000,
                memoize: false,
            },
        );
        let memo = explore(
            &program,
            &ExplorerConfig {
                preemption_bound: 1,
                max_schedules: 2_000_000,
                memoize: true,
            },
        );
        assert_eq!(plain.schedules, memo.schedules);
        assert_eq!(memo.memo_hits, 0);
    }
}
