//! Machine-readable lint diagnostics.
//!
//! Diagnostics are plain data; the JSON writer is hand-rolled (a few
//! dozen lines) so the analysis crate has no serialization dependency
//! and can therefore lint the serde shims themselves without a
//! circular relationship.

use std::fmt;

/// One lint finding, anchored to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `PA-NVM001`.
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the finding on its line, when the rule knows
    /// the exact position (token-level rules do; structural rules that
    /// anchor to a whole line leave it `None`).
    pub col: Option<usize>,
    /// Byte offset of the finding in the file, for editor jump-to and
    /// machine consumers that slice the source directly. Tracks `col`:
    /// both are set or neither.
    pub offset: Option<usize>,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// True when a `// lint:allow(RULE): reason` marker covers this
    /// finding; suppressed findings are reported but do not fail the
    /// build.
    pub suppressed: bool,
    /// The justification text from the suppression marker, if any.
    pub justification: Option<String>,
}

impl Diagnostic {
    /// Builds an unsuppressed diagnostic.
    pub fn new(
        rule: &str,
        file: &str,
        line: usize,
        message: impl Into<String>,
        snippet: impl Into<String>,
    ) -> Self {
        Self {
            rule: rule.to_owned(),
            file: file.to_owned(),
            line,
            col: None,
            offset: None,
            message: message.into(),
            snippet: snippet.into(),
            suppressed: false,
            justification: None,
        }
    }

    /// Attaches the finding's exact byte offset and 1-based column.
    #[must_use]
    pub fn with_offset(mut self, offset: usize, col: usize) -> Self {
        self.offset = Some(offset);
        self.col = Some(col);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = if self.suppressed { " (suppressed)" } else { "" };
        write!(
            f,
            "{}: {}:{}: {}{}",
            self.rule, self.file, self.line, self.message, mark
        )
    }
}

/// Summary of one rule that ran, for the report header.
#[derive(Clone, Debug)]
pub struct RuleInfo {
    /// Stable rule identifier.
    pub id: String,
    /// One-line description of what the rule enforces.
    pub summary: String,
    /// Number of findings (suppressed included).
    pub findings: usize,
}

/// The full result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Every finding, in rule-then-file order.
    pub diagnostics: Vec<Diagnostic>,
    /// The rules that ran, whether or not they fired.
    pub rules: Vec<RuleInfo>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings that should fail the build (not suppressed).
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.suppressed)
    }

    /// Number of unsuppressed findings.
    #[must_use]
    pub fn failure_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Renders the report as a JSON object:
    /// `{"files_scanned":N,"rules":[...],"diagnostics":[...],"failures":N}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 128);
        out.push_str("{\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"rules\":[");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            json_string(&mut out, &r.id);
            out.push_str(",\"summary\":");
            json_string(&mut out, &r.summary);
            out.push_str(",\"findings\":");
            out.push_str(&r.findings.to_string());
            out.push('}');
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_string(&mut out, &d.rule);
            out.push_str(",\"file\":");
            json_string(&mut out, &d.file);
            out.push_str(",\"line\":");
            out.push_str(&d.line.to_string());
            if let Some(col) = d.col {
                out.push_str(",\"col\":");
                out.push_str(&col.to_string());
            }
            if let Some(offset) = d.offset {
                out.push_str(",\"offset\":");
                out.push_str(&offset.to_string());
            }
            out.push_str(",\"message\":");
            json_string(&mut out, &d.message);
            out.push_str(",\"snippet\":");
            json_string(&mut out, &d.snippet);
            out.push_str(",\"suppressed\":");
            out.push_str(if d.suppressed { "true" } else { "false" });
            if let Some(j) = &d.justification {
                out.push_str(",\"justification\":");
                json_string(&mut out, j);
            }
            out.push('}');
        }
        out.push_str("],\"failures\":");
        out.push_str(&self.failure_count().to_string());
        out.push('}');
        out
    }
}

/// Appends `s` to `out` as a JSON string literal with escaping.
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_characters() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn report_json_shape() {
        let mut report = LintReport {
            files_scanned: 2,
            ..LintReport::default()
        };
        report.rules.push(RuleInfo {
            id: "PA-TEST000".into(),
            summary: "test rule".into(),
            findings: 1,
        });
        let mut d = Diagnostic::new("PA-TEST000", "src/lib.rs", 3, "bad", "let x = bad();");
        d.suppressed = true;
        d.justification = Some("known".into());
        report.diagnostics.push(d);
        let json = report.to_json();
        assert!(json.contains("\"failures\":0"));
        assert!(json.contains("\"suppressed\":true"));
        assert!(json.contains("\"justification\":\"known\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn offsets_appear_in_json_but_not_text() {
        let d = Diagnostic::new("PA-TEST000", "src/lib.rs", 3, "bad", "let x = bad();")
            .with_offset(42, 9);
        let mut report = LintReport::default();
        report.diagnostics.push(d.clone());
        let json = report.to_json();
        assert!(json.contains("\"line\":3,\"col\":9,\"offset\":42"));
        // The human-readable rendering stays file:line only.
        assert_eq!(d.to_string(), "PA-TEST000: src/lib.rs:3: bad");
    }

    #[test]
    fn offsetless_diagnostics_omit_the_keys() {
        let mut report = LintReport::default();
        report
            .diagnostics
            .push(Diagnostic::new("PA-TEST000", "src/lib.rs", 3, "bad", ""));
        let json = report.to_json();
        assert!(!json.contains("\"col\""));
        assert!(!json.contains("\"offset\""));
    }
}
