//! Static analysis and concurrency checking for the Prosper workspace.
//!
//! Two engines live here, both runnable as binaries and exercised by
//! tests:
//!
//! * **`prosper-lint`** — a token-level Rust source walker (no syn, no
//!   network deps) that enforces workspace invariants the compiler
//!   cannot see: durable-write discipline, `CrashSite` exhaustiveness,
//!   telemetry-name hygiene, panic-free recovery paths, determinism of
//!   simulator code, and `forbid(unsafe_code)` coverage. See
//!   [`rules`] for the catalogue and [`source`] for the scanner.
//! * **`prosper-interleave`** — a miniature loom-style bounded
//!   interleaving explorer plus vector-clock race detector for the
//!   parallel stage/seal/apply commit protocol. See [`interleave`].
//! * **`prosper-allocmodel`** — an allocator linearizability and
//!   persist-ordering model checker riding on the same explorer: the
//!   lock-free frame allocator's two-level atomic protocol explored
//!   exhaustively, with crash-subset enumeration of the durable tree
//!   and a shared history checker that also validates `AllocProbe`
//!   traces from the real allocator. See [`allocmodel`].
//!
//! Both report machine-readable JSON (hand-rolled writer in [`diag`];
//! the workspace deliberately takes no serialization dependency here
//! so the linter can lint the shims without depending on them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocmodel;
pub mod diag;
pub mod interleave;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{Diagnostic, LintReport};
pub use source::SourceFile;
