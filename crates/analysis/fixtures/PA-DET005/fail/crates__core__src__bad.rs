//! Fixture: wall-clock and ambient randomness in simulator code.
pub fn commit_timed() -> u64 {
    let t = std::time::Instant::now();
    let jitter = rand::thread_rng().gen_range(0..10);
    do_commit(jitter);
    t.elapsed().as_nanos() as u64
}
