//! Fixture: simulator code takes time from telemetry's stopwatch.
pub fn commit_timed() -> u64 {
    let sw = telemetry::Stopwatch::start();
    do_commit();
    sw.elapsed_ns()
}
