//! Fixture: the bench harness measures host time by design.
pub fn measure() -> std::time::Duration {
    let t = std::time::Instant::now();
    workload();
    t.elapsed()
}
