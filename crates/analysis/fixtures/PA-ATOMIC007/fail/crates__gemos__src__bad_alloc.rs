//! Must-fail fixture: a Relaxed publication store and a raw
//! `fetch_sub` counter decrement, the two shapes PA-ATOMIC007 bans.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct MiniAlloc {
    bitmap: AtomicU64,
    free: AtomicU64,
}

impl MiniAlloc {
    pub fn claim(&self, bit: u64) -> bool {
        // Publication store with no Release edge: the frame's prior
        // writes are not ordered before the claim becomes visible.
        let prev = self.bitmap.fetch_or(1 << bit, Ordering::Relaxed);
        prev & (1 << bit) == 0
    }

    pub fn take_unit(&self) -> u64 {
        // Raw decrement: underflows past zero under a racing free.
        self.free.fetch_sub(1, Ordering::AcqRel)
    }
}
