//! Must-fail fixture: a Relaxed store on a durable-state flag.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct SealFlag {
    sealed_seq: AtomicU64,
}

impl SealFlag {
    pub fn publish(&self, seq: u64) {
        // The seal must Release-order the staged words before it;
        // Relaxed lets the seal reach NVM first.
        self.sealed_seq.store(seq, Ordering::Relaxed);
    }
}
