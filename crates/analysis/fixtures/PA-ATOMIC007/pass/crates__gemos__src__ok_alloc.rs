//! Must-pass fixture: the sanctioned shapes — checked
//! `fetch_update` decrements, Release/AcqRel publication, and one
//! justified suppression for a debug sequence stamp.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct MiniAlloc {
    bitmap: AtomicU64,
    free: AtomicU64,
    debug_stamp: AtomicU64,
}

impl MiniAlloc {
    pub fn try_dec(&self) -> bool {
        self.free
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok()
    }

    pub fn claim(&self, bit: u64) -> bool {
        let prev = self.bitmap.fetch_or(1 << bit, Ordering::AcqRel);
        prev & (1 << bit) == 0
    }

    pub fn release(&self, bit: u64) {
        self.bitmap.fetch_and(!(1 << bit), Ordering::AcqRel);
        self.free.fetch_add(1, Ordering::AcqRel);
    }

    pub fn stamp(&self, v: u64) {
        // lint:allow(PA-ATOMIC007): debug-only stamp, read by no protocol path
        self.debug_stamp.store(v, Ordering::Relaxed);
    }
}
