//! Must-pass fixture: the telemetry crate is exempt by path prefix —
//! observability counters are racy-by-design and never published as
//! protocol state.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}
