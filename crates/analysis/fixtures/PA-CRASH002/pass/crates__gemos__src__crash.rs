//! Fixture: a fully covered crash-site enum.
pub enum CrashSite {
    /// Before anything was staged.
    PreStage,
    /// After the seal.
    PostSeal { tid: u32 },
}
