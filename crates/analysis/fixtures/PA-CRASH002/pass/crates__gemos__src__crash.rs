//! Fixture: a fully covered crash-site enum, including the
//! staged-delta-spine and lock-free-allocator sites.
pub enum CrashSite {
    /// Before anything was staged.
    PreStage,
    /// After the seal.
    PostSeal { tid: u32 },
    /// After a delta batch was appended to the spine.
    BatchSeal { tid: u32 },
    /// Mid-way through folding spine batches.
    MidMerge { tid: u32, batches_folded: u64 },
    /// After the fold, before the merged batches retire.
    MergeRetire { tid: u32 },
    /// After a subtree's durable word was staged, seal not written.
    AllocSubtreePersist { subtree: u32 },
    /// A worker's drained reservation is moving to a new subtree.
    AllocReservationSteal { worker: u32 },
}
