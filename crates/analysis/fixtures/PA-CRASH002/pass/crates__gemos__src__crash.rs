//! Fixture: a fully covered crash-site enum, including the
//! staged-delta-spine sites.
pub enum CrashSite {
    /// Before anything was staged.
    PreStage,
    /// After the seal.
    PostSeal { tid: u32 },
    /// After a delta batch was appended to the spine.
    BatchSeal { tid: u32 },
    /// Mid-way through folding spine batches.
    MidMerge { tid: u32, batches_folded: u64 },
    /// After the fold, before the merged batches retire.
    MergeRetire { tid: u32 },
}
