//! Fixture: the matrix exercises both variants.
pub fn sites() -> Vec<CrashSite> {
    vec![CrashSite::PreStage, CrashSite::PostSeal { tid: 0 }]
}
