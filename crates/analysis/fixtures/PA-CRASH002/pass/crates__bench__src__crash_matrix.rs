//! Fixture: the matrix exercises every variant.
pub fn sites() -> Vec<CrashSite> {
    vec![
        CrashSite::PreStage,
        CrashSite::PostSeal { tid: 0 },
        CrashSite::BatchSeal { tid: 1 },
        CrashSite::MidMerge {
            tid: 1,
            batches_folded: 2,
        },
        CrashSite::MergeRetire { tid: 1 },
        CrashSite::AllocSubtreePersist { subtree: 0 },
        CrashSite::AllocReservationSteal { worker: 1 },
    ]
}
