//! Fixture: injection points for the allocator crash sites live in
//! the allocator itself, not the commit pipeline.
pub fn persist_nvm(inj: &mut FaultInjector) {
    stage_subtree();
    crash_window!(inj, CrashSite::AllocSubtreePersist { subtree: 0 });
}

pub fn steal(inj: &mut FaultInjector) {
    crash_window!(inj, CrashSite::AllocReservationSteal { worker: 3 });
}
