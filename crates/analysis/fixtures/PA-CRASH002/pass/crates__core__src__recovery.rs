//! Fixture: injection points for both variants.
pub fn commit(inj: &mut FaultInjector) {
    crash_window!(inj, CrashSite::PreStage);
    seal();
    crash_window!(inj, CrashSite::PostSeal { tid: 0 });
}
