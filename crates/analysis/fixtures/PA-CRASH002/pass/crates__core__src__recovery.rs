//! Fixture: injection points for every variant.
pub fn commit(inj: &mut FaultInjector) {
    crash_window!(inj, CrashSite::PreStage);
    seal();
    crash_window!(inj, CrashSite::PostSeal { tid: 0 });
    crash_window!(inj, CrashSite::BatchSeal { tid: 0 });
    crash_window!(
        inj,
        CrashSite::MidMerge {
            tid: 0,
            batches_folded: 1
        }
    );
    crash_window!(inj, CrashSite::MergeRetire { tid: 0 });
}
