//! Fixture: injection points cover only two of three variants.
pub fn commit(inj: &mut FaultInjector) {
    crash_window!(inj, CrashSite::PreStage);
    seal();
    crash_window!(inj, CrashSite::PostSeal { tid: 0 });
}
