//! Fixture: the allocator injects only the subtree-persist site; the
//! reservation-steal window is missing.
pub fn persist_nvm(inj: &mut FaultInjector) {
    stage_subtree();
    crash_window!(inj, CrashSite::AllocSubtreePersist { subtree: 0 });
}
