//! Fixture: the matrix also misses `MidApply`, `MidMerge`, and
//! `AllocReservationSteal`.
pub fn sites() -> Vec<CrashSite> {
    vec![
        CrashSite::PreStage,
        CrashSite::PostSeal { tid: 0 },
        CrashSite::BatchSeal { tid: 1 },
        CrashSite::MergeRetire { tid: 1 },
        CrashSite::AllocSubtreePersist { subtree: 2 },
    ]
}
