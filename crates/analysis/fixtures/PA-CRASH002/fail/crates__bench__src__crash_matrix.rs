//! Fixture: the matrix also misses `MidApply`.
pub fn sites() -> Vec<CrashSite> {
    vec![CrashSite::PreStage, CrashSite::PostSeal { tid: 0 }]
}
