//! Fixture: `MidApply` has neither injection nor matrix coverage.
pub enum CrashSite {
    PreStage,
    PostSeal { tid: u32 },
    MidApply { tid: u32 },
}
