//! Fixture: `MidApply`, `MidMerge`, and `AllocReservationSteal` have
//! neither injection nor matrix coverage; the other spine and
//! allocator sites are covered.
pub enum CrashSite {
    PreStage,
    PostSeal { tid: u32 },
    MidApply { tid: u32 },
    BatchSeal { tid: u32 },
    MidMerge { tid: u32, batches_folded: u64 },
    MergeRetire { tid: u32 },
    AllocSubtreePersist { subtree: u32 },
    AllocReservationSteal { worker: u32 },
}
