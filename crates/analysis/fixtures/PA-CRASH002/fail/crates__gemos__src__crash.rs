//! Fixture: `MidApply` and `MidMerge` have neither injection nor
//! matrix coverage; the other spine sites are covered.
pub enum CrashSite {
    PreStage,
    PostSeal { tid: u32 },
    MidApply { tid: u32 },
    BatchSeal { tid: u32 },
    MidMerge { tid: u32, batches_folded: u64 },
    MergeRetire { tid: u32 },
}
