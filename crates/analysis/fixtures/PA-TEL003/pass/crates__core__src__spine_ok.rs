//! Fixture: the staged-delta-spine / write-amplification names,
//! registered and kind-correct.
pub fn report(r: &Registry) {
    r.gauge("prosper.spine.batches").set(3);
    r.counter("prosper.spine.merges").inc();
    r.counter("prosper.spine.merged_bytes").add(4096);
    r.counter("prosper.stall.merge_ns").add(512);
    r.histogram("prosper.ckpt.phase.merge_cycles").record(40);
    r.counter("prosper.ckpt.nvm_bytes_stage").add(8192);
    r.counter("prosper.ckpt.nvm_bytes_seal").add(8);
    r.counter("prosper.ckpt.nvm_bytes_apply").add(8192);
    r.counter("prosper.ckpt.nvm_bytes_merge").add(4096);
}
