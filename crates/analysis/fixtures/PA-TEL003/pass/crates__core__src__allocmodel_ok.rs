//! Fixture: the allocator-model-checker names, registered and
//! kind-correct.
pub fn report(r: &Registry) {
    r.counter("prosper.allocmodel.schedules").add(2646);
    r.counter("prosper.allocmodel.memo_hits").add(15084);
    r.counter("prosper.allocmodel.probe_ops").inc();
    r.counter("prosper.allocmodel.probe_events").add(7);
}
