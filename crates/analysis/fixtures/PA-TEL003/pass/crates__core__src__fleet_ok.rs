//! Fixture: the allocator / fleet / backpressure names, registered
//! and kind-correct.
pub fn report(r: &Registry) {
    r.counter("prosper.alloc.reservation_steals").inc();
    r.counter("prosper.alloc.subtree_persists").add(4);
    r.counter("prosper.alloc.double_frees_rejected").inc();
    r.gauge("prosper.alloc.nvm_free_frames").set(512);
    r.counter("prosper.fleet.commits").add(32);
    r.counter("prosper.fleet.deferred_commits").inc();
    r.counter("prosper.fleet.ckpt_nvm_bytes").add(4096);
    r.gauge("prosper.fleet.peak_to_mean_milli").set(1375);
    r.counter("prosper.stall.backpressure_ns").add(900);
}
