//! Fixture: the stall-attribution / SLO / tax names, registered and
//! kind-correct.
pub fn report(r: &Registry) {
    r.counter("prosper.stall.seal_ns").add(250);
    r.counter("prosper.stall.quiesce_ns").add(640);
    r.counter("prosper.stall.recovery_ns").add(400);
    r.gauge("prosper.slo.p99_ns").set(2048);
    r.gauge("prosper.slo.burn_rate_milli").set(120);
    r.counter("prosper.slo.violations").inc();
    r.counter("prosper.tax.reports").inc();
    r.counter("prosper.tax.useful_ns").add(9000);
}
