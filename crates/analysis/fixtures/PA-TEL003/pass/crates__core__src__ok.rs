//! Fixture: registered, kind-correct telemetry names.
pub fn report(r: &Registry) {
    r.counter("prosper.ckpt.intervals").inc();
    r.histogram("prosper.ckpt.interval_cycles").record(10);
    r.gauge("prosper.tracker.granularity").set(4096);
}
