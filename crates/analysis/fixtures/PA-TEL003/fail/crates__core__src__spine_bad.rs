//! Fixture: misuse of the spine / write-amplification namespaces — a
//! typo, a kind mismatch, and an unregistered phase counter.
pub fn report(r: &Registry) {
    r.counter("prosper.spine.mergez").inc(); // typo: unregistered
    r.counter("prosper.spine.batches").inc(); // registered as gauge
    r.counter("prosper.ckpt.nvm_bytes_retire").add(16); // unregistered phase
}
