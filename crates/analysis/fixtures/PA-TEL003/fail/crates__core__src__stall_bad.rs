//! Fixture: misuse of the stall-attribution / SLO namespaces — a
//! typo, two kind mismatches, and an unregistered tax metric.
pub fn report(r: &Registry) {
    r.counter("prosper.stall.seal_nss").add(250); // typo: unregistered
    r.gauge("prosper.stall.seal_ns").set(250); // registered as counter
    r.histogram("prosper.slo.p99_ns").record(2048); // registered as gauge
    r.counter("prosper.tax.stalls").inc(); // unregistered (stall_ns exists)
}
