//! Fixture: misuse of the allocator / fleet namespaces — a typo, a
//! kind mismatch, and an unregistered backpressure gauge.
pub fn report(r: &Registry) {
    r.counter("prosper.alloc.reservation_steal").inc(); // typo: unregistered
    r.counter("prosper.fleet.peak_to_mean_milli").add(1375); // registered as gauge
    r.gauge("prosper.stall.backpressure_occupancy").set(70); // unregistered
}
