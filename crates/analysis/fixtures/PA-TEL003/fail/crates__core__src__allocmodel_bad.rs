//! Fixture: misuse of the allocator-model-checker namespace — a typo,
//! a kind mismatch, and an unregistered name.
pub fn report(r: &Registry) {
    r.counter("prosper.allocmodel.schedule").inc(); // typo: unregistered
    r.gauge("prosper.allocmodel.memo_hits").set(3); // registered as counter
    r.counter("prosper.allocmodel.violations").inc(); // unregistered
}
