//! Fixture: a typo, a kind mismatch, and an ill-formed name.
pub fn report(r: &Registry) {
    r.counter("prosper.ckpt.intervalz").inc(); // typo: unregistered
    r.counter("prosper.ckpt.interval_cycles").inc(); // registered as histogram
    r.histogram("Prosper.Bad.Name").record(1); // ill-formed
}
