//! Fixture: recovery degrades structurally; unwrap is fine elsewhere.
pub fn recover_state(pending: Option<Record>) -> Outcome {
    match pending {
        Some(record) if record.sealed => Outcome::Redo(record),
        Some(_) => Outcome::Discard,
        None => Outcome::Clean,
    }
}

pub fn build_fixture() -> Vec<u8> {
    std::fs::read("fixture.bin").unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn restore_roundtrip() {
        let r = super::recover_state(None);
        assert!(matches!(r, super::Outcome::Clean));
        let v: Option<u32> = Some(1);
        v.unwrap();
    }
}
