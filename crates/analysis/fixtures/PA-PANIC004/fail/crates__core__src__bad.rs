//! Fixture: panicking constructs on the recovery surface.
pub fn recover_state(pending: Option<Record>) -> Record {
    pending.unwrap()
}

pub fn apply_record_at(slot: Option<&Record>) {
    let record = slot.expect("record must exist");
    drop(record);
    panic!("apply failed");
}
