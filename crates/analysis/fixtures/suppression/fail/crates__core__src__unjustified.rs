//! Fixture: a bare marker with no reason suppresses nothing.
pub fn replay_seed() -> u64 {
    // lint:allow(PA-DET005)
    std::time::SystemTime::now().elapsed().unwrap_or_default().as_nanos() as u64
}
