//! Fixture: a justified suppression keeps the finding but not the failure.
pub fn replay_seed() -> u64 {
    // lint:allow(PA-DET005): fixture demonstrating a justified suppression
    std::time::SystemTime::now().elapsed().unwrap_or_default().as_nanos() as u64
}
