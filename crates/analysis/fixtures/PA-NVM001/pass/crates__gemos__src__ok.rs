//! Fixture: OS code drives commits through the high-level API only.
pub fn on_interval(proc_: &mut Process) {
    proc_.checkpoint();
    let _ = proc_.stats();
}
