//! Fixture: the persistence layer itself may call staging APIs.
pub fn commit(stack: &mut PersistentStack) {
    stack.begin_stage(7);
    stack.stage_run(0, 0, 64);
    stack.seal();
    stack.apply_run(0);
    stack.finish_apply();
}
