//! Fixture: a rogue caller mutating staging state outside persist.rs.
pub fn sneak_write(stack: &mut PersistentStack) {
    stack.begin_stage(1);
    stack.stage_run(0, 0, 64); // must be flagged
    stack.sealed = true; // and this
}
