//! Fixture: a compliant crate root.

#![forbid(unsafe_code)]

pub fn safe() -> u32 {
    7
}
