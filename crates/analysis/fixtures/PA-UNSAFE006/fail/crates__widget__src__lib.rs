//! Fixture: no forbid attribute, and an unsafe block.

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
