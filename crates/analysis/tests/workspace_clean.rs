//! The real workspace must lint clean, and the lint's view of the
//! crash-site enum must agree with the enum itself.

use prosper_analysis::rules::{self, crash_variant_names, LintConfig};
use prosper_analysis::workspace;
use prosper_gemos::crash::CrashSite;
use std::path::Path;

fn scan_workspace() -> Vec<prosper_analysis::SourceFile> {
    let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analysis crate");
    workspace::load_sources(&root).expect("workspace sources readable")
}

#[test]
fn workspace_lints_clean() {
    let files = scan_workspace();
    assert!(files.len() > 50, "workspace scan looks incomplete");
    let report = rules::run(&files, &LintConfig::workspace_default());
    let failures: Vec<String> = report.unsuppressed().map(|d| format!("{d}")).collect();
    assert!(
        failures.is_empty(),
        "workspace has lint failures:\n{}",
        failures.join("\n")
    );
    // The catalogue stays honest: at least the seven documented rules
    // ran, plus the suppression meta-rule.
    assert!(
        report.rules.len() >= 8,
        "rule catalogue shrank: {:?}",
        report.rules
    );
}

#[test]
fn lint_parser_sees_every_crash_site_variant() {
    // The textual enum parse (what PA-CRASH002 checks against) must
    // match the enum's own compiled variant list — if the parser went
    // blind, the exhaustiveness rule would silently pass on nothing.
    let files = scan_workspace();
    let cfg = LintConfig::workspace_default();
    let parsed = crash_variant_names(&files, &cfg);
    assert_eq!(
        parsed,
        CrashSite::VARIANT_NAMES
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>(),
        "lint's parsed CrashSite variants diverge from the compiled enum"
    );
}
