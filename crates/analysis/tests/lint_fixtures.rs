//! Fixture-driven tests for every lint rule: each rule has a
//! must-pass and a must-fail corpus under `fixtures/<RULE>/`.
//!
//! Fixture files encode workspace-relative paths in their names with
//! `__` standing for `/`, so one flat directory can model a miniature
//! multi-crate workspace.

use prosper_analysis::rules::{self, LintConfig};
use prosper_analysis::source::SourceFile;
use std::path::Path;

/// Loads every fixture in `fixtures/<group>/<sub>/` as scanned
/// sources with decoded paths.
fn load(group: &str, sub: &str) -> Vec<SourceFile> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(group)
        .join(sub);
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing fixture dir {}: {e}", dir.display()))
        .flatten()
        .collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    entries
        .iter()
        .map(|entry| {
            let raw = std::fs::read_to_string(entry.path()).expect("fixture readable");
            let name = entry.file_name().to_string_lossy().into_owned();
            let path = name.trim_end_matches(".rs").replace("__", "/");
            SourceFile::parse(&format!("{path}.rs"), &raw)
        })
        .collect()
}

/// Runs the full rule set and returns unsuppressed findings of one
/// rule.
fn findings(rule: &str, files: &[SourceFile]) -> Vec<String> {
    rules::run(files, &LintConfig::workspace_default())
        .unsuppressed()
        .filter(|d| d.rule == rule)
        .map(|d| format!("{d}"))
        .collect()
}

fn assert_rule(rule: &str, min_fail_findings: usize) {
    let pass = load(rule, "pass");
    let fail = load(rule, "fail");
    assert!(
        findings(rule, &pass).is_empty(),
        "{rule}: must-pass fixtures produced findings: {:?}",
        findings(rule, &pass)
    );
    let got = findings(rule, &fail);
    assert!(
        got.len() >= min_fail_findings,
        "{rule}: expected at least {min_fail_findings} finding(s) from must-fail \
         fixtures, got {got:?}"
    );
}

#[test]
fn nvm001_durable_write_discipline() {
    // The rogue file calls stage_run and pokes `sealed` directly.
    assert_rule("PA-NVM001", 2);
}

#[test]
fn crash002_exhaustiveness() {
    // `MidApply`, the spine's `MidMerge`, and the allocator's
    // `AllocReservationSteal` are each missing both an injection point
    // and a matrix ref; the covered spine sites (`BatchSeal`,
    // `MergeRetire`) and `AllocSubtreePersist` must not be flagged.
    assert_rule("PA-CRASH002", 6);
    let fail = load("PA-CRASH002", "fail");
    let got = findings("PA-CRASH002", &fail);
    assert!(
        got.iter().all(|m| m.contains("MidApply")
            || m.contains("MidMerge")
            || m.contains("AllocReservationSteal")),
        "only the uncovered variants should be flagged: {got:?}"
    );
    for uncovered in ["MidApply", "MidMerge", "AllocReservationSteal"] {
        assert_eq!(
            got.iter().filter(|m| m.contains(uncovered)).count(),
            2,
            "{uncovered} should be flagged once per coverage surface: {got:?}"
        );
    }
}

#[test]
fn tel003_name_hygiene() {
    // Typo + kind mismatch + ill-formed name, plus the
    // stall/slo/tax misuse corpus (typo, two kind mismatches, one
    // unregistered name), the spine/write-amp misuse corpus (typo,
    // kind mismatch, unregistered phase counter), the alloc/fleet
    // misuse corpus (typo, kind mismatch, unregistered gauge), and
    // the allocmodel misuse corpus (typo, kind mismatch, unregistered
    // counter).
    assert_rule("PA-TEL003", 16);
}

#[test]
fn panic004_recovery_paths() {
    // unwrap + expect + panic! inside recovery-surface functions; the
    // pass corpus has unwraps in non-recovery fns and in cfg(test).
    assert_rule("PA-PANIC004", 3);
}

#[test]
fn det005_determinism() {
    // Instant::now + thread_rng in a simulator crate; the pass corpus
    // uses Stopwatch there and Instant::now in the exempt bench crate.
    assert_rule("PA-DET005", 2);
}

#[test]
fn unsafe006_forbid_unsafe() {
    // Missing attribute + an unsafe block.
    assert_rule("PA-UNSAFE006", 2);
}

#[test]
fn atomic007_ordering_discipline() {
    // A Relaxed publication fetch_or, a raw fetch_sub, and a Relaxed
    // durable-flag store; the pass corpus holds the exempt telemetry
    // counter, the sanctioned fetch_update/AcqRel shapes, and a
    // justified suppression.
    assert_rule("PA-ATOMIC007", 3);
}

#[test]
fn atomic007_findings_carry_offsets() {
    let fail = load("PA-ATOMIC007", "fail");
    let report = rules::run(&fail, &LintConfig::workspace_default());
    for d in report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "PA-ATOMIC007")
    {
        let (off, col) = (
            d.offset.expect("token rules attach byte offsets"),
            d.col.expect("token rules attach columns"),
        );
        // The offset really points at the finding in the fixture.
        let f = fail.iter().find(|f| f.path == d.file).unwrap();
        assert_eq!(f.line_of(off), d.line);
        assert_eq!(f.col_of(off), col);
        let at = &f.raw[off..];
        assert!(
            at.starts_with("Ordering::Relaxed") || at.starts_with(".fetch_sub("),
            "offset {off} does not point at a banned token: {:?}",
            &at[..at.len().min(24)]
        );
    }
}

#[test]
fn justified_suppression_downgrades_finding() {
    let files = load("suppression", "pass");
    let report = rules::run(&files, &LintConfig::workspace_default());
    assert_eq!(
        report.failure_count(),
        0,
        "justified suppression must not fail"
    );
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "PA-DET005")
        .expect("the finding is still reported");
    assert!(d.suppressed);
    assert!(d.justification.as_deref().is_some_and(|j| !j.is_empty()));
}

#[test]
fn bare_suppression_marker_is_rejected() {
    let files = load("suppression", "fail");
    let report = rules::run(&files, &LintConfig::workspace_default());
    // The original finding still fails the build…
    assert!(report
        .unsuppressed()
        .any(|d| d.rule == "PA-DET005" && !d.suppressed));
    // …and the reasonless marker is flagged on top.
    assert!(report.unsuppressed().any(|d| d.rule == "PA-META000"));
}

#[test]
fn json_report_is_machine_readable() {
    let files = load("PA-TEL003", "fail");
    let report = rules::run(&files, &LintConfig::workspace_default());
    let json = report.to_json();
    assert!(json.contains("\"rule\":\"PA-TEL003\""));
    assert!(json.contains("\"failures\":"));
}
