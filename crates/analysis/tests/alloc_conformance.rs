//! One checker, two witnesses: `AllocProbe` event streams recorded
//! from the *real* `FrameAlloc` under serial and concurrent load are
//! validated by the same history checker that validates the
//! exhaustive allocator model's traces — and forged reorderings of a
//! genuine trace are rejected.
//!
//! The probed paths hold the probe lock around each instrumented
//! atomic, so log order is linearization order, and every counter
//! mutation in these scenarios goes through a probed operation —
//! which is what makes the checker's exact counter replay valid.
//! (`reserve_nvm_region`/`try_claim_frame` mutate counters unprobed
//! and must not run during a probed scenario.)

use prosper_analysis::allocmodel::{
    check_alloc_history, check_crash_images, probe_trace as trace_of, AllocHistoryViolation,
    AllocTraceEvent, DurableStore, HistoryContext,
};
use prosper_gemos::llalloc::{AllocProbe, DurableAllocTree, FrameAlloc, SUBTREE_FRAMES};
use prosper_gemos::physmem::Pool;
use prosper_memsim::config::MemoryLayout;
use prosper_memsim::PAGE_SIZE;

fn layout(dram_frames: u64, nvm_frames: u64) -> MemoryLayout {
    MemoryLayout {
        dram_bytes: dram_frames * PAGE_SIZE,
        nvm_bytes: nvm_frames * PAGE_SIZE,
    }
}

fn assert_clean(trace: &[AllocTraceEvent], ctx: &HistoryContext, what: &str) {
    let violations = check_alloc_history(trace, ctx);
    assert!(
        violations.is_empty(),
        "{what}: real-allocator trace failed the checker: {:?}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
}

#[test]
fn serial_probed_trace_passes_with_policy_pinned() {
    let a = FrameAlloc::new(layout(8, 0));
    let probe = AllocProbe::new();
    let x = a.alloc_probed(Pool::Dram, &probe).unwrap();
    let y = a.alloc_probed(Pool::Dram, &probe).unwrap();
    let _z = a.alloc_probed(Pool::Dram, &probe).unwrap();
    a.free_probed(y, &probe).unwrap();
    // Serial policy: the freed (lowest) frame comes back first.
    assert_eq!(a.alloc_probed(Pool::Dram, &probe).unwrap(), y);
    a.free_probed(x, &probe).unwrap();
    let ctx = HistoryContext {
        total_frames: 8,
        base_pfn: 0,
        frames_per_subtree: SUBTREE_FRAMES,
        subtrees: 1,
        words_per_seal: 1,
        enforce_serial_policy: true,
    };
    assert_clean(&trace_of(&probe), &ctx, "serial");
}

#[test]
fn exhaustion_trace_passes_oom_replay() {
    let a = FrameAlloc::new(layout(2, 0));
    let probe = AllocProbe::new();
    let _ = a.alloc_probed(Pool::Dram, &probe).unwrap();
    let _ = a.alloc_probed(Pool::Dram, &probe).unwrap();
    assert!(a.alloc_probed(Pool::Dram, &probe).is_err());
    let ctx = HistoryContext {
        total_frames: 2,
        base_pfn: 0,
        frames_per_subtree: SUBTREE_FRAMES,
        subtrees: 1,
        words_per_seal: 1,
        enforce_serial_policy: true,
    };
    let trace = trace_of(&probe);
    assert!(trace.contains(&AllocTraceEvent::Oom { op: 2 }));
    assert_clean(&trace, &ctx, "exhaustion");
}

/// Concurrent workers on the reservation/steal path, racing frees:
/// the recorded linearization passes the exact-replay checker.
#[test]
fn concurrent_probed_trace_passes_checker() {
    // Two full subtrees so steals and reservations both happen.
    let frames = 2 * SUBTREE_FRAMES;
    let a = FrameAlloc::new(layout(frames, 0));
    let probe = AllocProbe::new();
    std::thread::scope(|scope| {
        for w in 0..3u32 {
            let a = &a;
            let probe = &probe;
            scope.spawn(move || {
                let mut held = Vec::new();
                for i in 0..40 {
                    held.push(a.alloc_for_probed(Pool::Dram, w, probe).unwrap());
                    if i % 3 == 0 {
                        let pfn = held.remove(0);
                        a.free_probed(pfn, probe).unwrap();
                    }
                }
                for pfn in held {
                    a.free_probed(pfn, probe).unwrap();
                }
            });
        }
    });
    let ctx = HistoryContext {
        total_frames: frames,
        base_pfn: 0,
        frames_per_subtree: SUBTREE_FRAMES,
        subtrees: 2,
        words_per_seal: 16,
        enforce_serial_policy: false,
    };
    let trace = trace_of(&probe);
    assert!(
        trace
            .iter()
            .any(|e| matches!(e, AllocTraceEvent::SubtreeAcquire { stolen: true, .. })),
        "expected at least one reservation steal in the trace"
    );
    assert_clean(&trace, &ctx, "concurrent");
}

/// Allocators racing the persist thread: the history passes, and
/// every seal-consistent post-crash image of each epoch's durable
/// store log recovers to the intended snapshot.
#[test]
fn concurrent_persist_trace_and_crash_images_pass() {
    let nvm_frames = 2 * SUBTREE_FRAMES;
    let a = FrameAlloc::new(layout(0, nvm_frames));
    let probe = AllocProbe::new();
    let mut durable = DurableAllocTree::new();
    std::thread::scope(|scope| {
        for w in 0..2u32 {
            let a = &a;
            let probe = &probe;
            scope.spawn(move || {
                let mut held = Vec::new();
                for _ in 0..30 {
                    held.push(a.alloc_for_probed(Pool::Nvm, w, probe).unwrap());
                }
                for pfn in held.into_iter().step_by(2) {
                    a.free_probed(pfn, probe).unwrap();
                }
            });
        }
        scope.spawn(|| {
            let mut d = DurableAllocTree::new();
            a.persist_nvm_probed(&mut d, &probe);
            a.persist_nvm_probed(&mut d, &probe);
            durable = d;
        });
    });
    assert_eq!(durable.committed_sequence(), 2);
    let ctx = HistoryContext {
        total_frames: nvm_frames,
        base_pfn: a.nvm_base_pfn(),
        frames_per_subtree: SUBTREE_FRAMES,
        subtrees: a.nvm_subtrees(),
        words_per_seal: a.nvm_bitmap_words(),
        enforce_serial_policy: false,
    };
    let trace = trace_of(&probe);
    assert_clean(&trace, &ctx, "concurrent+persist");

    // Rebuild each epoch's durable store log and enumerate its
    // reachable post-crash images.
    for epoch in [1u64, 2u64] {
        let log: Vec<DurableStore> = trace
            .iter()
            .filter_map(|e| match *e {
                AllocTraceEvent::StageWord { seq, word, value } if seq == epoch => {
                    Some(DurableStore::Word {
                        idx: word as usize,
                        val: value,
                    })
                }
                AllocTraceEvent::Seal { seq } if seq == epoch => Some(DurableStore::Seal),
                _ => None,
            })
            .collect();
        assert_eq!(log.len(), a.nvm_bitmap_words() + 1);
        let base = vec![0u64; a.nvm_bitmap_words()];
        let torn = check_crash_images(&base, &log);
        assert!(
            torn.is_empty(),
            "epoch {epoch}: torn crash images: {:?}",
            torn.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}

/// The rejection half of the conformance argument: forged reorderings
/// of a genuine trace must be flagged. Each forgery moves or
/// duplicates exactly one event.
#[test]
fn forged_reorderings_are_rejected() {
    let a = FrameAlloc::new(layout(8, 8));
    let probe = AllocProbe::new();
    let x = a.alloc_probed(Pool::Dram, &probe).unwrap();
    let _y = a.alloc_probed(Pool::Dram, &probe).unwrap();
    a.free_probed(x, &probe).unwrap();
    let mut durable = DurableAllocTree::new();
    a.persist_nvm_probed(&mut durable, &probe);
    let genuine = trace_of(&probe);
    let ctx = HistoryContext {
        total_frames: 8,
        base_pfn: 0,
        frames_per_subtree: SUBTREE_FRAMES,
        subtrees: 1,
        words_per_seal: 1,
        enforce_serial_policy: false,
    };
    assert_clean(&genuine, &ctx, "genuine");

    // Forgery 1: swap the free's subtree-inc after its root-inc (the
    // reordering the free-root-before-subtree seeded bug performs).
    let mut forged = genuine.clone();
    let si = forged
        .iter()
        .position(|e| matches!(e, AllocTraceEvent::FreeSubtree { .. }))
        .unwrap();
    forged.swap(si, si + 1);
    let v = check_alloc_history(&forged, &ctx);
    assert!(
        v.iter()
            .any(|x| matches!(x, AllocHistoryViolation::FreePhaseOrder { .. }))
            && v.iter()
                .any(|x| matches!(x, AllocHistoryViolation::InFlightInvariant { .. })),
        "swapped free order not rejected: {v:?}"
    );

    // Forgery 2: move the seal before its staged word.
    let mut forged = genuine.clone();
    let wi = forged
        .iter()
        .position(|e| matches!(e, AllocTraceEvent::StageWord { .. }))
        .unwrap();
    forged.swap(wi, wi + 1);
    let v = check_alloc_history(&forged, &ctx);
    assert!(
        v.iter()
            .any(|x| matches!(x, AllocHistoryViolation::SealBeforeStagedWords { .. })),
        "early seal not rejected: {v:?}"
    );

    // Forgery 3: duplicate a claim (a double hand-out).
    let mut forged = genuine.clone();
    let ci = forged
        .iter()
        .position(|e| matches!(e, AllocTraceEvent::Claim { .. }))
        .unwrap();
    let dup = forged[ci];
    forged.insert(ci + 1, dup);
    let v = check_alloc_history(&forged, &ctx);
    assert!(
        v.iter()
            .any(|x| matches!(x, AllocHistoryViolation::DoubleHandOut { .. })),
        "duplicated claim not rejected: {v:?}"
    );

    // Forgery 4: drop a subtree acquire so its claim floats free.
    let mut forged = genuine;
    let ai = forged
        .iter()
        .position(|e| matches!(e, AllocTraceEvent::SubtreeAcquire { .. }))
        .unwrap();
    forged.remove(ai);
    let v = check_alloc_history(&forged, &ctx);
    assert!(
        v.iter()
            .any(|x| matches!(x, AllocHistoryViolation::ClaimWithoutAcquire { .. })),
        "dropped acquire not rejected: {v:?}"
    );
}
