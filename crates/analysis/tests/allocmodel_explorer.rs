//! End-to-end allocator-model exploration: the correct protocol is
//! clean at 1/2/3 workers, every seeded ordering/persistency bug is
//! detected, and memoization preserves per-state findings while
//! cutting schedule counts.

use prosper_analysis::allocmodel::{AllocBug, AllocConfig, AllocModel, AllocViolation};
use prosper_analysis::interleave::{explore_model, ExplorerConfig, ModelReport};

fn run(cfg: AllocConfig, bound: usize, memoize: bool) -> ModelReport<AllocViolation> {
    let model = AllocModel::new(cfg);
    let report = explore_model(
        &model,
        &ExplorerConfig {
            preemption_bound: bound,
            max_schedules: 2_000_000,
            memoize,
        },
    );
    assert!(!report.truncated, "exploration truncated");
    report
}

fn assert_clean(report: &ModelReport<AllocViolation>, what: &str) {
    assert!(report.schedules > 0, "{what}: no schedules explored");
    assert!(
        report.is_clean(),
        "{what}: deadlocks={} violations={:?} races={:?}",
        report.deadlocks,
        report
            .violations
            .iter()
            .map(|(v, _)| v.to_string())
            .collect::<Vec<_>>(),
        report.races
    );
}

#[test]
fn serial_path_is_clean_and_policy_pinned() {
    let r = run(
        AllocConfig {
            workers: 1,
            reservations: false,
            persist: true,
            ..AllocConfig::default()
        },
        2,
        false,
    );
    assert_clean(&r, "serial");
}

#[test]
fn one_worker_reservation_path_is_clean() {
    let r = run(
        AllocConfig {
            workers: 1,
            persist: true,
            ..AllocConfig::default()
        },
        2,
        false,
    );
    assert_clean(&r, "1 worker");
}

#[test]
fn two_workers_are_clean() {
    let r = run(
        AllocConfig {
            workers: 2,
            persist: true,
            ..AllocConfig::default()
        },
        2,
        false,
    );
    assert_clean(&r, "2 workers");
}

#[test]
fn three_workers_are_clean_with_memoization() {
    let r = run(
        AllocConfig {
            workers: 3,
            subtrees: 2,
            frames_per_subtree: 2,
            allocs_per_worker: 2,
            ..AllocConfig::default()
        },
        2,
        true,
    );
    assert_clean(&r, "3 workers");
    assert!(r.memo_hits > 0, "memoization never pruned at 3 workers");
}

/// Memoization must not change *whether* the model is clean, only
/// how many schedules prove it.
#[test]
fn memoization_preserves_cleanliness_and_prunes() {
    let cfg = AllocConfig {
        workers: 2,
        persist: true,
        ..AllocConfig::default()
    };
    let plain = run(cfg, 2, false);
    let memo = run(cfg, 2, true);
    assert_clean(&plain, "plain");
    assert_clean(&memo, "memoized");
    assert!(memo.memo_hits > 0);
    assert!(
        memo.schedules < plain.schedules,
        "memoization did not reduce schedules: {} vs {}",
        memo.schedules,
        plain.schedules
    );
}

/// Exhaustion is modeled, not an error: more allocs than frames
/// forces legal OOMs, which the history replay accepts.
#[test]
fn oversubscribed_pool_ooms_cleanly() {
    let r = run(
        AllocConfig {
            workers: 3,
            subtrees: 2,
            frames_per_subtree: 1,
            allocs_per_worker: 1,
            free_first: false,
            ..AllocConfig::default()
        },
        2,
        false,
    );
    assert_clean(&r, "oversubscribed");
}

fn bug_cfg(bug: AllocBug) -> AllocConfig {
    AllocConfig {
        workers: 2,
        persist: bug == AllocBug::SealBeforeStagedWords,
        bug,
        ..AllocConfig::default()
    }
}

#[test]
fn counter_store_before_bit_claim_is_detected() {
    let r = run(bug_cfg(AllocBug::CounterStoreBeforeBitClaim), 2, false);
    assert!(
        r.violations
            .iter()
            .any(|(v, _)| matches!(v, AllocViolation::SubtreeConservation { .. })),
        "expected a subtree-conservation violation: {:?}",
        r.violations
            .iter()
            .map(|(v, _)| v.to_string())
            .collect::<Vec<_>>()
    );
    assert!(r
        .violations
        .iter()
        .any(|(v, _)| matches!(v, AllocViolation::History(_))));
}

#[test]
fn steal_without_reservation_cas_is_detected() {
    let r = run(bug_cfg(AllocBug::StealWithoutReservationCas), 2, false);
    assert!(
        r.violations
            .iter()
            .any(|(v, _)| matches!(v, AllocViolation::SubtreeConservation { .. })),
        "expected a subtree-conservation violation: {:?}",
        r.violations
            .iter()
            .map(|(v, _)| v.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn free_root_before_subtree_is_detected() {
    let r = run(bug_cfg(AllocBug::FreeRootBeforeSubtree), 2, false);
    assert!(
        r.violations
            .iter()
            .any(|(v, _)| matches!(v, AllocViolation::InFlight { .. })),
        "expected an in-flight invariant violation: {:?}",
        r.violations
            .iter()
            .map(|(v, _)| v.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn seal_before_staged_words_is_detected() {
    let r = run(bug_cfg(AllocBug::SealBeforeStagedWords), 2, false);
    let strings: Vec<String> = r.violations.iter().map(|(v, _)| v.to_string()).collect();
    assert!(
        r.violations
            .iter()
            .any(|(v, _)| matches!(v, AllocViolation::Persist(_))),
        "expected a torn-crash-image violation: {strings:?}"
    );
    assert!(
        r.violations
            .iter()
            .any(|(v, _)| matches!(v, AllocViolation::History(_))),
        "expected the history checker to flag the early seal: {strings:?}"
    );
}

/// Every seeded bug is detected, and each run reports a witness
/// schedule for at least one violation.
#[test]
fn every_seeded_bug_is_detected_with_witness() {
    for bug in AllocBug::ALL {
        let r = run(bug_cfg(bug), 2, false);
        assert!(!r.is_clean(), "bug {} went undetected", bug.name());
        if !r.violations.is_empty() {
            assert!(
                r.violations.iter().all(|(_, sched)| !sched.is_empty()),
                "bug {}: violation without witness schedule",
                bug.name()
            );
        }
    }
}
