//! Exhaustive exploration of the commit-protocol model: correct
//! configurations at 1, 2, and 4 workers are clean; every seeded bug
//! is detected (the regression suite that proves the checker has
//! teeth).

use prosper_analysis::interleave::{
    commit_program, explore, Bug, CommitConfig, ExploreReport, ExplorerConfig, OrderViolation,
};

fn run(workers: usize, stacks: usize, sequences: u64, bug: Bug, bound: usize) -> ExploreReport {
    run_model(workers, stacks, sequences, bug, bound, false)
}

fn run_pipelined(
    workers: usize,
    stacks: usize,
    sequences: u64,
    bug: Bug,
    bound: usize,
) -> ExploreReport {
    run_model(workers, stacks, sequences, bug, bound, true)
}

fn run_model(
    workers: usize,
    stacks: usize,
    sequences: u64,
    bug: Bug,
    bound: usize,
    pipelined: bool,
) -> ExploreReport {
    let program = commit_program(&CommitConfig {
        workers,
        stacks,
        sequences,
        pipelined,
        bug,
    });
    let report = explore(
        &program,
        &ExplorerConfig {
            preemption_bound: bound,
            max_schedules: 2_000_000,
            memoize: false,
        },
    );
    assert!(
        !report.truncated,
        "exploration truncated at {} schedules — tighten the config",
        report.schedules
    );
    report
}

#[test]
fn one_worker_commit_is_clean() {
    let r = run(1, 4, 2, Bug::None, 2);
    assert!(r.schedules > 0);
    assert!(r.is_clean(), "findings in correct 1-worker protocol: {r:?}");
}

#[test]
fn two_worker_commit_is_clean() {
    let r = run(2, 4, 2, Bug::None, 1);
    assert!(
        r.schedules > 100,
        "suspiciously few schedules: {}",
        r.schedules
    );
    assert!(r.is_clean(), "findings in correct 2-worker protocol: {r:?}");
}

#[test]
fn four_worker_commit_is_clean() {
    let r = run(4, 4, 1, Bug::None, 1);
    assert!(
        r.schedules > 1000,
        "suspiciously few schedules: {}",
        r.schedules
    );
    assert!(r.is_clean(), "findings in correct 4-worker protocol: {r:?}");
}

#[test]
fn broken_serial_seal_guard_is_caught() {
    // The seeded seal-reordering bug: the coordinator seals without
    // joining the stage workers. The explorer must reproduce the
    // stage-after-seal ordering.
    let r = run(2, 2, 1, Bug::SealBeforeStageDone, 1);
    assert!(
        r.order_violations
            .iter()
            .any(|(v, _)| matches!(v, OrderViolation::StageAfterSeal { .. })),
        "seal-before-stage-done not detected: {r:?}"
    );
    // The witness schedule is recorded for replay.
    let (_, witness) = &r.order_violations[0];
    assert!(!witness.is_empty());
}

#[test]
fn shared_apply_cursor_race_is_caught() {
    let r = run(2, 2, 1, Bug::SharedApplyCursor, 1);
    assert!(
        r.races.iter().any(|race| race.location == "apply_cursor"),
        "shared-cursor race not detected: {r:?}"
    );
}

#[test]
fn skipped_quiescence_handshake_is_caught() {
    let r = run(1, 2, 1, Bug::SkipQuiesceHandshake, 1);
    assert!(
        r.races
            .iter()
            .any(|race| race.location.starts_with("bitmap")),
        "bitmap race without quiescence not detected: {r:?}"
    );
}

#[test]
fn overlapped_sequences_are_caught() {
    // Without the apply join, the coordinator seals sequence N+1 with
    // sequence N's drain window (apply join + record retire) still
    // open — the sharpened invariant's second half.
    let r = run(2, 2, 2, Bug::OverlappedSequences, 1);
    assert!(
        r.order_violations
            .iter()
            .any(|(v, _)| matches!(v, OrderViolation::SealBeforePriorRetire { .. })),
        "cross-sequence overlap not detected: {r:?}"
    );
}

#[test]
fn pipelined_commit_is_clean_at_every_worker_count() {
    // PR 7 acceptance: the pipelined protocol — stage(N+1) overlapping
    // apply(N) behind seal(N) — explores clean at 1, 2, and 4 workers.
    // Two sequences keep the overlap window open at 1 and 2 workers;
    // at 4 workers the two-sequence schedule space exceeds the cap,
    // so the 4-worker run covers a single pipelined burst (the final
    // drain join) and the prosper-interleave binary adds a 3-worker
    // two-sequence sweep in release mode.
    for (workers, sequences, bound) in [(1, 2, 2), (2, 2, 1), (4, 1, 1)] {
        let r = run_pipelined(workers, 4, sequences, Bug::None, bound);
        assert!(r.schedules > 0);
        assert!(
            r.is_clean(),
            "findings in correct pipelined {workers}-worker protocol: {r:?}"
        );
    }
}

#[test]
fn stage_before_prior_seal_is_caught() {
    // The pipelined-only seed: the commit point drifts behind the
    // staged-ahead work, violating the sharpened invariant's first
    // half (no stage(N+1) before seal(N)).
    let r = run_pipelined(2, 2, 2, Bug::StageBeforePriorSeal, 1);
    assert!(
        r.order_violations
            .iter()
            .any(|(v, _)| matches!(v, OrderViolation::StageBeforePriorSeal { .. })),
        "stage-before-prior-seal not detected: {r:?}"
    );
}

#[test]
fn every_seeded_bug_is_detected() {
    for &bug in Bug::ALL {
        // StageBeforePriorSeal only exists on the pipelined path.
        let pipelined = bug == Bug::StageBeforePriorSeal;
        let r = run_model(2, 2, 2, bug, 1, pipelined);
        assert!(
            !r.is_clean(),
            "seeded bug {} went undetected across {} schedules",
            bug.name(),
            r.schedules
        );
    }
}
