//! Conformance of the *real* parallel commit path to the protocol
//! order invariants.
//!
//! The model explorer (see `interleave_explorer.rs`) proves the
//! protocol *design* safe; this suite ties the design to the
//! implementation: `CommitProbe` logs recorded inside
//! `PersistentProcess::commit_with_workers_probed` are mapped onto
//! the same `OrderEvent` trace format and checked with the same
//! `check_order` — one checker, two witnesses.

use prosper_analysis::interleave::{check_order, OrderEvent};
use prosper_core::bitmap::CopyRun;
use prosper_core::recovery::{CommitProbe, CommitProbeEvent, PersistentProcess};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use std::collections::BTreeMap;

fn ranges(n: u64) -> Vec<VirtRange> {
    (0..n)
        .map(|i| {
            let top = 0x7000_0000 + (i + 1) * 0x10_0000;
            VirtRange::new(VirtAddr::new(top - 0x8000), VirtAddr::new(top))
        })
        .collect()
}

fn full_runs(p: &PersistentProcess, threads: u32) -> BTreeMap<u32, Vec<CopyRun>> {
    (0..threads)
        .map(|tid| {
            let r = p.stack(tid).range();
            (
                tid,
                vec![CopyRun {
                    start: r.start(),
                    len: r.len(),
                }],
            )
        })
        .collect()
}

/// Maps the probe's event log onto the order checker's trace format.
fn to_trace(events: &[CommitProbeEvent]) -> Vec<OrderEvent> {
    events
        .iter()
        .map(|e| match *e {
            CommitProbeEvent::StageThread { tid, sequence } => {
                OrderEvent::Stage { seq: sequence, tid }
            }
            CommitProbeEvent::Seal { sequence } => OrderEvent::Seal { seq: sequence },
            CommitProbeEvent::ApplyThread { tid, sequence } => {
                OrderEvent::Apply { seq: sequence, tid }
            }
            CommitProbeEvent::Retire { sequence } => OrderEvent::Retire { seq: sequence },
            CommitProbeEvent::MergeThread { tid, upto } => OrderEvent::Merge { seq: upto, tid },
        })
        .collect()
}

fn probe_commit(threads: u32, workers: usize, commits: u64) -> Vec<OrderEvent> {
    let mut p = PersistentProcess::new(&ranges(u64::from(threads)));
    let runs = full_runs(&p, threads);
    let probe = CommitProbe::new();
    for _ in 0..commits {
        p.commit_with_workers_probed(&runs, workers, Some(&probe));
    }
    to_trace(&probe.events())
}

/// Drives the real pipelined burst (`commit_pipelined_attributed`)
/// and returns its probe stream as a checker trace.
fn probe_pipelined(threads: u32, workers: usize, batches: usize) -> Vec<OrderEvent> {
    let mut p = PersistentProcess::new(&ranges(u64::from(threads)));
    let runs = full_runs(&p, threads);
    let batches: Vec<_> = (0..batches).map(|_| runs.clone()).collect();
    let probe = CommitProbe::new();
    p.commit_pipelined_attributed(&batches, workers, Some(&probe), None);
    to_trace(&probe.events())
}

/// Drives the real staged-delta-spine commit (`commit_attributed` on
/// a spine-configured process) and returns its probe stream.
fn probe_spine(threads: u32, workers: usize, commits: u64) -> Vec<OrderEvent> {
    let mut p = PersistentProcess::new_with_spine(
        &ranges(u64::from(threads)),
        prosper_core::SpineConfig::merge_always(),
    );
    let runs = full_runs(&p, threads);
    let probe = CommitProbe::new();
    for _ in 0..commits {
        p.commit_attributed(&runs, workers, Some(&probe), None);
    }
    to_trace(&probe.events())
}

#[test]
fn real_spine_commit_conforms_and_merges_after_seal() {
    // PR 8: the spine schedule's probe stream — including the
    // MergeThread events the merge loop emits — passes the checker,
    // and every merge folds only sealed batches.
    for &workers in &[1usize, 2, 4] {
        let trace = probe_spine(2, workers, 3);
        let violations = check_order(&trace);
        assert!(
            violations.is_empty(),
            "workers={workers}: spine commit violated protocol order: \
             {violations:?}\ntrace: {trace:?}"
        );
        assert!(
            trace.iter().any(|e| matches!(e, OrderEvent::Merge { .. })),
            "workers={workers}: merge-always policy must emit merges"
        );
    }
}

#[test]
fn checker_rejects_merge_before_seal_forgery() {
    // Slide a genuine merge event back before its batch's seal: the
    // merge-never-crosses-an-unsealed-batch rule must catch it.
    let mut trace = probe_spine(2, 2, 2);
    assert!(check_order(&trace).is_empty());
    let merge = trace
        .iter()
        .position(|e| matches!(e, OrderEvent::Merge { .. }))
        .expect("spine trace has merges");
    let merge_seq = trace[merge].seq();
    let seal = trace
        .iter()
        .position(|e| matches!(e, OrderEvent::Seal { seq } if *seq == merge_seq))
        .expect("merged batch sealed");
    assert!(seal < merge, "genuine trace merges after the seal");
    let ev = trace.remove(merge);
    trace.insert(seal, ev); // now before seal(merge_seq)
    let violations = check_order(&trace);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            prosper_analysis::interleave::OrderViolation::MergeCrossesUnsealedBatch { .. }
        )),
        "checker accepted a merge-before-seal forgery: {violations:?}"
    );
}

#[test]
fn real_commit_respects_protocol_order_at_every_worker_count() {
    for &workers in &[1usize, 2, 4] {
        let trace = probe_commit(4, workers, 2);
        // Per commit: 4 stages + 1 seal + 4 applies + 1 retire.
        assert_eq!(trace.len(), 20, "workers={workers}: unexpected event count");
        let violations = check_order(&trace);
        assert!(
            violations.is_empty(),
            "workers={workers}: real commit path violated protocol order: \
             {violations:?}\ntrace: {trace:?}"
        );
    }
}

#[test]
fn real_commit_trace_has_single_seal_per_sequence() {
    let trace = probe_commit(2, 2, 3);
    for seq in 1..=3u64 {
        let seals = trace
            .iter()
            .filter(|e| matches!(e, OrderEvent::Seal { seq: s } if *s == seq))
            .count();
        assert_eq!(seals, 1, "sequence {seq} must seal exactly once");
    }
}

#[test]
fn real_pipelined_commit_conforms_and_overlaps() {
    // PR 7: the pipelined burst's probe stream passes the sharpened
    // checker at every worker count, and the stream witnesses the
    // overlap itself — stage(N+1) lands inside apply(N)'s drain
    // window, before retire(N).
    for &workers in &[1usize, 2, 4] {
        let trace = probe_pipelined(4, workers, 3);
        // Per batch: 4 stages + 1 seal + 4 applies + 1 retire.
        assert_eq!(trace.len(), 30, "workers={workers}: unexpected event count");
        let violations = check_order(&trace);
        assert!(
            violations.is_empty(),
            "workers={workers}: pipelined commit violated protocol order: \
             {violations:?}\ntrace: {trace:?}"
        );
        let second_seq = trace
            .iter()
            .map(OrderEvent::seq)
            .filter(|s| *s > trace[0].seq())
            .min()
            .expect("burst commits more than one sequence");
        let first_stage_n1 = trace
            .iter()
            .position(|e| matches!(e, OrderEvent::Stage { seq, .. } if *seq == second_seq))
            .expect("sequence N+1 stages");
        let retire_n = trace
            .iter()
            .position(|e| matches!(e, OrderEvent::Retire { seq } if *seq == second_seq - 1))
            .expect("sequence N retires");
        assert!(
            first_stage_n1 < retire_n,
            "workers={workers}: stage(N+1) should land inside apply(N)'s \
             drain window: {trace:?}"
        );
    }
}

#[test]
fn checker_rejects_pipelined_stage_before_prior_seal_forgery() {
    // Slide a genuine staged-ahead event back past the prior seal:
    // the sharpened invariant's first half must catch exactly this.
    let mut trace = probe_pipelined(2, 2, 2);
    assert!(check_order(&trace).is_empty());
    let second_seq = trace
        .iter()
        .map(OrderEvent::seq)
        .filter(|s| *s > trace[0].seq())
        .min()
        .expect("burst commits two sequences");
    let seal_n = trace
        .iter()
        .position(|e| matches!(e, OrderEvent::Seal { seq } if *seq == second_seq - 1))
        .expect("sequence N seals");
    let stage_n1 = trace
        .iter()
        .position(|e| matches!(e, OrderEvent::Stage { seq, .. } if *seq == second_seq))
        .expect("sequence N+1 stages");
    assert!(seal_n < stage_n1, "genuine trace stages N+1 after seal(N)");
    let ev = trace.remove(stage_n1);
    trace.insert(seal_n, ev); // now before seal(N)
    let violations = check_order(&trace);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            prosper_analysis::interleave::OrderViolation::StageBeforePriorSeal { .. }
        )),
        "checker accepted a stage-before-prior-seal forgery: {violations:?}"
    );
}

#[test]
fn checker_rejects_reordered_real_trace() {
    // Take a genuine trace and forge the one reordering the protocol
    // exists to prevent: a stage sliding past its seal. The shared
    // checker must reject the forgery — otherwise the conformance
    // test above would be vacuous.
    let mut trace = probe_commit(2, 2, 1);
    let seal = trace
        .iter()
        .position(|e| matches!(e, OrderEvent::Seal { .. }))
        .expect("trace has a seal");
    let stage = trace[..seal]
        .iter()
        .position(|e| matches!(e, OrderEvent::Stage { .. }))
        .expect("trace has a pre-seal stage");
    let ev = trace.remove(stage);
    trace.insert(seal, ev); // now after the seal
    let violations = check_order(&trace);
    assert!(
        !violations.is_empty(),
        "checker accepted a stage-after-seal forgery: {trace:?}"
    );
}
