//! The registered telemetry namespace.
//!
//! Every metric and span name the workspace emits outside test code is
//! declared here, once, with its instrument kind. The catalogue is the
//! ground truth for the `PA-TEL003` lint rule in `prosper-analysis`:
//! a string literal passed to `counter`/`gauge`/`histogram`/
//! `span_begin` that is not registered here — or is registered under a
//! different kind — fails the workspace lint. That makes typos
//! (`prosper.ckpt.interval` vs `prosper.ckpt.intervals`) and
//! kind collisions (one name used as both counter and histogram)
//! compile-adjacent errors instead of silently forked time series.
//!
//! Naming rules, enforced by this module's tests and re-checked by the
//! linter:
//!
//! * names are lowercase `[a-z0-9_.]`, dot-separated segments;
//! * every name lives under the `prosper.` namespace;
//! * a name is globally unique — it appears once, with one kind
//!   (spans and metrics share the one namespace).
//!
//! Span names form the checkpoint *phase taxonomy*: the same phase
//! name (for example [`SPAN_CKPT_SCAN`]) is deliberately emitted by
//! several mechanisms — the span's category label tells them apart —
//! so sharing a span name across call sites is allowed; inventing an
//! unregistered one is not.

/// What kind of instrument a registered name belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstrumentKind {
    /// Monotonic counter ([`crate::metrics::Counter`]).
    Counter,
    /// Point-in-time gauge ([`crate::metrics::Gauge`]).
    Gauge,
    /// Log-linear histogram ([`crate::metrics::Histogram`]).
    Histogram,
    /// Span name used with [`crate::span_begin`]/[`crate::span_end`].
    Span,
}

impl std::fmt::Display for InstrumentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Histogram => "histogram",
            InstrumentKind::Span => "span",
        })
    }
}

/// Checkpoint-phase span: tracker quiescence handshake.
pub const SPAN_CKPT_QUIESCE: &str = "prosper.ckpt.quiesce";
/// Checkpoint-phase span: dirty-metadata scan (bitmap inspection).
pub const SPAN_CKPT_SCAN: &str = "prosper.ckpt.scan";
/// Checkpoint-phase span: dirty-bitmap clear stores.
pub const SPAN_CKPT_CLEAR: &str = "prosper.ckpt.clear";
/// Checkpoint-phase span: dirty-byte copy into the staging buffer.
pub const SPAN_CKPT_COPY: &str = "prosper.ckpt.copy";
/// Checkpoint-phase span: staged runs applied to the persistent image.
pub const SPAN_CKPT_APPLY: &str = "prosper.ckpt.apply";
/// Whole checkpoint interval (outermost span).
pub const SPAN_CKPT_INTERVAL: &str = "prosper.ckpt.interval";
/// Stack-mechanism commit inside an interval.
pub const SPAN_CKPT_COMMIT_STACK: &str = "prosper.ckpt.commit.stack";
/// Heap-mechanism commit inside an interval.
pub const SPAN_CKPT_COMMIT_HEAP: &str = "prosper.ckpt.commit.heap";
/// Register-file checkpoint inside an interval.
pub const SPAN_CKPT_REGISTERS: &str = "prosper.ckpt.registers";

/// Every registered name with its kind, sorted by name.
pub const REGISTERED: &[(&str, InstrumentKind)] = &[
    (
        "prosper.alloc.double_frees_rejected",
        InstrumentKind::Counter,
    ),
    ("prosper.alloc.nvm_free_frames", InstrumentKind::Gauge),
    ("prosper.alloc.reservation_steals", InstrumentKind::Counter),
    ("prosper.alloc.subtree_persists", InstrumentKind::Counter),
    ("prosper.allocmodel.memo_hits", InstrumentKind::Counter),
    ("prosper.allocmodel.probe_events", InstrumentKind::Counter),
    ("prosper.allocmodel.probe_ops", InstrumentKind::Counter),
    ("prosper.allocmodel.schedules", InstrumentKind::Counter),
    ("prosper.ckpt.bitmap_pages_probed", InstrumentKind::Counter),
    ("prosper.ckpt.bitmap_words_cleared", InstrumentKind::Counter),
    ("prosper.ckpt.bitmap_words_read", InstrumentKind::Counter),
    ("prosper.ckpt.bytes", InstrumentKind::Counter),
    (SPAN_CKPT_APPLY, InstrumentKind::Span),
    (SPAN_CKPT_CLEAR, InstrumentKind::Span),
    (SPAN_CKPT_COMMIT_HEAP, InstrumentKind::Span),
    (SPAN_CKPT_COMMIT_STACK, InstrumentKind::Span),
    (SPAN_CKPT_INTERVAL, InstrumentKind::Span),
    ("prosper.ckpt.interval_cycles", InstrumentKind::Histogram),
    ("prosper.ckpt.intervals", InstrumentKind::Counter),
    ("prosper.ckpt.metadata_cycles", InstrumentKind::Histogram),
    ("prosper.ckpt.nvm_bytes_apply", InstrumentKind::Counter),
    ("prosper.ckpt.nvm_bytes_merge", InstrumentKind::Counter),
    ("prosper.ckpt.nvm_bytes_seal", InstrumentKind::Counter),
    ("prosper.ckpt.nvm_bytes_stage", InstrumentKind::Counter),
    ("prosper.ckpt.phase.apply_cycles", InstrumentKind::Histogram),
    ("prosper.ckpt.phase.clear_cycles", InstrumentKind::Histogram),
    (
        "prosper.ckpt.phase.inspect_cycles",
        InstrumentKind::Histogram,
    ),
    ("prosper.ckpt.phase.merge_cycles", InstrumentKind::Histogram),
    ("prosper.ckpt.phase.stage_cycles", InstrumentKind::Histogram),
    (SPAN_CKPT_QUIESCE, InstrumentKind::Span),
    (SPAN_CKPT_REGISTERS, InstrumentKind::Span),
    ("prosper.ckpt.runs", InstrumentKind::Counter),
    (SPAN_CKPT_SCAN, InstrumentKind::Span),
    (SPAN_CKPT_COPY, InstrumentKind::Span),
    ("prosper.commit.phase.apply_ns", InstrumentKind::Histogram),
    ("prosper.commit.phase.merge_ns", InstrumentKind::Histogram),
    ("prosper.commit.phase.seal_ns", InstrumentKind::Histogram),
    ("prosper.commit.phase.stage_ns", InstrumentKind::Histogram),
    (
        "prosper.commit.pipeline.burst_ns",
        InstrumentKind::Histogram,
    ),
    ("prosper.commit.workers", InstrumentKind::Gauge),
    ("prosper.crashmatrix.failures", InstrumentKind::Counter),
    ("prosper.crashmatrix.sites", InstrumentKind::Counter),
    ("prosper.crashmatrix.survived", InstrumentKind::Counter),
    ("prosper.fleet.ckpt_nvm_bytes", InstrumentKind::Counter),
    ("prosper.fleet.commits", InstrumentKind::Counter),
    ("prosper.fleet.deferred_commits", InstrumentKind::Counter),
    ("prosper.fleet.peak_to_mean_milli", InstrumentKind::Gauge),
    ("prosper.gemos.ckpt.bytes_copied", InstrumentKind::Counter),
    ("prosper.gemos.ckpt.cycles", InstrumentKind::Histogram),
    ("prosper.gemos.ckpt.intervals", InstrumentKind::Counter),
    ("prosper.gemos.run.heap_stores", InstrumentKind::Counter),
    ("prosper.gemos.run.stack_stores", InstrumentKind::Counter),
    ("prosper.mem.bulk_copy_bytes", InstrumentKind::Counter),
    ("prosper.mem.demand_load_cycles", InstrumentKind::Histogram),
    ("prosper.mem.demand_store_cycles", InstrumentKind::Histogram),
    ("prosper.mem.injected_ops", InstrumentKind::Counter),
    ("prosper.retune.granularity", InstrumentKind::Span),
    ("prosper.retune.watermarks", InstrumentKind::Span),
    ("prosper.slo.burn_rate_milli", InstrumentKind::Gauge),
    ("prosper.slo.p50_ns", InstrumentKind::Gauge),
    ("prosper.slo.p95_ns", InstrumentKind::Gauge),
    ("prosper.slo.p999_ns", InstrumentKind::Gauge),
    ("prosper.slo.p99_ns", InstrumentKind::Gauge),
    ("prosper.slo.violations", InstrumentKind::Counter),
    ("prosper.spine.batches", InstrumentKind::Gauge),
    ("prosper.spine.merged_bytes", InstrumentKind::Counter),
    ("prosper.spine.merges", InstrumentKind::Counter),
    ("prosper.stall.apply_ns", InstrumentKind::Counter),
    ("prosper.stall.backpressure_ns", InstrumentKind::Counter),
    ("prosper.stall.inspect_ns", InstrumentKind::Counter),
    ("prosper.stall.merge_ns", InstrumentKind::Counter),
    ("prosper.stall.quiesce_ns", InstrumentKind::Counter),
    ("prosper.stall.recovery_ns", InstrumentKind::Counter),
    ("prosper.stall.seal_ns", InstrumentKind::Counter),
    ("prosper.stall.segments", InstrumentKind::Counter),
    ("prosper.stall.stage_ns", InstrumentKind::Counter),
    ("prosper.stall.total_ns", InstrumentKind::Counter),
    ("prosper.stall.windows", InstrumentKind::Counter),
    ("prosper.table.bitmap_loads", InstrumentKind::Counter),
    ("prosper.table.bitmap_stores", InstrumentKind::Counter),
    (
        "prosper.table.flush.context_switch",
        InstrumentKind::Counter,
    ),
    ("prosper.table.flush.hwm", InstrumentKind::Counter),
    ("prosper.table.flush.interval", InstrumentKind::Counter),
    ("prosper.table.flush.lwm_eviction", InstrumentKind::Counter),
    (
        "prosper.table.flush.random_eviction",
        InstrumentKind::Counter,
    ),
    ("prosper.table.hits", InstrumentKind::Counter),
    ("prosper.table.searches", InstrumentKind::Counter),
    ("prosper.tax.reports", InstrumentKind::Counter),
    ("prosper.tax.stall_ns", InstrumentKind::Counter),
    ("prosper.tax.useful_ns", InstrumentKind::Counter),
    ("prosper.tracker.granularity", InstrumentKind::Gauge),
];

/// The kind `name` is registered under, if any.
pub fn lookup(name: &str) -> Option<InstrumentKind> {
    REGISTERED.iter().find(|(n, _)| *n == name).map(|(_, k)| *k)
}

/// Whether `name` is registered (under any kind).
pub fn is_registered(name: &str) -> bool {
    lookup(name).is_some()
}

/// Whether `name` is well-formed: lowercase `[a-z0-9_.]` segments
/// under the `prosper.` namespace, no empty segments.
pub fn is_well_formed(name: &str) -> bool {
    name.starts_with("prosper.")
        && !name.ends_with('.')
        && !name.contains("..")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_is_well_formed() {
        for (name, _) in REGISTERED {
            assert!(is_well_formed(name), "malformed telemetry name: {name}");
        }
    }

    #[test]
    fn names_are_globally_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for (name, kind) in REGISTERED {
            assert!(
                seen.insert(*name),
                "telemetry name registered twice: {name} (second kind: {kind})"
            );
        }
    }

    #[test]
    fn lookup_finds_kind() {
        assert_eq!(
            lookup("prosper.commit.workers"),
            Some(InstrumentKind::Gauge)
        );
        assert_eq!(lookup(SPAN_CKPT_QUIESCE), Some(InstrumentKind::Span));
        assert_eq!(
            lookup("prosper.stall.quiesce_ns"),
            Some(InstrumentKind::Counter)
        );
        assert_eq!(lookup("prosper.slo.p999_ns"), Some(InstrumentKind::Gauge));
        assert_eq!(
            lookup("prosper.tax.useful_ns"),
            Some(InstrumentKind::Counter)
        );
        assert_eq!(lookup("prosper.not.a.metric"), None);
        assert!(!is_registered("ckpt.intervals"), "legacy name retired");
    }

    #[test]
    fn malformed_names_rejected() {
        for bad in [
            "ckpt.intervals",          // missing namespace
            "prosper.Ckpt.intervals",  // uppercase
            "prosper.ckpt..intervals", // empty segment
            "prosper.ckpt.intervals.", // trailing dot
            "prosper.ckpt intervals",  // space
        ] {
            assert!(!is_well_formed(bad), "{bad} should be malformed");
        }
    }
}
