//! Pluggable destinations for trace events, plus the Chrome
//! `trace_event` exporter consumed by Perfetto / `chrome://tracing`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::rc::Rc;

use serde::Serialize;
use serde_json::Value;

use crate::span::Event;

/// Receives every emitted event. Implementations must not panic on
/// I/O trouble — telemetry must never take the simulation down.
pub trait EventSink {
    fn record(&mut self, ev: &Event);

    fn flush(&mut self) {}
}

/// Discards everything. The disabled-telemetry fast path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline]
    fn record(&mut self, _ev: &Event) {}
}

/// Shared view onto a [`RingBufferSink`]'s storage, for tests and
/// post-run export.
#[derive(Clone)]
pub struct RingBufferHandle {
    buf: Rc<RefCell<VecDeque<Event>>>,
}

impl RingBufferHandle {
    /// Drains and returns everything recorded so far, oldest first.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        self.buf.borrow_mut().drain(..).collect()
    }

    /// Copies out the recorded events without draining.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.buf.borrow().iter().cloned().collect()
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }
}

/// Keeps the most recent `capacity` events in memory.
pub struct RingBufferSink {
    buf: Rc<RefCell<VecDeque<Event>>>,
    capacity: usize,
}

impl RingBufferSink {
    /// Returns the sink plus a handle that stays valid after the sink
    /// is boxed into a [`crate::span::Telemetry`].
    #[must_use]
    pub fn new(capacity: usize) -> (Self, RingBufferHandle) {
        let buf = Rc::new(RefCell::new(VecDeque::with_capacity(capacity.min(4096))));
        (
            RingBufferSink {
                buf: buf.clone(),
                capacity,
            },
            RingBufferHandle { buf },
        )
    }
}

impl EventSink for RingBufferSink {
    fn record(&mut self, ev: &Event) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

/// Streams one JSON object per line to a writer. Write errors are
/// counted, not propagated.
pub struct JsonlSink<W: Write> {
    writer: W,
    pub write_errors: u64,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            write_errors: 0,
        }
    }

    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, ev: &Event) {
        let line = serde_json::to_string(ev).expect("event serialization is infallible");
        if writeln!(self.writer, "{line}").is_err() {
            self.write_errors += 1;
        }
    }

    fn flush(&mut self) {
        if self.writer.flush().is_err() {
            self.write_errors += 1;
        }
    }
}

/// Parses a JSONL stream back into events, ignoring blank lines.
///
/// # Errors
///
/// Fails on the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Renders events as a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`), using duration begin/end pairs so
/// nesting survives. Timestamps are simulated cycles reported in the
/// `ts` microsecond field (1 cycle = 1 µs on the trace timeline).
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    let entries: Vec<Value> = events
        .iter()
        .map(|ev| {
            let (ph, name, cat, ts, tid) = match ev {
                Event::SpanBegin {
                    name, cat, ts, tid, ..
                } => ("B", name.clone(), cat.clone(), *ts, *tid),
                Event::SpanEnd { name, ts, tid, .. } => {
                    ("E", name.clone(), String::new(), *ts, *tid)
                }
                Event::Instant { name, ts, tid } => ("i", name.clone(), String::new(), *ts, *tid),
            };
            let mut fields = vec![
                ("name".to_string(), name.to_value()),
                ("ph".to_string(), ph.to_value()),
                ("ts".to_string(), ts.to_value()),
                ("pid".to_string(), 1u32.to_value()),
                ("tid".to_string(), tid.to_value()),
            ];
            if !cat.is_empty() {
                fields.push(("cat".to_string(), cat.to_value()));
            }
            if ph == "i" {
                // Thread-scoped instant marker.
                fields.push(("s".to_string(), "t".to_value()));
            }
            Value::Object(fields)
        })
        .collect();
    let doc = Value::Object(vec![("traceEvents".to_string(), Value::Array(entries))]);
    serde_json::to_string(&doc).expect("value tree serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::SpanBegin {
                name: "ckpt.interval".into(),
                cat: "ckpt".into(),
                ts: 100,
                tid: 0,
                depth: 0,
            },
            Event::Instant {
                name: "hwm".into(),
                ts: 150,
                tid: 0,
            },
            Event::SpanEnd {
                name: "ckpt.interval".into(),
                ts: 300,
                tid: 0,
                depth: 0,
            },
        ]
    }

    #[test]
    fn ring_buffer_caps_and_drains() {
        let (mut sink, handle) = RingBufferSink::new(2);
        for ev in sample_events() {
            sink.record(&ev);
        }
        assert_eq!(handle.len(), 2, "oldest event evicted at capacity");
        let evs = handle.take();
        assert_eq!(evs[0].name(), "hwm");
        assert!(handle.is_empty());
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut sink = JsonlSink::new(Vec::new());
        let original = sample_events();
        for ev in &original {
            sink.record(ev);
        }
        sink.flush();
        assert_eq!(sink.write_errors, 0);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace(&sample_events());
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["ph"].as_str(), Some("B"));
        assert_eq!(events[0]["cat"].as_str(), Some("ckpt"));
        assert_eq!(events[0]["ts"].as_u64(), Some(100));
        assert_eq!(events[1]["ph"].as_str(), Some("i"));
        assert_eq!(events[2]["ph"].as_str(), Some("E"));
        assert_eq!(events[2]["pid"].as_u64(), Some(1));
    }
}
