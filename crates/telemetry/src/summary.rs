//! Human- and machine-readable renderings of a metrics snapshot:
//! Prometheus-style exposition text and a JSON document.

use crate::metrics::MetricsSnapshot;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Prometheus text exposition of every metric in the snapshot.
/// Histograms render as cumulative `_bucket{le=...}` series plus
/// `_sum` and `_count`, counters and gauges as plain samples.
#[must_use]
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for &(lower, count) in &h.buckets {
            cumulative += count;
            out.push_str(&format!("{n}_bucket{{le=\"{lower}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

/// JSON rendering of the snapshot (2-space indented).
#[must_use]
pub fn json_summary(snap: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snap).expect("snapshot serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("tracker.soi_stores").add(42);
        r.gauge("table.resident").set(7);
        let h = r.histogram("ckpt.copy_cycles");
        h.record(3);
        h.record(100);
        r.snapshot()
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE tracker_soi_stores counter\ntracker_soi_stores 42\n"));
        assert!(text.contains("# TYPE table_resident gauge\ntable_resident 7\n"));
        assert!(text.contains("# TYPE ckpt_copy_cycles histogram\n"));
        assert!(text.contains("ckpt_copy_cycles_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("ckpt_copy_cycles_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("ckpt_copy_cycles_sum 103\n"));
        assert!(text.contains("ckpt_copy_cycles_count 2\n"));
    }

    #[test]
    fn json_summary_roundtrip() {
        let snap = sample();
        let json = json_summary(&snap);
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
