//! Human- and machine-readable renderings of a metrics snapshot:
//! Prometheus-style exposition text and a JSON document.

use std::collections::BTreeMap;

use crate::metrics::MetricsSnapshot;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Injective per-snapshot name mapping. `sanitize` alone is lossy —
/// `prosper.commit` and `prosper_commit` both render as
/// `prosper_commit`, silently folding two series into one — so the
/// exposition builds one mapping per snapshot and disambiguates
/// collisions deterministically: the first name (in counters → gauges
/// → histograms order, BTreeMap-sorted within each) keeps the plain
/// sanitized form, later colliders get `_dup2`, `_dup3`, ... suffixes
/// (skipping any suffix that is itself taken). The rendered text
/// flags every renamed series with a `# WARNING` comment so the
/// collision is visible, not silent.
fn sanitized_names<'a>(names: impl Iterator<Item = &'a str>) -> BTreeMap<&'a str, String> {
    let mut taken: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut out = BTreeMap::new();
    for name in names {
        let base = sanitize(name);
        let mut candidate = base.clone();
        let mut n = 1usize;
        while !taken.insert(candidate.clone()) {
            n += 1;
            candidate = format!("{base}_dup{n}");
        }
        out.insert(name, candidate);
    }
    out
}

/// Prometheus text exposition of every metric in the snapshot.
/// Histograms render as cumulative `_bucket{le=...}` series plus
/// `_sum` and `_count`, counters and gauges as plain samples.
/// Sanitized-name collisions are detected and disambiguated (see
/// [`sanitized_names`]); the output never folds two metrics into one
/// series.
#[must_use]
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let names = sanitized_names(
        snap.counters
            .keys()
            .chain(snap.gauges.keys())
            .chain(snap.histograms.keys())
            .map(String::as_str),
    );
    let warn = |out: &mut String, name: &str, rendered: &str| {
        if rendered != sanitize(name) {
            out.push_str(&format!(
                "# WARNING metric name collision: {name} rendered as {rendered}\n"
            ));
        }
    };
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = &names[name.as_str()];
        warn(&mut out, name, n);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = &names[name.as_str()];
        warn(&mut out, name, n);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = &names[name.as_str()];
        warn(&mut out, name, n);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for &(lower, count) in &h.buckets {
            cumulative += count;
            out.push_str(&format!("{n}_bucket{{le=\"{lower}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

/// JSON rendering of the snapshot (2-space indented).
#[must_use]
pub fn json_summary(snap: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snap).expect("snapshot serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("tracker.soi_stores").add(42);
        r.gauge("table.resident").set(7);
        let h = r.histogram("ckpt.copy_cycles");
        h.record(3);
        h.record(100);
        r.snapshot()
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE tracker_soi_stores counter\ntracker_soi_stores 42\n"));
        assert!(text.contains("# TYPE table_resident gauge\ntable_resident 7\n"));
        assert!(text.contains("# TYPE ckpt_copy_cycles histogram\n"));
        assert!(text.contains("ckpt_copy_cycles_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("ckpt_copy_cycles_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("ckpt_copy_cycles_sum 103\n"));
        assert!(text.contains("ckpt_copy_cycles_count 2\n"));
    }

    #[test]
    fn colliding_names_render_as_distinct_series() {
        // `prosper.commit` and `prosper_commit` sanitize identically;
        // the regression this guards is both rendering as ONE series.
        let r = Registry::new();
        r.counter("prosper.commit").add(1);
        r.counter("prosper_commit").add(2);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("\nprosper_commit 1\n"), "{text}");
        assert!(text.contains("\nprosper_commit_dup2 2\n"), "{text}");
        assert!(
            text.contains("# WARNING metric name collision: prosper_commit"),
            "collision must be flagged, not silent: {text}"
        );
        // Exactly one TYPE line per series, two series total.
        assert_eq!(text.matches("# TYPE ").count(), 2);
    }

    #[test]
    fn collisions_across_instrument_kinds_are_detected() {
        // Same sanitized name used by a counter and a histogram: the
        // histogram's derived _sum/_count/_bucket series must not
        // shadow or merge with the counter sample.
        let r = Registry::new();
        r.counter("prosper.stall").add(9);
        r.histogram("prosper_stall").record(5);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE prosper_stall counter\nprosper_stall 9\n"));
        assert!(text.contains("# TYPE prosper_stall_dup2 histogram\n"));
        assert!(text.contains("prosper_stall_dup2_count 1\n"));
    }

    #[test]
    fn disambiguation_is_deterministic_and_skips_taken_suffixes() {
        let r = Registry::new();
        r.counter("a.b").add(1);
        r.counter("a_b").add(2);
        r.counter("a_b_dup2").add(3); // already occupies the suffix
        let text = prometheus_text(&r.snapshot());
        let text2 = prometheus_text(&r.snapshot());
        assert_eq!(text, text2, "rendering is deterministic");
        assert!(text.contains("\na_b 1\n"));
        assert!(text.contains("\na_b_dup2 3\n") || text.contains("\na_b_dup2 2\n"));
        // All three values survive as three distinct series.
        let series: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        let unique: std::collections::BTreeSet<&str> = series.iter().copied().collect();
        assert_eq!(unique.len(), 3, "{series:?}");
    }

    #[test]
    fn registered_namespace_is_collision_free() {
        // Our own catalogue must never need disambiguation: sanitized
        // registered names are pairwise distinct.
        let mut seen = BTreeMap::new();
        for (name, _) in crate::names::REGISTERED {
            if let Some(prev) = seen.insert(sanitize(name), *name) {
                panic!("registered names {prev} and {name} collide after sanitize");
            }
        }
    }

    #[test]
    fn json_summary_roundtrip() {
        let snap = sample();
        let json = json_summary(&snap);
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
