//! Unified telemetry for the Prosper reproduction: a metrics registry
//! (counters, gauges, log-linear histograms), structured span/event
//! tracing with pluggable sinks, and exporters (Prometheus-style text,
//! JSON summary, Chrome `trace_event` for Perfetto).
//!
//! The hot-path contract: with no context installed — or with the
//! `enabled` feature compiled out — every instrumentation call is a
//! thread-local boolean load and a predictable branch. Simulator code
//! keeps its own plain counters on per-store paths and reports into
//! telemetry only at interval boundaries.

#![forbid(unsafe_code)]
pub mod attribution;
pub mod metrics;
pub mod names;
pub mod sink;
pub mod span;
pub mod summary;
pub mod time;

pub use attribution::{
    report_to_registry, slo_to_registry, AttributionSnapshot, ClockMode, ConservationError,
    SloReport, SloThreadStats, SloTracker, StallAccountant, StallCause, StallGuard, StallSegment,
    StallWindow, ThreadStallTotals,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use sink::{chrome_trace, parse_jsonl, EventSink, JsonlSink, NoopSink, RingBufferSink};
pub use span::{
    enabled, install, instant, set_tid, span_begin, span_end, uninstall, with, Event, Telemetry,
};
pub use summary::{json_summary, prometheus_text};
pub use time::Stopwatch;
