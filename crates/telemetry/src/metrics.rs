//! Metrics registry: named counters, gauges, and log-linear
//! histograms.
//!
//! Handles are `Arc<Atomic*>` — incrementing one is a single relaxed
//! atomic op with no lock. The registry's mutex is taken only on
//! registration and snapshotting, both off the hot path. Snapshots
//! subtract (`Sub`) with saturating semantics, matching the
//! `MemStats` interval-diffing idiom used across the simulator.

use std::collections::BTreeMap;
use std::ops::Sub;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Monotonic event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time signed level (queue depths, resident entries, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two decade.
const LINEAR_SUB: usize = 4;
/// Values below this get one exact bucket each.
const EXACT_LIMIT: u64 = LINEAR_SUB as u64;
/// Enough buckets for the full u64 range: 4 exact + 62 decades × 4.
pub const HISTOGRAM_BUCKETS: usize = 4 + 62 * LINEAR_SUB;

/// Maps a value to its log-linear bucket: exact below 4, then four
/// linear sub-buckets per doubling (relative error ≤ 25%).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 2
        let sub = ((v >> (msb - 2)) & 0x3) as usize;
        4 + (msb - 2) * LINEAR_SUB + sub
    }
}

/// Inclusive lower bound of a bucket, inverse of [`bucket_index`].
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < EXACT_LIMIT as usize {
        index as u64
    } else {
        let msb = 2 + (index - 4) / LINEAR_SUB;
        let sub = ((index - 4) % LINEAR_SUB) as u64;
        (1u64 << msb) + (sub << (msb - 2))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Log-linear latency/size distribution.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        let core = &*self.0;
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.min.fetch_min(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
            buckets: core
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }
}

/// Frozen view of one histogram: `(bucket_lower_bound, count)` pairs
/// for non-empty buckets only.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Union of two snapshots, the per-shard aggregation primitive:
    /// bucket counts add pairwise by lower bound, `count` and `sum`
    /// saturate, `min`/`max` take the tighter envelope. Because both
    /// sides use the same log-linear bucket layout, merging shard
    /// snapshots is exactly equivalent to having recorded every value
    /// into one histogram — quantiles are stable under sharding.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(lower, n) in &other.buckets {
            let slot = buckets.entry(lower).or_insert(0);
            *slot = slot.saturating_add(n);
        }
        HistogramSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            min: match (self.count, other.count) {
                (0, _) => other.min,
                (_, 0) => self.min,
                _ => self.min.min(other.min),
            },
            max: self.max.max(other.max),
            buckets: buckets.into_iter().filter(|&(_, n)| n > 0).collect(),
        }
    }

    /// Lower bound of the bucket containing the q-quantile
    /// (`0.0 ..= 1.0`).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for &(lower, n) in &self.buckets {
            seen += n;
            if seen >= target.max(1) {
                return lower;
            }
        }
        self.max
    }
}

impl Sub for HistogramSnapshot {
    type Output = HistogramSnapshot;

    /// Interval delta: later minus earlier, saturating. Bucket counts
    /// subtract pairwise by lower bound; min/max are taken from the
    /// later snapshot (they are not recoverable for an interval).
    fn sub(self, earlier: HistogramSnapshot) -> HistogramSnapshot {
        let before: BTreeMap<u64, u64> = earlier.buckets.into_iter().collect();
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .into_iter()
            .filter_map(|(lower, n)| {
                let delta = n.saturating_sub(before.get(&lower).copied().unwrap_or(0));
                (delta > 0).then_some((lower, delta))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Name → metric handle map. Cloning a handle out of the registry is
/// the intended usage: resolve once at construction, increment
/// lock-free afterwards.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Freezes every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Frozen view of a whole registry; `Sub` yields the interval delta.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Sub for MetricsSnapshot {
    type Output = MetricsSnapshot;

    /// Later minus earlier, saturating. Gauges keep the later level
    /// (a level, not a rate). Metrics absent from `earlier` pass
    /// through unchanged.
    fn sub(self, earlier: MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .into_iter()
                .map(|(k, v)| {
                    let before = earlier.counters.get(&k).copied().unwrap_or(0);
                    (k, v.saturating_sub(before))
                })
                .collect(),
            gauges: self.gauges,
            histograms: self
                .histograms
                .into_iter()
                .map(|(k, v)| {
                    let before = earlier.histograms.get(&k).cloned().unwrap_or_default();
                    (k, v - before)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        // Exact buckets.
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // Every power of two starts a decade's first sub-bucket.
        for msb in 2..63usize {
            let v = 1u64 << msb;
            let i = bucket_index(v);
            assert_eq!(bucket_lower_bound(i), v, "2^{msb}");
            // One below the power of two lands in the previous bucket.
            assert_eq!(i, bucket_index(v - 1) + 1, "2^{msb} - 1");
        }
        // Monotone, and lower bound never exceeds the value.
        let mut prev = 0;
        for v in [0, 1, 3, 4, 5, 7, 8, 100, 1000, u32::MAX as u64, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= prev, "monotone at {v}");
            assert!(bucket_lower_bound(i) <= v, "lower bound at {v}");
            assert!(i < HISTOGRAM_BUCKETS);
            prev = i;
        }
        // Relative error bound: bucket width is 2^(msb-2), i.e. 25%.
        for v in [5u64, 9, 17, 100, 12345, 1 << 40] {
            let lower = bucket_lower_bound(bucket_index(v));
            assert!((v - lower) as f64 <= v as f64 * 0.25, "error at {v}");
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // p50 bucket lower bound must be within 25% below 50.
        let p50 = s.quantile(0.5);
        assert!((38..=50).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(1.0) <= 100);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_sub_saturates() {
        let h = Histogram::default();
        h.record(10);
        h.record(10);
        let early = h.snapshot();
        h.record(10);
        h.record(1 << 20);
        let late = h.snapshot();
        let delta = late.clone() - early.clone();
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 10 + (1 << 20));
        let lower10 = bucket_lower_bound(bucket_index(10));
        assert!(delta.buckets.contains(&(lower10, 1)));
        // Reversed subtraction saturates to zero rather than panicking.
        let reversed = early - late;
        assert_eq!(reversed.count, 0);
        assert_eq!(reversed.sum, 0);
        assert!(reversed.buckets.is_empty());
    }

    #[test]
    fn merge_aligns_buckets_by_lower_bound() {
        let a = Histogram::default();
        a.record(10);
        a.record(10);
        let b = Histogram::default();
        b.record(10);
        b.record(1000);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 1030);
        assert_eq!((merged.min, merged.max), (10, 1000));
        let lower10 = bucket_lower_bound(bucket_index(10));
        let lower1000 = bucket_lower_bound(bucket_index(1000));
        // Shared bucket collapses to one entry with the summed count.
        assert!(merged.buckets.contains(&(lower10, 3)));
        assert!(merged.buckets.contains(&(lower1000, 1)));
        assert_eq!(merged.buckets.len(), 2);
        // Bucket list stays sorted by lower bound.
        assert!(merged.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn merge_saturates_sum_and_count() {
        let a = HistogramSnapshot {
            count: u64::MAX - 1,
            sum: u64::MAX - 5,
            min: 1,
            max: 9,
            buckets: vec![(1, u64::MAX - 1)],
        };
        let b = HistogramSnapshot {
            count: 10,
            sum: 100,
            min: 2,
            max: 4,
            buckets: vec![(1, 10)],
        };
        let merged = a.merge(&b);
        assert_eq!(merged.sum, u64::MAX, "sum saturates");
        assert_eq!(merged.count, u64::MAX, "count saturates");
        assert_eq!(
            merged.buckets,
            vec![(1, u64::MAX)],
            "bucket counts saturate"
        );
        assert_eq!((merged.min, merged.max), (1, 9));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::default();
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.merge(&HistogramSnapshot::default()), s);
        assert_eq!(HistogramSnapshot::default().merge(&s), s);
        // min must come from the non-empty side, not the empty
        // snapshot's 0 placeholder.
        assert_eq!(HistogramSnapshot::default().merge(&s).min, 42);
    }

    #[test]
    fn merged_quantiles_match_single_stream() {
        // Record one stream whole, and the same stream split across
        // four shards; every quantile must agree exactly.
        let whole = Histogram::default();
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::default()).collect();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..4000u64 {
            // Cheap deterministic value spread over several decades.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 100_000;
            whole.record(v);
            shards[(i % 4) as usize].record(v);
        }
        let merged = shards
            .iter()
            .map(Histogram::snapshot)
            .fold(HistogramSnapshot::default(), |acc, s| acc.merge(&s));
        let single = whole.snapshot();
        assert_eq!(merged, single, "sharded merge equals single-stream");
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), single.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn registry_handles_and_delta() {
        let r = Registry::new();
        let c = r.counter("stores");
        c.add(5);
        r.counter("stores").inc(); // same underlying cell
        assert_eq!(r.counter("stores").get(), 6);
        r.gauge("depth").set(3);
        r.histogram("lat").record(7);

        let early = r.snapshot();
        c.add(4);
        r.gauge("depth").set(1);
        r.histogram("lat").record(9);
        let delta = r.snapshot() - early;
        assert_eq!(delta.counters["stores"], 4);
        assert_eq!(delta.gauges["depth"], 1, "gauges keep the later level");
        assert_eq!(delta.histograms["lat"].count, 1);
    }
}
