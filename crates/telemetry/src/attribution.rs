//! Causal stall attribution: who paid for every nanosecond of
//! foreground delay, and why.
//!
//! The per-phase histograms from the metrics registry say *how long*
//! checkpointing took; they never say *which thread* was stalled, by
//! *which phase*, in *which commit sequence*. This module closes that
//! gap with an explicit ledger:
//!
//! * a [`StallSegment`] is one cause-tagged interval of delay charged
//!   to one thread (`tid`, [`StallCause`], commit `sequence`,
//!   `[start_ns, end_ns)`);
//! * a [`StallWindow`] is one independently-measured interval in which
//!   a thread was *known to be stalled*, with no cause attached;
//! * the [`StallAccountant`] collects both from instrumented probe
//!   sites and freezes them into an [`AttributionSnapshot`].
//!
//! The load-bearing invariant is **conservation**, checked by
//! [`AttributionSnapshot::verify_conservation`]: for every thread, the
//! cause-tagged segments must *exactly tile* the measured windows —
//! same total, no gaps, no overlaps, nothing outside a window. Because
//! every probe site records the window and its segments from the same
//! clock readings, the phase boundaries telescope and the check is
//! exact, not approximate: an uninstrumented phase inside a stall
//! window shows up as a gap and fails the check, so the tax report is
//! provably complete rather than vibes.
//!
//! # Clock domains
//!
//! The accountant owns a single monotone time axis in one of two
//! modes:
//!
//! * [`ClockMode::Virtual`] — a deterministic counter advanced only by
//!   [`StallAccountant::advance`]. Simulator probe sites advance it by
//!   simulated-cycle deltas (1 cycle = 1 virtual ns); the parallel
//!   commit path advances it from a deterministic cost model computed
//!   on the coordinator, so virtual timelines are byte-reproducible
//!   and still sensitive to worker count.
//! * [`ClockMode::Wall`] — host time through the one sanctioned
//!   wall-clock site ([`crate::Stopwatch`]); `advance` is a no-op.
//!   Requires an installed telemetry context to actually read the
//!   clock (otherwise every timestamp is zero and the ledger is
//!   trivially conserved).
//!
//! Probe sites never mix domains: one accountant, one axis.
//!
//! Like the rest of the crate, the accountant must never take the
//! simulation down: lock poisoning degrades to dropped records, never
//! a panic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::metrics::{Histogram, HistogramSnapshot};

/// Why a thread was stalled. The taxonomy mirrors the checkpoint-tax
/// split reported by `prosper-obs`: everything that is not one of
/// these causes is, by definition, useful foreground work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StallCause {
    /// Dirty-metadata inspection (bitmap scan + clear).
    Inspect,
    /// Staging dirty data into the redo log.
    Stage,
    /// The serial seal point: the single durable commit-record write.
    Seal,
    /// Applying staged runs to the persistent image.
    Apply,
    /// Tracker quiescence handshake (MSR write + flush + poll).
    Quiesce,
    /// Deferred spine-merge compaction: folding delta batches into
    /// the persistent image, off the commit critical path.
    Merge,
    /// Redo replay after a crash.
    Recovery,
    /// Fleet-scale global backpressure: a shard's commit deferred
    /// because staging-buffer occupancy crossed the high-water mark.
    /// The tenant is ready to checkpoint but the orchestrator holds
    /// it back to protect NVM bandwidth.
    Backpressure,
}

impl StallCause {
    /// Every cause, in tax-report column order.
    pub const ALL: [StallCause; 8] = [
        StallCause::Inspect,
        StallCause::Stage,
        StallCause::Seal,
        StallCause::Apply,
        StallCause::Quiesce,
        StallCause::Merge,
        StallCause::Recovery,
        StallCause::Backpressure,
    ];

    /// Stable lowercase label (`"stage"`, `"quiesce"`, ...).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StallCause::Inspect => "inspect",
            StallCause::Stage => "stage",
            StallCause::Seal => "seal",
            StallCause::Apply => "apply",
            StallCause::Quiesce => "quiesce",
            StallCause::Merge => "merge",
            StallCause::Recovery => "recovery",
            StallCause::Backpressure => "backpressure",
        }
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One cause-tagged interval of delay charged to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallSegment {
    pub tid: u32,
    pub cause: StallCause,
    /// Commit sequence the stall belongs to; 0 when the stall is not
    /// tied to a commit (quiescence on a context switch, recovery of
    /// an unsealed image).
    pub sequence: u64,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl StallSegment {
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One independently-measured interval in which a thread was stalled,
/// with no cause attached. Windows are the "total" side of the
/// conservation ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallWindow {
    pub tid: u32,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl StallWindow {
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Where the accountant's time axis comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Deterministic counter advanced by [`StallAccountant::advance`].
    Virtual,
    /// Host time via [`crate::Stopwatch`]; `advance` is a no-op.
    Wall,
}

#[derive(Debug, Default)]
struct Ledger {
    segments: Vec<StallSegment>,
    windows: Vec<StallWindow>,
}

/// Collects stall segments and windows from probe sites. `Sync` by
/// design: the parallel commit path shares it across scoped workers
/// the same way it shares a `CommitProbe`.
#[derive(Debug)]
pub struct StallAccountant {
    mode: ClockMode,
    virtual_ns: AtomicU64,
    wall: crate::Stopwatch,
    ledger: Mutex<Ledger>,
}

impl StallAccountant {
    /// Deterministic accountant: time advances only via
    /// [`StallAccountant::advance`].
    #[must_use]
    pub fn new_virtual() -> Self {
        StallAccountant {
            mode: ClockMode::Virtual,
            virtual_ns: AtomicU64::new(0),
            wall: crate::Stopwatch::start(),
            ledger: Mutex::new(Ledger::default()),
        }
    }

    /// Wall-clock accountant; timestamps are host ns since creation.
    #[must_use]
    pub fn new_wall() -> Self {
        StallAccountant {
            mode: ClockMode::Wall,
            virtual_ns: AtomicU64::new(0),
            wall: crate::Stopwatch::start(),
            ledger: Mutex::new(Ledger::default()),
        }
    }

    #[must_use]
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Current position on the accountant's time axis.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        match self.mode {
            ClockMode::Virtual => self.virtual_ns.load(Ordering::Relaxed),
            ClockMode::Wall => self.wall.elapsed_ns(),
        }
    }

    /// Advances the virtual clock by `ns` (no-op under wall clock).
    /// Probe sites in simulator code call this with simulated-cycle
    /// deltas; the parallel commit path calls it with modelled costs.
    pub fn advance(&self, ns: u64) {
        if self.mode == ClockMode::Virtual {
            self.virtual_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Records one cause-tagged segment. Inverted intervals are
    /// clamped to zero length rather than rejected — telemetry never
    /// panics the caller.
    pub fn record_segment(
        &self,
        tid: u32,
        cause: StallCause,
        sequence: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        let end_ns = end_ns.max(start_ns);
        if let Ok(mut ledger) = self.ledger.lock() {
            ledger.segments.push(StallSegment {
                tid,
                cause,
                sequence,
                start_ns,
                end_ns,
            });
        }
    }

    /// Records one measured stall window.
    pub fn record_window(&self, tid: u32, start_ns: u64, end_ns: u64) {
        let end_ns = end_ns.max(start_ns);
        if let Ok(mut ledger) = self.ledger.lock() {
            ledger.windows.push(StallWindow {
                tid,
                start_ns,
                end_ns,
            });
        }
    }

    /// RAII probe for a single-cause stall: captures `now_ns` at
    /// creation and, on drop (or [`StallGuard::finish`]), records a
    /// segment *and* a matching window — the common shape for
    /// quiescence handshakes and recovery replay, where the whole
    /// measured stall has one cause.
    #[must_use]
    pub fn stall(&self, tid: u32, cause: StallCause, sequence: u64) -> StallGuard<'_> {
        StallGuard {
            acct: self,
            tid,
            cause,
            sequence,
            start_ns: self.now_ns(),
            armed: true,
        }
    }

    /// Freezes the ledger. Segments and windows are sorted by
    /// `(tid, start, end)` so equal histories snapshot identically
    /// regardless of probe arrival order.
    #[must_use]
    pub fn snapshot(&self) -> AttributionSnapshot {
        let (mut segments, mut windows) = match self.ledger.lock() {
            Ok(ledger) => (ledger.segments.clone(), ledger.windows.clone()),
            Err(_) => (Vec::new(), Vec::new()),
        };
        segments.sort_by_key(|s| (s.tid, s.start_ns, s.end_ns, s.cause));
        windows.sort_by_key(|w| (w.tid, w.start_ns, w.end_ns));
        AttributionSnapshot { segments, windows }
    }
}

/// See [`StallAccountant::stall`].
pub struct StallGuard<'a> {
    acct: &'a StallAccountant,
    tid: u32,
    cause: StallCause,
    sequence: u64,
    start_ns: u64,
    armed: bool,
}

impl StallGuard<'_> {
    /// Ends the stall now, recording segment + window explicitly.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.armed {
            self.armed = false;
            let end = self.acct.now_ns();
            self.acct
                .record_segment(self.tid, self.cause, self.sequence, self.start_ns, end);
            self.acct.record_window(self.tid, self.start_ns, end);
        }
    }
}

impl Drop for StallGuard<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

/// Frozen attribution ledger; serializable for archiving alongside a
/// metrics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributionSnapshot {
    pub segments: Vec<StallSegment>,
    pub windows: Vec<StallWindow>,
}

/// Conservation violation: the cause-tagged segments of one thread do
/// not exactly tile its measured windows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConservationError {
    pub tid: u32,
    /// Total measured window ns for the thread.
    pub window_ns: u64,
    /// Total attributed segment ns for the thread.
    pub attributed_ns: u64,
    pub detail: String,
}

impl std::fmt::Display for ConservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conservation violated for tid {}: attributed {} ns vs measured {} ns ({})",
            self.tid, self.attributed_ns, self.window_ns, self.detail
        )
    }
}

impl std::error::Error for ConservationError {}

/// Per-thread totals derived from a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStallTotals {
    /// Total attributed ns per cause label (tax-report columns).
    pub by_cause: BTreeMap<String, u64>,
    /// Total attributed ns (sum of `by_cause`).
    pub attributed_ns: u64,
    /// Total measured stall ns (sum of window durations).
    pub window_ns: u64,
    pub segments: u64,
    pub windows: u64,
}

impl AttributionSnapshot {
    /// Per-thread cause totals, keyed by tid.
    #[must_use]
    pub fn per_thread(&self) -> BTreeMap<u32, ThreadStallTotals> {
        let mut out: BTreeMap<u32, ThreadStallTotals> = BTreeMap::new();
        for seg in &self.segments {
            let t = out.entry(seg.tid).or_default();
            *t.by_cause
                .entry(seg.cause.as_str().to_string())
                .or_insert(0) += seg.duration_ns();
            t.attributed_ns += seg.duration_ns();
            t.segments += 1;
        }
        for win in &self.windows {
            let t = out.entry(win.tid).or_default();
            t.window_ns += win.duration_ns();
            t.windows += 1;
        }
        out
    }

    /// Sum of attributed ns for one cause across all threads.
    #[must_use]
    pub fn cause_total_ns(&self, cause: StallCause) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.cause == cause)
            .map(StallSegment::duration_ns)
            .sum()
    }

    /// Verifies the conservation invariant: for every thread the
    /// segments exactly tile the windows — windows are disjoint,
    /// every segment lies inside a window, segments within a window
    /// are contiguous from its start to its end. This is strictly
    /// stronger than "sums match": a gap and an overlap that cancel
    /// still fail.
    ///
    /// # Errors
    ///
    /// Returns the first per-thread violation found (threads checked
    /// in tid order).
    pub fn verify_conservation(&self) -> Result<(), ConservationError> {
        let mut segs: BTreeMap<u32, Vec<&StallSegment>> = BTreeMap::new();
        for s in &self.segments {
            segs.entry(s.tid).or_default().push(s);
        }
        let mut wins: BTreeMap<u32, Vec<&StallWindow>> = BTreeMap::new();
        for w in &self.windows {
            wins.entry(w.tid).or_default().push(w);
        }
        let tids: std::collections::BTreeSet<u32> =
            segs.keys().chain(wins.keys()).copied().collect();
        for tid in tids {
            let mut segments: Vec<&StallSegment> =
                segs.get(&tid).map(|v| v.as_slice()).unwrap_or(&[]).to_vec();
            segments.sort_by_key(|s| (s.start_ns, s.end_ns));
            let mut windows: Vec<&StallWindow> =
                wins.get(&tid).map(|v| v.as_slice()).unwrap_or(&[]).to_vec();
            windows.sort_by_key(|w| (w.start_ns, w.end_ns));

            let window_ns: u64 = windows.iter().map(|w| w.duration_ns()).sum();
            let attributed_ns: u64 = segments.iter().map(|s| s.duration_ns()).sum();
            let err = |detail: String| ConservationError {
                tid,
                window_ns,
                attributed_ns,
                detail,
            };

            for pair in windows.windows(2) {
                if pair[1].start_ns < pair[0].end_ns {
                    return Err(err(format!(
                        "overlapping windows [{}, {}) and [{}, {})",
                        pair[0].start_ns, pair[0].end_ns, pair[1].start_ns, pair[1].end_ns
                    )));
                }
            }

            let mut seg_iter = segments.iter().peekable();
            for win in &windows {
                let mut cursor = win.start_ns;
                // Consume segments until this window is fully tiled.
                while cursor < win.end_ns {
                    match seg_iter.peek() {
                        Some(s) if s.start_ns == cursor && s.end_ns <= win.end_ns => {
                            cursor = s.end_ns;
                            seg_iter.next();
                        }
                        Some(s) if s.start_ns == cursor => {
                            return Err(err(format!(
                                "segment {} [{}, {}) overruns window end {}",
                                s.cause, s.start_ns, s.end_ns, win.end_ns
                            )));
                        }
                        Some(s) if s.start_ns < cursor => {
                            return Err(err(format!(
                                "overlapping segments: {} starts at {} before cursor {}",
                                s.cause, s.start_ns, cursor
                            )));
                        }
                        _ => {
                            return Err(err(format!(
                                "unattributed gap [{}, ...) inside window [{}, {})",
                                cursor, win.start_ns, win.end_ns
                            )));
                        }
                    }
                }
                // Zero-length segments sitting exactly on the cursor
                // belong to this window too.
                while seg_iter
                    .peek()
                    .is_some_and(|s| s.start_ns == cursor && s.end_ns == cursor)
                {
                    seg_iter.next();
                }
            }
            if let Some(s) = seg_iter.next() {
                return Err(err(format!(
                    "segment {} [{}, {}) outside every window",
                    s.cause, s.start_ns, s.end_ns
                )));
            }
        }
        Ok(())
    }
}

/// Tracks one latency objective per thread: p50/p95/p99/p999
/// percentiles and error-budget burn rate, built on the crate's
/// log-linear histograms so per-shard results stay mergeable via
/// [`HistogramSnapshot::merge`].
#[derive(Debug)]
pub struct SloTracker {
    objective_ns: u64,
    /// Allowed violation fraction (e.g. `0.001` = 99.9% target).
    error_budget: f64,
    inner: Mutex<SloInner>,
}

#[derive(Debug, Default)]
struct SloInner {
    per_thread: BTreeMap<u32, (Histogram, u64)>, // (latencies, violations)
}

/// Frozen SLO stats for one thread.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloThreadStats {
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub violations: u64,
    /// Fraction of samples over the objective.
    pub violation_rate: f64,
    /// `violation_rate / error_budget`; > 1.0 means the budget is
    /// burning faster than allowed.
    pub burn_rate: f64,
}

/// Frozen SLO report across threads. Keys are decimal tids (string
/// keys keep the report directly JSON-serializable).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    pub objective_ns: u64,
    pub error_budget: f64,
    pub per_thread: BTreeMap<String, SloThreadStats>,
}

impl SloTracker {
    /// `objective_ns` is the latency target; `error_budget` the
    /// allowed violation fraction (clamped to a sane positive range
    /// so burn rate is always finite).
    #[must_use]
    pub fn new(objective_ns: u64, error_budget: f64) -> Self {
        SloTracker {
            objective_ns,
            error_budget: error_budget.clamp(1e-9, 1.0),
            inner: Mutex::new(SloInner::default()),
        }
    }

    /// Records one observed latency for `tid`.
    pub fn record(&self, tid: u32, latency_ns: u64) {
        if let Ok(mut inner) = self.inner.lock() {
            let (hist, violations) = inner.per_thread.entry(tid).or_default();
            hist.record(latency_ns);
            if latency_ns > self.objective_ns {
                *violations += 1;
            }
        }
    }

    /// Merges every per-thread histogram into one fleet-wide
    /// distribution (the per-shard aggregation path).
    #[must_use]
    pub fn merged_histogram(&self) -> HistogramSnapshot {
        match self.inner.lock() {
            Ok(inner) => inner
                .per_thread
                .values()
                .map(|(h, _)| h.snapshot())
                .fold(HistogramSnapshot::default(), |acc, s| acc.merge(&s)),
            Err(_) => HistogramSnapshot::default(),
        }
    }

    /// Freezes percentiles and burn rates per thread.
    #[must_use]
    pub fn report(&self) -> SloReport {
        let mut per_thread = BTreeMap::new();
        if let Ok(inner) = self.inner.lock() {
            for (tid, (hist, violations)) in &inner.per_thread {
                let snap = hist.snapshot();
                let violation_rate = if snap.count == 0 {
                    0.0
                } else {
                    *violations as f64 / snap.count as f64
                };
                per_thread.insert(
                    tid.to_string(),
                    SloThreadStats {
                        count: snap.count,
                        p50_ns: snap.quantile(0.50),
                        p95_ns: snap.quantile(0.95),
                        p99_ns: snap.quantile(0.99),
                        p999_ns: snap.quantile(0.999),
                        violations: *violations,
                        violation_rate,
                        burn_rate: violation_rate / self.error_budget,
                    },
                );
            }
        }
        SloReport {
            objective_ns: self.objective_ns,
            error_budget: self.error_budget,
            per_thread,
        }
    }
}

/// Publishes a snapshot's cause totals into the metrics registry under
/// the registered `prosper.stall.*` names, so attribution shows up in
/// the standard Prometheus/JSON exports next to the phase histograms.
pub fn report_to_registry(snap: &AttributionSnapshot, registry: &crate::Registry) {
    for cause in StallCause::ALL {
        let name = match cause {
            StallCause::Inspect => "prosper.stall.inspect_ns",
            StallCause::Stage => "prosper.stall.stage_ns",
            StallCause::Seal => "prosper.stall.seal_ns",
            StallCause::Apply => "prosper.stall.apply_ns",
            StallCause::Quiesce => "prosper.stall.quiesce_ns",
            StallCause::Merge => "prosper.stall.merge_ns",
            StallCause::Recovery => "prosper.stall.recovery_ns",
            StallCause::Backpressure => "prosper.stall.backpressure_ns",
        };
        registry.counter(name).add(snap.cause_total_ns(cause));
    }
    registry
        .counter("prosper.stall.total_ns")
        .add(snap.windows.iter().map(StallWindow::duration_ns).sum());
    registry
        .counter("prosper.stall.segments")
        .add(snap.segments.len() as u64);
    registry
        .counter("prosper.stall.windows")
        .add(snap.windows.len() as u64);
}

/// Publishes an SLO report into the registry under the registered
/// `prosper.slo.*` names: the percentile gauges hold the worst
/// per-thread value (the thread closest to blowing the objective),
/// `violations` accumulates across threads, and the burn rate is
/// exported in milli-units (1000 = the whole error budget).
pub fn slo_to_registry(report: &SloReport, registry: &crate::Registry) {
    let mut worst = SloThreadStats::default();
    for stats in report.per_thread.values() {
        worst.p50_ns = worst.p50_ns.max(stats.p50_ns);
        worst.p95_ns = worst.p95_ns.max(stats.p95_ns);
        worst.p99_ns = worst.p99_ns.max(stats.p99_ns);
        worst.p999_ns = worst.p999_ns.max(stats.p999_ns);
        worst.violations += stats.violations;
        worst.burn_rate = worst.burn_rate.max(stats.burn_rate);
    }
    let as_i64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    registry
        .gauge("prosper.slo.p50_ns")
        .set(as_i64(worst.p50_ns));
    registry
        .gauge("prosper.slo.p95_ns")
        .set(as_i64(worst.p95_ns));
    registry
        .gauge("prosper.slo.p99_ns")
        .set(as_i64(worst.p99_ns));
    registry
        .gauge("prosper.slo.p999_ns")
        .set(as_i64(worst.p999_ns));
    registry
        .counter("prosper.slo.violations")
        .add(worst.violations);
    let milli = (worst.burn_rate * 1000.0).clamp(0.0, i64::MAX as f64);
    registry
        .gauge("prosper.slo.burn_rate_milli")
        .set(milli as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_and_guards_record() {
        let acct = StallAccountant::new_virtual();
        assert_eq!(acct.now_ns(), 0);
        {
            let g = acct.stall(3, StallCause::Quiesce, 7);
            acct.advance(120);
            g.finish();
        }
        let snap = acct.snapshot();
        assert_eq!(snap.segments.len(), 1);
        assert_eq!(snap.windows.len(), 1);
        let s = snap.segments[0];
        assert_eq!((s.tid, s.cause, s.sequence), (3, StallCause::Quiesce, 7));
        assert_eq!((s.start_ns, s.end_ns), (0, 120));
        snap.verify_conservation()
            .expect("guard is self-conserving");
    }

    #[test]
    fn guard_drop_records_like_finish() {
        let acct = StallAccountant::new_virtual();
        {
            let _g = acct.stall(0, StallCause::Recovery, 0);
            acct.advance(5);
        } // dropped, not finished
        let snap = acct.snapshot();
        assert_eq!(snap.segments.len(), 1);
        assert_eq!(snap.segments[0].duration_ns(), 5);
        snap.verify_conservation().unwrap();
    }

    #[test]
    fn conservation_accepts_exact_tiling() {
        let acct = StallAccountant::new_virtual();
        // Two threads share commit boundaries 10..40: stage 10..25,
        // seal 25..30, apply 30..40.
        for tid in [0u32, 1] {
            acct.record_segment(tid, StallCause::Stage, 1, 10, 25);
            acct.record_segment(tid, StallCause::Seal, 1, 25, 30);
            acct.record_segment(tid, StallCause::Apply, 1, 30, 40);
            acct.record_window(tid, 10, 40);
        }
        let snap = acct.snapshot();
        snap.verify_conservation().unwrap();
        let per = snap.per_thread();
        assert_eq!(per[&0].attributed_ns, 30);
        assert_eq!(per[&0].window_ns, 30);
        assert_eq!(per[&1].by_cause["seal"], 5);
    }

    #[test]
    fn conservation_rejects_gap() {
        let acct = StallAccountant::new_virtual();
        acct.record_segment(0, StallCause::Stage, 1, 10, 20);
        // Uninstrumented 20..25 hole.
        acct.record_segment(0, StallCause::Apply, 1, 25, 40);
        acct.record_window(0, 10, 40);
        let err = acct.snapshot().verify_conservation().unwrap_err();
        assert!(err.detail.contains("gap"), "{err}");
        assert_eq!(err.window_ns, 30);
        assert_eq!(err.attributed_ns, 25);
    }

    #[test]
    fn conservation_rejects_overlap_even_when_sums_match() {
        let acct = StallAccountant::new_virtual();
        // Sums match (30 = 30) but 15..20 is double-charged and
        // 25..30 is unattributed.
        acct.record_segment(0, StallCause::Stage, 1, 10, 20);
        acct.record_segment(0, StallCause::Seal, 1, 15, 25);
        acct.record_segment(0, StallCause::Apply, 1, 30, 40);
        acct.record_window(0, 10, 40);
        let err = acct.snapshot().verify_conservation().unwrap_err();
        assert_eq!(err.attributed_ns, err.window_ns, "sums alone look fine");
        assert!(
            err.detail.contains("overlap") || err.detail.contains("gap"),
            "{err}"
        );
    }

    #[test]
    fn conservation_rejects_segment_outside_window() {
        let acct = StallAccountant::new_virtual();
        acct.record_segment(0, StallCause::Quiesce, 0, 5, 9);
        let err = acct.snapshot().verify_conservation().unwrap_err();
        assert!(err.detail.contains("outside"), "{err}");
    }

    #[test]
    fn conservation_rejects_window_with_no_segments() {
        let acct = StallAccountant::new_virtual();
        acct.record_window(2, 100, 200);
        let err = acct.snapshot().verify_conservation().unwrap_err();
        assert_eq!(err.tid, 2);
        assert_eq!(err.window_ns, 100);
        assert_eq!(err.attributed_ns, 0);
    }

    #[test]
    fn zero_length_segments_and_windows_are_conserved() {
        let acct = StallAccountant::new_virtual();
        acct.record_segment(0, StallCause::Seal, 1, 10, 10);
        acct.record_window(0, 10, 10);
        acct.snapshot().verify_conservation().unwrap();
    }

    #[test]
    fn snapshot_is_order_independent() {
        let a = StallAccountant::new_virtual();
        a.record_segment(1, StallCause::Stage, 1, 0, 5);
        a.record_segment(0, StallCause::Stage, 1, 0, 5);
        let b = StallAccountant::new_virtual();
        b.record_segment(0, StallCause::Stage, 1, 0, 5);
        b.record_segment(1, StallCause::Stage, 1, 0, 5);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let acct = StallAccountant::new_virtual();
        acct.record_segment(0, StallCause::Recovery, 3, 0, 9);
        acct.record_window(0, 0, 9);
        let snap = acct.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"Recovery\""), "unit-variant cause: {json}");
        let back: AttributionSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn wall_mode_without_context_is_inert_and_conserved() {
        // No telemetry context installed: every timestamp is 0.
        let acct = StallAccountant::new_wall();
        let g = acct.stall(0, StallCause::Quiesce, 0);
        acct.advance(1_000_000); // no-op under wall clock
        g.finish();
        let snap = acct.snapshot();
        assert_eq!(snap.segments[0].duration_ns(), 0);
        snap.verify_conservation().unwrap();
    }

    #[test]
    fn slo_tracker_percentiles_and_burn_rate() {
        let slo = SloTracker::new(100, 0.01);
        for v in 1..=100u64 {
            slo.record(0, v); // zero violations
        }
        for v in 1..=100u64 {
            slo.record(1, v * 10); // 90 of 100 over objective
        }
        let rep = slo.report();
        assert_eq!(rep.per_thread["0"].violations, 0);
        assert_eq!(rep.per_thread["0"].burn_rate, 0.0);
        let t1 = &rep.per_thread["1"];
        assert_eq!(t1.count, 100);
        assert_eq!(t1.violations, 90);
        assert!((t1.violation_rate - 0.9).abs() < 1e-9);
        assert!((t1.burn_rate - 90.0).abs() < 1e-6);
        assert!(t1.p50_ns <= t1.p95_ns && t1.p95_ns <= t1.p99_ns && t1.p99_ns <= t1.p999_ns);
        // Merged view spans both threads.
        let merged = slo.merged_histogram();
        assert_eq!(merged.count, 200);
        assert_eq!(merged.max, 1000);
    }

    #[test]
    fn registry_report_publishes_cause_totals() {
        let acct = StallAccountant::new_virtual();
        acct.record_segment(0, StallCause::Stage, 1, 0, 30);
        acct.record_segment(0, StallCause::Seal, 1, 30, 40);
        acct.record_window(0, 0, 40);
        let r = crate::Registry::new();
        report_to_registry(&acct.snapshot(), &r);
        let snap = r.snapshot();
        assert_eq!(snap.counters["prosper.stall.stage_ns"], 30);
        assert_eq!(snap.counters["prosper.stall.seal_ns"], 10);
        assert_eq!(snap.counters["prosper.stall.total_ns"], 40);
        assert_eq!(snap.counters["prosper.stall.segments"], 2);
    }
}
