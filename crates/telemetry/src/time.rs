//! The one sanctioned wall-clock site in the workspace.
//!
//! Simulator crates are deterministic by construction: the `PA-DET005`
//! lint rule and the `clippy.toml` `disallowed-methods` list ban
//! `Instant::now`/`SystemTime::now` there, because wall-clock reads in
//! simulation logic make runs unreproducible. Observability is the
//! exception — phase-duration histograms measure the *host's* real
//! time by definition — so instrumented code takes its timestamps
//! through [`Stopwatch`] instead of `std::time` directly. A stopwatch
//! never feeds a value back into simulation state; it only records
//! into telemetry, and it reads the clock at all only while a
//! telemetry context is installed.

/// Measures elapsed wall-clock time for telemetry histograms.
///
/// When no telemetry context is installed (or the `enabled` feature is
/// compiled out) starting a stopwatch does not touch the clock and
/// [`Stopwatch::elapsed_ns`] reports zero, keeping the hot path free
/// of syscalls.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Option<std::time::Instant>);

impl Stopwatch {
    /// Starts a stopwatch (a no-op when telemetry is off).
    #[must_use]
    pub fn start() -> Self {
        if crate::enabled() {
            // The sanctioned wall-clock read: observability only.
            #[allow(clippy::disallowed_methods)]
            Self(Some(std::time::Instant::now()))
        } else {
            Self(None)
        }
    }

    /// Nanoseconds since [`Stopwatch::start`], saturating at `u64::MAX`;
    /// zero if telemetry was off at start.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.0.map_or(0, |t| {
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_without_context_is_inert() {
        // No telemetry context installed in this test thread.
        let sw = Stopwatch::start();
        assert_eq!(sw.elapsed_ns(), 0);
    }

    #[test]
    fn stopwatch_with_context_measures() {
        crate::install(crate::Telemetry::new(Box::new(crate::NoopSink)));
        let sw = Stopwatch::start();
        // Elapsed is monotone; we only assert it does not panic and is
        // readable twice.
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        crate::uninstall();
    }
}
