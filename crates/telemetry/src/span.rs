//! Structured span/event tracing over the simulated clock.
//!
//! The simulator is single-threaded, so the active [`Telemetry`]
//! context lives in a thread-local. Instrumented code calls the free
//! functions ([`span_begin`], [`span_end`], [`instant`]) with
//! explicit cycle timestamps from the machine clock; with no context
//! installed each call is one thread-local boolean load and a branch.
//! Timestamps are simulated cycles, not wall time. `tid` carries the
//! simulated core id (see [`set_tid`]).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::metrics::Registry;
use crate::sink::EventSink;

/// One trace record. `depth` is the span-nesting level at emission
/// (0 = top level), letting consumers validate nesting without
/// replaying the stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    SpanBegin {
        name: String,
        cat: String,
        ts: u64,
        tid: u32,
        depth: u32,
    },
    SpanEnd {
        name: String,
        ts: u64,
        tid: u32,
        depth: u32,
    },
    Instant {
        name: String,
        ts: u64,
        tid: u32,
    },
}

impl Event {
    #[must_use]
    pub fn ts(&self) -> u64 {
        match self {
            Event::SpanBegin { ts, .. } | Event::SpanEnd { ts, .. } | Event::Instant { ts, .. } => {
                *ts
            }
        }
    }

    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Event::SpanBegin { name, .. }
            | Event::SpanEnd { name, .. }
            | Event::Instant { name, .. } => name,
        }
    }
}

/// A telemetry context: a metrics registry plus an event sink.
pub struct Telemetry {
    registry: Registry,
    sink: RefCell<Box<dyn EventSink>>,
    depth: Cell<u32>,
    tid: Cell<u32>,
    open: RefCell<Vec<String>>,
}

impl Telemetry {
    #[must_use]
    pub fn new(sink: Box<dyn EventSink>) -> Self {
        Telemetry {
            registry: Registry::new(),
            sink: RefCell::new(sink),
            depth: Cell::new(0),
            tid: Cell::new(0),
            open: RefCell::new(Vec::new()),
        }
    }

    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Current span-nesting depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth.get()
    }

    pub fn set_tid(&self, tid: u32) {
        self.tid.set(tid);
    }

    pub fn span_begin(&self, name: &str, cat: &str, ts: u64) {
        let depth = self.depth.get();
        self.depth.set(depth + 1);
        self.open.borrow_mut().push(name.to_string());
        self.sink.borrow_mut().record(&Event::SpanBegin {
            name: name.to_string(),
            cat: cat.to_string(),
            ts,
            tid: self.tid.get(),
            depth,
        });
    }

    /// Closes the innermost open span, which must be `name` — spans
    /// are strictly nested.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced or interleaved begin/end pairs; that is
    /// an instrumentation bug worth failing loudly on.
    pub fn span_end(&self, name: &str, ts: u64) {
        let top = self.open.borrow_mut().pop();
        assert_eq!(
            top.as_deref(),
            Some(name),
            "span_end({name}) does not match innermost open span {top:?}"
        );
        let depth = self.depth.get() - 1;
        self.depth.set(depth);
        self.sink.borrow_mut().record(&Event::SpanEnd {
            name: name.to_string(),
            ts,
            tid: self.tid.get(),
            depth,
        });
    }

    pub fn instant(&self, name: &str, ts: u64) {
        self.sink.borrow_mut().record(&Event::Instant {
            name: name.to_string(),
            ts,
            tid: self.tid.get(),
        });
    }

    pub fn flush(&self) {
        self.sink.borrow_mut().flush();
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static CTX: RefCell<Option<Rc<Telemetry>>> = const { RefCell::new(None) };
}

/// Installs a context for this thread, returning a shared handle to
/// it. Replaces any previous context.
pub fn install(t: Telemetry) -> Rc<Telemetry> {
    let rc = Rc::new(t);
    CTX.with(|c| *c.borrow_mut() = Some(rc.clone()));
    ENABLED.with(|e| e.set(cfg!(feature = "enabled")));
    rc
}

/// Removes this thread's context, returning its handle if one was
/// installed.
pub fn uninstall() -> Option<Rc<Telemetry>> {
    ENABLED.with(|e| e.set(false));
    CTX.with(|c| c.borrow_mut().take())
}

/// Fast path: is a context installed (and the `enabled` feature
/// compiled in)? One thread-local load; with the feature off this is
/// a compile-time `false`.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    if cfg!(feature = "enabled") {
        ENABLED.with(Cell::get)
    } else {
        false
    }
}

/// Runs `f` against the installed context, if any.
pub fn with<R>(f: impl FnOnce(&Telemetry) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    CTX.with(|c| c.borrow().as_ref().map(|t| f(t)))
}

/// Opens a span on the installed context; no-op without one.
#[inline]
pub fn span_begin(name: &str, cat: &str, ts: u64) {
    if enabled() {
        with(|t| t.span_begin(name, cat, ts));
    }
}

/// Closes a span on the installed context; no-op without one.
#[inline]
pub fn span_end(name: &str, ts: u64) {
    if enabled() {
        with(|t| t.span_end(name, ts));
    }
}

/// Emits an instant event on the installed context; no-op without one.
#[inline]
pub fn instant(name: &str, ts: u64) {
    if enabled() {
        with(|t| t.instant(name, ts));
    }
}

/// Sets the simulated core id stamped on subsequent events.
#[inline]
pub fn set_tid(tid: u32) {
    if enabled() {
        with(|t| t.set_tid(tid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;

    #[test]
    fn nesting_depth_tracks_begin_end() {
        let (sink, events) = RingBufferSink::new(64);
        let t = Telemetry::new(Box::new(sink));
        t.span_begin("outer", "test", 10);
        assert_eq!(t.depth(), 1);
        t.span_begin("inner", "test", 20);
        assert_eq!(t.depth(), 2);
        t.span_end("inner", 30);
        t.span_end("outer", 40);
        assert_eq!(t.depth(), 0);

        let evs = events.take();
        assert_eq!(evs.len(), 4);
        match (&evs[0], &evs[1], &evs[2], &evs[3]) {
            (
                Event::SpanBegin {
                    name: a, depth: 0, ..
                },
                Event::SpanBegin {
                    name: b, depth: 1, ..
                },
                Event::SpanEnd {
                    name: c, depth: 1, ..
                },
                Event::SpanEnd {
                    name: d, depth: 0, ..
                },
            ) => {
                assert_eq!((a.as_str(), b.as_str()), ("outer", "inner"));
                assert_eq!((c.as_str(), d.as_str()), ("inner", "outer"));
            }
            other => panic!("unexpected event shapes: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "does not match innermost")]
    fn interleaved_spans_panic() {
        let (sink, _events) = RingBufferSink::new(8);
        let t = Telemetry::new(Box::new(sink));
        t.span_begin("a", "test", 0);
        t.span_begin("b", "test", 1);
        t.span_end("a", 2);
    }

    #[test]
    fn free_functions_are_noops_without_context() {
        uninstall();
        assert!(!enabled());
        // Must not panic or allocate a context.
        span_begin("x", "test", 0);
        span_end("x", 1);
        instant("y", 2);
        assert!(with(|_| ()).is_none());
    }

    #[test]
    fn install_routes_free_functions() {
        let (sink, events) = RingBufferSink::new(8);
        install(Telemetry::new(Box::new(sink)));
        assert_eq!(enabled(), cfg!(feature = "enabled"));
        set_tid(3);
        span_begin("s", "test", 5);
        span_end("s", 9);
        let t = uninstall().expect("context was installed");
        drop(t);
        let evs = events.take();
        if cfg!(feature = "enabled") {
            assert_eq!(evs.len(), 2);
            assert!(matches!(&evs[0], Event::SpanBegin { tid: 3, ts: 5, .. }));
        } else {
            assert!(evs.is_empty());
        }
    }
}
