//! Remaining evaluation items: Table I, the context-switch overhead
//! study, and the energy/area numbers (Section V).

use prosper_baselines::mechanism::capability_table;
use prosper_core::energy::EnergyModel;
use prosper_core::multithread::MultiThreadTracker;
use prosper_core::tracker::TrackerConfig;
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::report::Table;
use crate::scale::SEED;

/// Table I rendered as a results table.
pub fn table1() -> Table {
    let mut table = Table::new(
        "Table I: comparison of memory persistence mechanisms",
        &[
            "mechanism",
            "process persistence",
            "no compiler support",
            "SP aware",
            "stack in DRAM",
        ],
    );
    let tick = |b: bool| if b { "yes" } else { "no" }.to_string();
    for row in capability_table() {
        table.push_row(&[
            row.name.to_string(),
            tick(row.caps.process_persistence),
            tick(row.caps.no_compiler_support),
            tick(row.caps.sp_aware),
            tick(row.caps.stack_in_dram),
        ]);
    }
    table
}

/// Result of the context-switch overhead study.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CtxSwitchResult {
    /// Switches performed.
    pub switches: u64,
    /// Mean Prosper-added cycles per switch (paper: ~870).
    pub mean_overhead_cycles: f64,
}

/// Reproduces the two-thread context-switch study: each thread
/// performs random writes to its own stack; the scheduler alternates
/// them, and we measure the tracker save/restore overhead.
pub fn ctx_switch_overhead() -> (CtxSwitchResult, Table) {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mt = MultiThreadTracker::new(TrackerConfig::default());
    let s0 = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7080_0000));
    let s1 = VirtRange::new(VirtAddr::new(0x7100_0000), VirtAddr::new(0x7180_0000));
    mt.register_thread(0, s0, VirtAddr::new(0x1000_0000));
    mt.register_thread(1, s1, VirtAddr::new(0x1100_0000));

    let mut rng = StdRng::seed_from_u64(SEED);
    mt.schedule(&mut machine, 0);
    let mut total_overhead = 0u64;
    let mut switches = 0u64;
    for round in 0..200u64 {
        let (range, next) = if round % 2 == 0 { (s0, 1) } else { (s1, 0) };
        // The micro-benchmark: a fixed number of random writes to the
        // running thread's stack between timer interrupts.
        for _ in 0..64 {
            let offset = rng.gen_range(0..0x8000u64 / 8) * 8;
            mt.observe_store(&mut machine, range.start() + offset, 8);
        }
        total_overhead += mt.schedule(&mut machine, next);
        switches += 1;
    }
    let result = CtxSwitchResult {
        switches,
        mean_overhead_cycles: total_overhead as f64 / switches as f64,
    };
    let mut table = Table::new(
        "Context-switch overhead of Prosper (paper: ~870 cycles average)",
        &["switches", "mean Prosper overhead (cycles)"],
    );
    table.push_row(&[
        result.switches.to_string(),
        format!("{:.0}", result.mean_overhead_cycles),
    ]);
    (result, table)
}

/// The energy/area numbers as reported in Section V.
pub fn energy_area() -> Table {
    let m = EnergyModel::paper_cacti_7nm();
    let mut table = Table::new(
        "Energy and area of the 16-entry lookup table (CACTI-P, 7nm FinFET)",
        &["quantity", "value"],
    );
    table.push_row(&[
        "dynamic read energy / access".to_string(),
        format!("{} nJ", m.read_nj),
    ]);
    table.push_row(&[
        "dynamic write energy / access".to_string(),
        format!("{} nJ", m.write_nj),
    ]);
    table.push_row(&[
        "bank leakage power".to_string(),
        format!("{} mW", m.leakage_mw),
    ]);
    table.push_row(&["area".to_string(), format!("{} mm^2", m.area_mm2)]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_mechanisms() {
        let t = table1();
        assert_eq!(t.rows.len(), 5);
        let rendered = t.render();
        assert!(rendered.contains("Prosper"));
        assert!(rendered.contains("Romulus"));
    }

    #[test]
    fn ctx_switch_overhead_in_paper_ballpark() {
        let (res, _) = ctx_switch_overhead();
        assert_eq!(res.switches, 200);
        assert!(
            (300.0..1800.0).contains(&res.mean_overhead_cycles),
            "mean overhead {} cycles (paper: ~870)",
            res.mean_overhead_cycles
        );
    }

    #[test]
    fn energy_table_reports_paper_constants() {
        let t = energy_area();
        let s = t.render();
        assert!(s.contains("0.000773194"));
        assert!(s.contains("0.000128375"));
        assert!(s.contains("0.01067596"));
        assert!(s.contains("0.000704786"));
    }
}
