//! The motivation experiments: Figures 1–4 (Section II).

use prosper_baselines::logging::{replay_baseline, replay_logging, LoggingScheme};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_trace::interval::IntervalCollector;
use prosper_trace::record::{AccessKind, Region, TraceEvent};
use prosper_trace::workloads::{Workload, WorkloadProfile};
use serde::Serialize;

use crate::report::{ratio, Table};
use crate::scale::{DEFAULT_INTERVALS, FIG2_INTERVALS, INTERVAL_10MS, SEED};

/// One workload's Figure 1 row.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Row {
    /// Workload name.
    pub workload: String,
    /// Fraction of memory operations (loads + stores) to the stack.
    pub stack_fraction: f64,
    /// Fraction of stores among the stack operations.
    pub stack_write_share: f64,
}

/// Figure 1: fraction of memory operations in the stack region.
pub fn fig1() -> (Vec<Fig1Row>, Table) {
    let mut rows = Vec::new();
    for profile in WorkloadProfile::applications() {
        let name = profile.name.to_string();
        let mut w = Workload::new(profile, SEED);
        let mut stack = 0u64;
        let mut stack_writes = 0u64;
        let mut total = 0u64;
        let mut collector = IntervalCollector::new(&mut w, INTERVAL_10MS);
        for _ in 0..DEFAULT_INTERVALS {
            let iv = collector.next_interval();
            for ev in &iv.events {
                if let TraceEvent::Access(a) = ev {
                    total += 1;
                    if a.region == Region::Stack {
                        stack += 1;
                        if a.kind == AccessKind::Store {
                            stack_writes += 1;
                        }
                    }
                }
            }
        }
        rows.push(Fig1Row {
            workload: name,
            stack_fraction: stack as f64 / total as f64,
            stack_write_share: stack_writes as f64 / stack.max(1) as f64,
        });
    }
    let mut table = Table::new(
        "Figure 1: fraction of memory operations to the stack region",
        &["workload", "stack ops", "of which writes"],
    );
    for r in &rows {
        table.push_row(&[
            r.workload.clone(),
            format!("{:.0}%", r.stack_fraction * 100.0),
            format!("{:.0}%", r.stack_write_share * 100.0),
        ]);
    }
    (rows, table)
}

/// One interval's Figure 2 data point.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig2Point {
    /// Interval index.
    pub interval: u64,
    /// Stack writes in the interval.
    pub total_writes: u64,
    /// Writes below the interval-final SP.
    pub beyond_final_sp: u64,
}

/// Figure 2: stack writes vs writes beyond the final SP (Ycsb_mem).
pub fn fig2() -> (Vec<Fig2Point>, f64, Table) {
    let w = Workload::new(WorkloadProfile::ycsb_mem(), SEED);
    let mut collector = IntervalCollector::new(w, INTERVAL_10MS);
    let mut points = Vec::new();
    let mut total = 0u64;
    let mut beyond = 0u64;
    for i in 0..FIG2_INTERVALS {
        let iv = collector.next_interval();
        let s = iv.stack_stats();
        total += s.stack_writes;
        beyond += s.writes_beyond_final_sp;
        points.push(Fig2Point {
            interval: i,
            total_writes: s.stack_writes,
            beyond_final_sp: s.writes_beyond_final_sp,
        });
    }
    let fraction = beyond as f64 / total.max(1) as f64;
    let mut table = Table::new(
        format!(
            "Figure 2: Ycsb_mem stack writes beyond the final SP \
             ({} intervals, aggregate {:.0}%)",
            FIG2_INTERVALS,
            fraction * 100.0
        ),
        &["interval", "stack writes", "beyond final SP"],
    );
    // Print every fourth interval to keep the table readable.
    for p in points.iter().step_by(4) {
        table.push_row(&[
            p.interval.to_string(),
            p.total_writes.to_string(),
            p.beyond_final_sp.to_string(),
        ]);
    }
    (points, fraction, table)
}

/// One bar of Figure 3.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: String,
    /// Scheme name (flush/undo/redo).
    pub scheme: String,
    /// Execution time without SP awareness, normalized to the
    /// DRAM-no-persistence baseline.
    pub no_awareness: f64,
    /// Execution time with SP awareness, normalized likewise.
    pub with_awareness: f64,
}

/// Figure 3: benefit of SP awareness for flush/undo/redo.
pub fn fig3() -> (Vec<Fig3Row>, Table) {
    let mut rows = Vec::new();
    for profile in WorkloadProfile::applications() {
        let baseline = {
            let mut machine = Machine::new(MachineConfig::setup_i());
            let w = Workload::new(profile.clone(), SEED);
            replay_baseline(&mut machine, w, INTERVAL_10MS, DEFAULT_INTERVALS) as f64
        };
        for scheme in LoggingScheme::all() {
            let run = |aware: bool| {
                let mut machine = Machine::new(MachineConfig::setup_i());
                let w = Workload::new(profile.clone(), SEED);
                replay_logging(
                    &mut machine,
                    w,
                    scheme,
                    aware,
                    INTERVAL_10MS,
                    DEFAULT_INTERVALS,
                );
                machine.now() as f64
            };
            rows.push(Fig3Row {
                workload: profile.name.to_string(),
                scheme: scheme.name().to_string(),
                no_awareness: run(false) / baseline,
                with_awareness: run(true) / baseline,
            });
        }
    }
    let mut table = Table::new(
        "Figure 3: flush/undo/redo with and without SP awareness \
         (normalized to DRAM, no persistence)",
        &["workload", "scheme", "no SP awareness", "SP awareness"],
    );
    for r in &rows {
        table.push_row(&[
            r.workload.clone(),
            r.scheme.clone(),
            ratio(r.no_awareness),
            ratio(r.with_awareness),
        ]);
    }
    (rows, table)
}

/// One workload's Figure 4 row.
#[derive(Clone, Debug, Serialize)]
pub struct Fig4Row {
    /// Workload name.
    pub workload: String,
    /// Mean per-interval copy size at 4 KiB page granularity (bytes).
    pub page_bytes: f64,
    /// Mean per-interval copy size at 8-byte granularity (bytes).
    pub byte_bytes: f64,
}

impl Fig4Row {
    /// The reduction factor (page / byte).
    pub fn reduction(&self) -> f64 {
        self.page_bytes / self.byte_bytes.max(1.0)
    }
}

/// Figure 4: checkpoint copy size — page vs 8-byte dirty tracking.
pub fn fig4() -> (Vec<Fig4Row>, Table) {
    let mut rows = Vec::new();
    for profile in WorkloadProfile::applications() {
        let name = profile.name.to_string();
        let w = Workload::new(profile, SEED);
        let mut collector = IntervalCollector::new(w, INTERVAL_10MS);
        let mut page = 0u64;
        let mut byte = 0u64;
        for _ in 0..DEFAULT_INTERVALS {
            let iv = collector.next_interval();
            page += iv.checkpoint_bytes(4096);
            byte += iv.checkpoint_bytes(8);
        }
        rows.push(Fig4Row {
            workload: name,
            page_bytes: page as f64 / DEFAULT_INTERVALS as f64,
            byte_bytes: byte as f64 / DEFAULT_INTERVALS as f64,
        });
    }
    let mut table = Table::new(
        "Figure 4: per-interval stack checkpoint copy size, \
         page (4 KiB) vs byte (8 B) granularity dirty tracking",
        &[
            "workload",
            "page-granularity",
            "8B-granularity",
            "reduction",
        ],
    );
    for r in &rows {
        table.push_row(&[
            r.workload.clone(),
            crate::report::bytes(r.page_bytes),
            crate::report::bytes(r.byte_bytes),
            ratio(r.reduction()),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_paper_ordering() {
        let (rows, table) = fig1();
        assert_eq!(rows.len(), 3);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.workload.contains(name))
                .unwrap()
                .stack_fraction
        };
        assert!(get("Gapbs") > 0.55, "Gapbs ~70% in the paper");
        assert!(get("Ycsb") < 0.35, "Ycsb ~15% in the paper");
        assert!(get("Gapbs") > get("G500"));
        assert!(get("G500") > get("Ycsb"));
        assert_eq!(table.rows.len(), 3);
    }

    #[test]
    fn fig2_beyond_fraction_substantial() {
        let (points, fraction, _) = fig2();
        assert_eq!(points.len() as u64, FIG2_INTERVALS);
        assert!(
            fraction > 0.10,
            "paper reports >36% beyond final SP; got {fraction}"
        );
        for p in &points {
            assert!(p.beyond_final_sp <= p.total_writes);
        }
    }

    #[test]
    fn fig3_awareness_always_helps() {
        let (rows, _) = fig3();
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.with_awareness <= r.no_awareness,
                "{} {}: awareness must not hurt",
                r.workload,
                r.scheme
            );
            assert!(
                r.with_awareness > 1.0,
                "{} {}: overhead remains significant even with awareness",
                r.workload,
                r.scheme
            );
        }
    }

    #[test]
    fn fig4_byte_granularity_wins_big() {
        let (rows, _) = fig4();
        for r in &rows {
            assert!(
                r.reduction() > 4.0,
                "{}: page/byte reduction {} (paper: 33x-300x)",
                r.workload,
                r.reduction()
            );
        }
    }
}
