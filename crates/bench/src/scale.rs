//! Experiment scaling constants (see the crate docs and
//! EXPERIMENTS.md).

use prosper_memsim::Cycles;

/// Budget cycles representing one 10 ms consistency interval
/// (down-scaled from the paper's 30 M cycles at 3 GHz).
pub const INTERVAL_10MS: Cycles = 120_000;

/// Budget cycles representing 5 ms.
pub const INTERVAL_5MS: Cycles = INTERVAL_10MS / 2;

/// Budget cycles representing 1 ms.
pub const INTERVAL_1MS: Cycles = INTERVAL_10MS / 10;

/// Consistency intervals per experiment (down-scaled from the paper's
/// 100–6000).
pub const DEFAULT_INTERVALS: u64 = 12;

/// Intervals for the Figure 2 study (the paper aggregates 100).
pub const FIG2_INTERVALS: u64 = 40;

/// SSP consolidation-thread invocation intervals, scaled by the same
/// factor as the consistency interval so the relative frequencies
/// (1000×, 100×, 10× per interval) match the paper's 10 µs/100 µs/1 ms
/// against 10 ms.
pub const SSP_10US: Cycles = INTERVAL_10MS / 1000;
/// See [`SSP_10US`].
pub const SSP_100US: Cycles = INTERVAL_10MS / 100;
/// See [`SSP_10US`].
pub const SSP_1MS: Cycles = INTERVAL_10MS / 10;

/// Deterministic seed shared by all experiments.
pub const SEED: u64 = 0x5eed_2024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_ratios_match_paper() {
        assert_eq!(INTERVAL_10MS / INTERVAL_1MS, 10);
        assert_eq!(INTERVAL_10MS / INTERVAL_5MS, 2);
        assert_eq!(INTERVAL_10MS / SSP_10US, 1000);
        assert_eq!(INTERVAL_10MS / SSP_100US, 100);
        assert_eq!(INTERVAL_10MS / SSP_1MS, 10);
    }
}
