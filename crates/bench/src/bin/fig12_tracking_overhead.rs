//! Regenerates Figure 12: user-mode performance with Prosper dirty
//! tracking relative to no tracking, at 8/64/128-byte granularity.

fn main() {
    let (rows, table) = prosper_bench::fig_overhead::fig12();
    table.print();
    let mean_overhead: f64 = rows
        .iter()
        .flat_map(|r| r.speedups.iter())
        .map(|s| (1.0 - s).max(0.0))
        .sum::<f64>()
        / (rows.len() * 3) as f64;
    println!(
        "mean tracking overhead: {:.2}% (paper: <1% average, ~3% max)",
        mean_overhead * 100.0
    );
}
