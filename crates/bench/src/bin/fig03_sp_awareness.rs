//! Regenerates Figure 3: flush/undo/redo persistence for the stack
//! with and without stack-pointer awareness, normalized to a DRAM run
//! with no persistence.

fn main() {
    let (_, table) = prosper_bench::fig_motivation::fig3();
    table.print();
}
