//! Regenerates Figure 4: stack checkpoint copy size under page (4 KiB)
//! vs byte (8 B) granularity dirty tracking.

fn main() {
    let (_, table) = prosper_bench::fig_motivation::fig4();
    table.print();
}
