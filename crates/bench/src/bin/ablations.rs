//! Runs the design-choice ablations DESIGN.md calls out: bitmap-store
//! coalescing (straw-man vs lookup table), the allocation policy
//! (Accumulate-and-Apply vs Load-and-Update), and the adaptive
//! granularity extension.

fn main() {
    let (_, t) = prosper_bench::ablation::ablation_coalescing();
    t.print();
    let (_, t) = prosper_bench::ablation::ablation_alloc_policy();
    t.print();
    let (_, t) = prosper_bench::ablation::ablation_table_size();
    t.print();
    let (_, t, g) = prosper_bench::ablation::ablation_adaptive();
    t.print();
    println!("adaptive policy settled at {g} B granularity on Stream");
}
