//! Regenerates Figure 10: checkpoint size (a) and checkpoint time
//! normalized to Dirtybit (b) for the Table III micro-benchmarks at
//! tracking granularities of 8–128 bytes.

fn main() {
    let (_, size_table, time_table) = prosper_bench::fig_micro::fig10();
    size_table.print();
    time_table.print();
}
