//! Records the performance baseline.
//!
//! Runs the [`prosper_bench::perf`] suite — bitmap-inspection
//! speedups, parallel-commit scaling (classic and pipelined),
//! checkpoint-latency percentiles, end-to-end workload runtimes, the
//! staged-delta spine study, lock-free allocator throughput, and the
//! staggered-fleet bandwidth-smoothing study — prints the tables, and
//! writes the JSON report (default `BENCH_pr9.json`; earlier records
//! are `BENCH_pr3.json`, `BENCH_pr7.json`, and `BENCH_pr8.json`).
//!
//! ```sh
//! cargo run --release -p prosper-bench --bin perf_baseline
//! cargo run --release -p prosper-bench --bin perf_baseline -- --quick --out BENCH_smoke.json
//! ```
//!
//! Exits nonzero if the acceptance gate fails (sparse-stack
//! inspection speedup < 5x, adaptive pipelined commit below 1.0x
//! serial on a multi-core host, spine critical-path latency above
//! eager, spine write amplification not at-or-below eager on every
//! pattern, lock-free alloc throughput below the serial reference or
//! degrading with workers on a multi-core host, staggered fleet
//! peak-to-mean not strictly below aligned, missing sections) or the
//! emitted JSON does not parse back.
//!
//! Gates that depend on host parallelism are auto-skipped on
//! single-core hosts; when that happens a prominent warning is
//! printed, because the recorded baseline then proves less than a
//! multi-core record would (the BENCH_pr7.json lesson: it was
//! recorded on a 1-core host with `gate_enforced: false` and nobody
//! noticed).

use std::process::ExitCode;

use prosper_bench::perf::{self, PerfConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr9.json".to_string());

    let cfg = if quick {
        PerfConfig::quick()
    } else {
        PerfConfig::full()
    };
    println!(
        "Prosper perf baseline ({} budgets) -> {out}\n",
        if quick { "quick" } else { "full" }
    );

    let report = perf::run_all(&cfg);
    for table in perf::render(&report) {
        table.print();
    }

    let s = &report.summary;
    println!("summary:");
    println!(
        "  sparse-stack inspect speedup: {:.1}x (gate: >= {:.0}x)",
        s.sparse_stack_speedup,
        perf::SPARSE_STACK_GATE
    );
    println!(
        "  commit speedup at {} workers: {:.2}x",
        s.max_commit_workers, s.commit_speedup_at_max_workers
    );
    println!(
        "  pipelined adaptive pick: {} worker(s) at {:.2}x serial (gate {})",
        s.pipelined_adaptive_workers,
        s.pipelined_adaptive_speedup,
        if report.pipeline.gate_enforced {
            "enforced"
        } else {
            "skipped: single-core host"
        }
    );
    println!(
        "  checkpoint interval p99: {} cycles",
        s.ckpt_interval_p99_cycles
    );
    println!(
        "  hot-words NVM write amplification: spine {} vs eager {} milli \
         (gate: strictly lower)",
        s.spine_hot_words_write_amp_milli, s.eager_hot_words_write_amp_milli
    );
    println!(
        "  lock-free alloc: {:.2}x reference serial, {:.2}x at {} workers (gate {})",
        s.alloc_serial_speedup,
        s.alloc_speedup_at_max_workers,
        report.alloc.rows.last().map_or(1, |r| r.workers),
        if report.alloc.gate_enforced {
            "enforced"
        } else {
            "scaling skipped: single-core host"
        }
    );
    println!(
        "  fleet peak-to-mean NVM bandwidth: staggered {} vs aligned {} milli \
         (gate: strictly lower)",
        s.fleet_staggered_peak_to_mean_milli, s.fleet_aligned_peak_to_mean_milli
    );

    if !report.pipeline.gate_enforced {
        eprintln!(
            "\n=========================================================================\n\
             WARNING: host parallelism is {} — the adaptive pipelined-commit speedup\n\
             gate was AUTO-SKIPPED (gate_enforced: false in the artifact). This\n\
             baseline does NOT demonstrate pipelined-commit scaling; re-record it on\n\
             a multi-core host before treating it as the reference.\n\
             =========================================================================",
            report.host_parallelism
        );
    }

    if !report.alloc.gate_enforced {
        eprintln!(
            "\n=========================================================================\n\
             WARNING: host parallelism is {} — the lock-free allocator scaling gate\n\
             was AUTO-SKIPPED (alloc.gate_enforced: false in the artifact). Only the\n\
             1-worker throughput floor was enforced; this baseline does NOT\n\
             demonstrate multi-worker alloc scaling. Re-record it on a multi-core\n\
             host before treating it as the reference.\n\
             =========================================================================",
            report.alloc.host_parallelism
        );
    }

    if let Err(why) = perf::validate(&report) {
        eprintln!("\nRESULT: FAIL ({why})");
        return ExitCode::FAILURE;
    }

    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("\nRESULT: FAIL (serialize: {e:?})");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("\nRESULT: FAIL (write {out}: {e})");
        return ExitCode::FAILURE;
    }

    // Read the artifact back and check it is well-formed JSON with the
    // sections the consumers (CI, EXPERIMENTS.md) rely on.
    match std::fs::read_to_string(&out)
        .map_err(|e| e.to_string())
        .and_then(|text| {
            serde_json::from_str::<serde_json::Value>(&text).map_err(|e| format!("{e:?}"))
        }) {
        Ok(v) => {
            let schema_ok = v.get("schema").and_then(|s| s.as_str()) == Some(perf::SCHEMA);
            let rows = v
                .get("bitmap")
                .and_then(|b| b.as_array())
                .map_or(0, Vec::len);
            if !schema_ok || rows == 0 {
                eprintln!("\nRESULT: FAIL ({out} is malformed or empty)");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("\nRESULT: FAIL (re-read {out}: {e})");
            return ExitCode::FAILURE;
        }
    }

    println!("\nwrote {out}");
    println!("RESULT: PASS");
    ExitCode::SUCCESS
}
