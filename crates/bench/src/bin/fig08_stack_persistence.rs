//! Regenerates Figure 8: stack-persistence overhead of Romulus,
//! SSP-{10us,100us,1ms}, Dirtybit, and Prosper.

fn main() {
    let (rows, table) = prosper_bench::fig_performance::fig8();
    table.print();
    let mean: f64 = rows
        .iter()
        .map(|r| r.of("SSP-10us") / r.of("Prosper"))
        .sum::<f64>()
        / rows.len() as f64;
    println!("mean Prosper reduction vs SSP-10us: {mean:.2}x (paper: 2.1x avg, 3.6x max)");
}
