//! Quantifies Section II's endurance argument: NVM write volume under
//! DRAM-stack checkpointing (Prosper, Dirtybit) vs NVM-resident-stack
//! mechanisms (SSP, Romulus).

fn main() {
    let (_, table) = prosper_bench::endurance::endurance_study();
    table.print();
}
