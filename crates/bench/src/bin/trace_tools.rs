//! Trace tooling: record workload trace windows to JSON files and
//! inspect them — the counterpart of the artifact's shipped traces.
//!
//! ```sh
//! # Record 50k events of Gapbs_pr:
//! cargo run --release -p prosper-bench --bin trace_tools -- record Gapbs_pr 50000 /tmp/gapbs.json
//! # Summarise a recorded trace:
//! cargo run --release -p prosper-bench --bin trace_tools -- info /tmp/gapbs.json
//! ```

use prosper_trace::analysis;
use prosper_trace::tracefile::TraceFile;
use prosper_trace::workloads::{Workload, WorkloadProfile};
use std::process::ExitCode;

fn profile_by_name(name: &str) -> Option<WorkloadProfile> {
    let mut all = WorkloadProfile::applications();
    all.extend(WorkloadProfile::tracking_overhead_set());
    all.into_iter().find(|p| p.name == name)
}

fn usage() -> ExitCode {
    eprintln!("usage: trace_tools record <workload> <events> <out.json>");
    eprintln!("       trace_tools info <trace.json>");
    eprintln!("workloads: Gapbs_pr, G500_sssp, Ycsb_mem, 605.mcf_s, 620.omnetpp_s, ...");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") if args.len() == 4 => {
            let Some(profile) = profile_by_name(&args[1]) else {
                eprintln!("unknown workload {}", args[1]);
                return usage();
            };
            let Ok(events) = args[2].parse::<usize>() else {
                return usage();
            };
            let mut w = Workload::new(profile, 0x5eed);
            let file = TraceFile::record(&mut w, 0x5eed, events);
            let json = file.to_json().expect("trace serializes");
            if let Err(e) = std::fs::write(&args[3], json) {
                eprintln!("cannot write {}: {e}", args[3]);
                return ExitCode::FAILURE;
            }
            println!("recorded {events} events of {} to {}", args[1], args[3]);
            ExitCode::SUCCESS
        }
        Some("info") if args.len() == 2 => {
            let json = match std::fs::read_to_string(&args[1]) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let file = match TraceFile::from_json(&json) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("malformed trace: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut replay = file.replayer();
            let accesses = file
                .events
                .iter()
                .filter(|e| e.as_access().is_some())
                .count() as u64;
            let mix = analysis::operation_mix(&mut replay, accesses.min(100_000));
            println!("benchmark:   {}", file.benchmark);
            println!("seed:        {}", file.seed);
            println!("events:      {}", file.events.len());
            println!("stack ops:   {:.1}%", mix.stack_fraction() * 100.0);
            println!("stack wr:    {:.1}%", mix.stack_write_share() * 100.0);
            let mut replay = file.replayer();
            let traj = analysis::sp_trajectory(&mut replay, accesses.min(100_000));
            println!("max depth:   {} bytes", traj.max_depth_bytes);
            println!("SP moves:    {}", traj.sp_moves);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
