//! Regenerates Table I: the capability comparison of memory
//! persistence mechanisms.

fn main() {
    prosper_bench::misc::table1().print();
}
