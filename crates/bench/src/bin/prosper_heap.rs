//! Extension study: Prosper tracking the heap region as well as the
//! stack (Section III's generality claim), compared against the
//! paper's best combination (SSP heap + Prosper stack).

fn main() {
    let (_, table) = prosper_bench::fig_performance::prosper_everywhere();
    table.print();
}
