//! Demonstrates the multi-process deployment: three persistent
//! workloads share one core under a timeslice scheduler; the OS
//! saves/restores the Prosper tracker across switches and checkpoints
//! each process's stack at its own consistency intervals.

use prosper_trace::workloads::WorkloadProfile;

fn main() {
    let profiles = [
        WorkloadProfile::gapbs_pr(),
        WorkloadProfile::g500_sssp(),
        WorkloadProfile::ycsb_mem(),
    ];
    let result = prosper_bench::scheduler::run_scheduled(&profiles, 20_000, 60_000, 36);
    prosper_bench::scheduler::render(&result).print();
    println!("total simulated cycles: {}", result.total_cycles);
}
