//! Regenerates Figure 9: whole-memory persistence combining SSP for
//! the heap with SSP / Dirtybit / Prosper for the stack.

fn main() {
    let (rows, table) = prosper_bench::fig_performance::fig9();
    table.print();
    let best = rows
        .iter()
        .map(|r| r.ssp_only / r.ssp_prosper)
        .fold(f64::MIN, f64::max);
    println!("max SSP+Prosper reduction vs SSP-only: {best:.2}x (paper: up to 2.6x)");
}
