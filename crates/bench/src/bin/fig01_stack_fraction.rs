//! Regenerates Figure 1: fraction of memory operations to the stack
//! region for Gapbs_pr, G500_sssp, and Ycsb_mem.

fn main() {
    let (_, table) = prosper_bench::fig_motivation::fig1();
    table.print();
}
