//! Exhaustive crash-point sweep of the checkpoint pipeline.
//!
//! Enumerates every step boundary of the two-phase whole-process
//! commit (plus the OS-side bitmap-clear and context-switch windows),
//! injects a simulated power failure at each one, and verifies that
//! recovery lands on a coherent checkpoint and the workload resumes
//! to the same final state as an uninterrupted run.
//!
//! ```sh
//! cargo run --release -p prosper-bench --bin crash_matrix
//! cargo run --release -p prosper-bench --bin crash_matrix -- --quick
//! # additionally archive the cause-tagged stall attribution of the
//! # full matrix (every point re-run with an accountant attached,
//! # conservation verified at each one):
//! cargo run --release -p prosper-bench --bin crash_matrix -- \
//!     --telemetry-snapshot matrix_attribution.json
//! ```
//!
//! Exits nonzero if any crash point fails verification.

use std::process::ExitCode;

use prosper_bench::crash_matrix::{
    alloc_conformance_sweep, attributed_sweep, default_suite, kind_coverage, quick_suite, run_suite,
};
use prosper_telemetry as telemetry;
use prosper_telemetry::{NoopSink, Telemetry};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let snapshot_path = argv
        .iter()
        .position(|a| a == "--telemetry-snapshot")
        .map(|i| match argv.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("--telemetry-snapshot needs a path argument");
                std::process::exit(2);
            }
        });
    let suite = if quick {
        quick_suite()
    } else {
        default_suite()
    };

    telemetry::install(Telemetry::new(Box::new(NoopSink)));
    let rows = run_suite(&suite);
    let t = telemetry::uninstall().expect("context was installed");

    println!("Crash-point matrix: exhaustive sweep of the checkpoint pipeline");
    println!(
        "{} workload shape(s), one injected power failure per enumerated boundary\n",
        rows.len()
    );

    let mut any_failed = false;
    for row in &rows {
        println!(
            "[{}] threads={} intervals={} stores/interval={}",
            row.label, row.cfg.threads, row.cfg.intervals, row.cfg.stores_per_interval
        );
        println!(
            "  crash points exercised: {:>4}   survived: {:>4}   failed: {}",
            row.report.total(),
            row.report.survived,
            row.report.failures.len()
        );
        for kc in kind_coverage(&row.report) {
            println!(
                "    {:<26} exercised {:>3}   failed {}",
                kc.kind, kc.exercised, kc.failed
            );
        }
        for failure in &row.report.failures {
            any_failed = true;
            println!(
                "  FAIL  boundary #{} at {}: {}",
                failure.index, failure.site, failure.reason
            );
        }
        println!();
    }

    // The allocator half of the matrix: probed conformance of the
    // real FrameAlloc against the model checker's history and
    // crash-image replay (see prosper-allocmodel for the model half).
    match alloc_conformance_sweep(quick) {
        Ok(c) => println!(
            "allocator conformance: {} shape(s), {} probed ops, {} protocol atomics, \
             {} persist epoch(s) crash-image checked",
            c.shapes, c.ops, c.events, c.epochs
        ),
        Err(e) => {
            any_failed = true;
            println!("allocator conformance FAIL: {e}");
        }
    }

    let snap = t.registry().snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!(
        "total: {} crash points, {} survived, {} failed",
        get("prosper.crashmatrix.sites"),
        get("prosper.crashmatrix.survived"),
        get("prosper.crashmatrix.failures")
    );

    if let Some(path) = &snapshot_path {
        match attributed_sweep(&suite) {
            Ok(archive) => {
                let total_points: u64 = archive.rows.iter().map(|r| r.points).sum();
                let json = serde_json::to_string_pretty(&archive).expect("archive serializes");
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("failed to write {path}: {e}");
                    any_failed = true;
                } else {
                    println!(
                        "\narchived stall attribution of {total_points} crash points \
                         (conservation verified at every one) to {path}"
                    );
                }
            }
            Err(e) => {
                println!("\nATTRIBUTION FAIL: {e}");
                any_failed = true;
            }
        }
    }

    if any_failed {
        println!("\nRESULT: FAIL");
        ExitCode::FAILURE
    } else {
        println!("\nRESULT: PASS");
        ExitCode::SUCCESS
    }
}
