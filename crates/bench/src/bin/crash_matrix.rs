//! Exhaustive crash-point sweep of the checkpoint pipeline.
//!
//! Enumerates every step boundary of the two-phase whole-process
//! commit (plus the OS-side bitmap-clear and context-switch windows),
//! injects a simulated power failure at each one, and verifies that
//! recovery lands on a coherent checkpoint and the workload resumes
//! to the same final state as an uninterrupted run.
//!
//! ```sh
//! cargo run --release -p prosper-bench --bin crash_matrix
//! cargo run --release -p prosper-bench --bin crash_matrix -- --quick
//! ```
//!
//! Exits nonzero if any crash point fails verification.

use std::process::ExitCode;

use prosper_bench::crash_matrix::{default_suite, kind_coverage, quick_suite, run_suite};
use prosper_telemetry as telemetry;
use prosper_telemetry::{NoopSink, Telemetry};

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let suite = if quick {
        quick_suite()
    } else {
        default_suite()
    };

    telemetry::install(Telemetry::new(Box::new(NoopSink)));
    let rows = run_suite(&suite);
    let t = telemetry::uninstall().expect("context was installed");

    println!("Crash-point matrix: exhaustive sweep of the checkpoint pipeline");
    println!(
        "{} workload shape(s), one injected power failure per enumerated boundary\n",
        rows.len()
    );

    let mut any_failed = false;
    for row in &rows {
        println!(
            "[{}] threads={} intervals={} stores/interval={}",
            row.label, row.cfg.threads, row.cfg.intervals, row.cfg.stores_per_interval
        );
        println!(
            "  crash points exercised: {:>4}   survived: {:>4}   failed: {}",
            row.report.total(),
            row.report.survived,
            row.report.failures.len()
        );
        for kc in kind_coverage(&row.report) {
            println!(
                "    {:<26} exercised {:>3}   failed {}",
                kc.kind, kc.exercised, kc.failed
            );
        }
        for failure in &row.report.failures {
            any_failed = true;
            println!(
                "  FAIL  boundary #{} at {}: {}",
                failure.index, failure.site, failure.reason
            );
        }
        println!();
    }

    let snap = t.registry().snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!(
        "total: {} crash points, {} survived, {} failed",
        get("prosper.crashmatrix.sites"),
        get("prosper.crashmatrix.survived"),
        get("prosper.crashmatrix.failures")
    );

    if any_failed {
        println!("\nRESULT: FAIL");
        ExitCode::FAILURE
    } else {
        println!("\nRESULT: PASS");
        ExitCode::SUCCESS
    }
}
