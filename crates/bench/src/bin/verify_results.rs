//! Artifact-style results verification.
//!
//! The paper's artifact ships "expected" output files and scripts that
//! compare a fresh run against them. This binary is the equivalent:
//! it loads the JSON produced by `all_figures --json` and checks every
//! headline claim of the evaluation, printing PASS/FAIL per check.
//!
//! ```sh
//! cargo run --release -p prosper-bench --bin all_figures -- --json results.json
//! cargo run --release -p prosper-bench --bin verify_results -- results.json
//! ```

use serde_json::Value;
use std::process::ExitCode;

struct Verifier {
    failures: u32,
    checks: u32,
}

impl Verifier {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS  {name} ({detail})");
        } else {
            self.failures += 1;
            println!("FAIL  {name} ({detail})");
        }
    }
}

fn f(v: &Value) -> f64 {
    v.as_f64().unwrap_or(f64::NAN)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results.json".into());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let data: Value = match serde_json::from_str(&json) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("malformed results file: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut v = Verifier {
        failures: 0,
        checks: 0,
    };

    // Figure 1: stack fractions ordered Gapbs > SSSP > Ycsb, Gapbs near 70%.
    let fig1 = data["fig1"].as_array().expect("fig1 present");
    let frac = |name: &str| {
        fig1.iter()
            .find(|r| r["workload"].as_str().unwrap_or("").contains(name))
            .map(|r| f(&r["stack_fraction"]))
            .unwrap_or(f64::NAN)
    };
    v.check(
        "fig1.ordering",
        frac("Gapbs") > frac("G500") && frac("G500") > frac("Ycsb"),
        format!(
            "Gapbs {:.2} > sssp {:.2} > ycsb {:.2}",
            frac("Gapbs"),
            frac("G500"),
            frac("Ycsb")
        ),
    );
    v.check(
        "fig1.gapbs-near-70%",
        (0.55..0.85).contains(&frac("Gapbs")),
        format!("{:.2}", frac("Gapbs")),
    );

    // Figure 2: beyond-final-SP fraction substantial (paper >36%).
    let beyond = f(&data["fig2_beyond_fraction"]);
    v.check(
        "fig2.beyond-final-sp",
        beyond > 0.15,
        format!("{:.0}%", beyond * 100.0),
    );

    // Figure 3: SP awareness always helps; overheads stay > 1x.
    let fig3 = data["fig3"].as_array().expect("fig3 present");
    let aware_helps = fig3
        .iter()
        .all(|r| f(&r["with_awareness"]) <= f(&r["no_awareness"]));
    let always_overhead = fig3.iter().all(|r| f(&r["with_awareness"]) > 1.0);
    v.check(
        "fig3.sp-awareness-helps",
        aware_helps,
        format!("{} rows", fig3.len()),
    );
    v.check(
        "fig3.overhead-remains",
        always_overhead,
        "all rows > 1x".into(),
    );

    // Figure 4: page/byte reduction in the tens for every workload.
    let fig4 = data["fig4"].as_array().expect("fig4 present");
    let min_reduction = fig4
        .iter()
        .map(|r| f(&r["page_bytes"]) / f(&r["byte_bytes"]).max(1.0))
        .fold(f64::INFINITY, f64::min);
    v.check(
        "fig4.reduction",
        min_reduction > 8.0,
        format!("min {min_reduction:.1}x (paper: 33-300x)"),
    );

    // Figure 8: Prosper wins against Romulus and all SSP settings.
    let fig8 = data["fig8"].as_array().expect("fig8 present");
    let mut fig8_ok = true;
    let mut worst = String::new();
    for row in fig8 {
        let get = |name: &str| {
            row["mechanisms"]
                .as_array()
                .unwrap()
                .iter()
                .find(|m| m[0].as_str() == Some(name))
                .map(|m| f(&m[1]))
                .unwrap_or(f64::NAN)
        };
        let prosper = get("Prosper");
        if !(prosper < get("Romulus")
            && prosper < get("SSP-10us")
            && prosper < get("SSP-1ms")
            && get("SSP-10us") >= get("SSP-1ms"))
        {
            fig8_ok = false;
            worst = row["workload"].as_str().unwrap_or("?").to_string();
        }
    }
    v.check(
        "fig8.prosper-wins",
        fig8_ok,
        if fig8_ok {
            "all workloads".into()
        } else {
            format!("violated on {worst}")
        },
    );

    // Figure 9: SSP+Prosper <= SSP everywhere.
    let fig9 = data["fig9"].as_array().expect("fig9 present");
    let fig9_ok = fig9
        .iter()
        .all(|r| f(&r["ssp_prosper"]) <= f(&r["ssp_only"]));
    v.check("fig9.combo-wins", fig9_ok, format!("{} rows", fig9.len()));

    // Figure 12: tracking overhead below 5%.
    let fig12 = data["fig12"].as_array().expect("fig12 present");
    let min_speedup = fig12
        .iter()
        .flat_map(|r| r["speedups"].as_array().unwrap().iter().map(f))
        .fold(f64::INFINITY, f64::min);
    v.check(
        "fig12.overhead-small",
        min_speedup > 0.95,
        format!("min speedup {min_speedup:.4} (paper: <1% avg overhead)"),
    );

    // Figure 13: SSSP improves with HWM; mcf does not improve as much.
    let fig13 = data["fig13"].as_array().expect("fig13 present");
    let trend = |name: &str| {
        let row = fig13
            .iter()
            .find(|r| r["workload"].as_str().unwrap_or("").contains(name))
            .expect("workload present");
        let sweep = row["hwm_sweep"].as_array().unwrap();
        let ops = |p: &Value| f(&p["loads"]) + f(&p["stores"]);
        ops(sweep.last().unwrap()) / ops(&sweep[0]).max(1.0)
    };
    v.check(
        "fig13.trend-contrast",
        trend("mcf") > trend("sssp"),
        format!("mcf {:.2} vs sssp {:.2}", trend("mcf"), trend("sssp")),
    );

    // Context switch: hundreds of cycles (paper ~870).
    let ctx = f(&data["ctx_switch"]["mean_overhead_cycles"]);
    v.check(
        "ctx-switch.ballpark",
        (300.0..1800.0).contains(&ctx),
        format!("{ctx:.0} cycles (paper ~870)"),
    );

    println!("\n{}/{} checks passed", v.checks - v.failures, v.checks);
    if v.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
