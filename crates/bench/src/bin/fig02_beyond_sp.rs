//! Regenerates Figure 2: stack writes vs writes beyond the interval-
//! final SP for Ycsb_mem.

fn main() {
    let (_, fraction, table) = prosper_bench::fig_motivation::fig2();
    table.print();
    println!(
        "aggregate writes beyond final SP: {:.1}% (paper: >36% on average)",
        fraction * 100.0
    );
}
