//! Regenerates the context-switch overhead study (Section V): the
//! Prosper tracker save/restore cost across alternating threads.

fn main() {
    let (_, table) = prosper_bench::misc::ctx_switch_overhead();
    table.print();
}
