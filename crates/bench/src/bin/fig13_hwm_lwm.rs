//! Regenerates Figure 13: tracker bitmap loads/stores as functions of
//! the HWM (LWM = 4) and LWM (HWM = 24) thresholds, for mcf and SSSP.

fn main() {
    let (_, table) = prosper_bench::fig_overhead::fig13();
    table.print();
}
