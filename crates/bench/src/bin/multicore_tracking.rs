//! Concurrent per-core tracking: three persistent workloads on three
//! cores of a shared-L3 machine, each with its own Prosper tracker.

fn main() {
    let (_, table) = prosper_bench::multicore_study::multicore_study(120_000);
    table.print();
}
