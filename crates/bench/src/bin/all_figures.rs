//! Runs every table and figure of the evaluation in sequence and,
//! with `--json <path>`, writes the structured results consumed by
//! EXPERIMENTS.md.

use serde::Serialize;

#[derive(Serialize)]
struct AllResults {
    fig1: Vec<prosper_bench::fig_motivation::Fig1Row>,
    fig2_beyond_fraction: f64,
    fig3: Vec<prosper_bench::fig_motivation::Fig3Row>,
    fig4: Vec<prosper_bench::fig_motivation::Fig4Row>,
    fig8: Vec<prosper_bench::fig_performance::Fig8Row>,
    fig9: Vec<prosper_bench::fig_performance::Fig9Row>,
    fig10: Vec<prosper_bench::fig_micro::Fig10Row>,
    fig11: Vec<prosper_bench::fig_micro::Fig11Row>,
    fig12: Vec<prosper_bench::fig_overhead::Fig12Row>,
    fig13: Vec<prosper_bench::fig_overhead::Fig13Row>,
    ctx_switch: prosper_bench::misc::CtxSwitchResult,
}

fn main() {
    let json_path = {
        let mut args = std::env::args().skip(1);
        match (args.next().as_deref(), args.next()) {
            (Some("--json"), Some(path)) => Some(path),
            _ => None,
        }
    };

    prosper_bench::misc::table1().print();
    let (fig1, t) = prosper_bench::fig_motivation::fig1();
    t.print();
    let (_, fig2_beyond_fraction, t) = prosper_bench::fig_motivation::fig2();
    t.print();
    let (fig3, t) = prosper_bench::fig_motivation::fig3();
    t.print();
    let (fig4, t) = prosper_bench::fig_motivation::fig4();
    t.print();
    let (fig8, t) = prosper_bench::fig_performance::fig8();
    t.print();
    let (fig9, t) = prosper_bench::fig_performance::fig9();
    t.print();
    let (fig10, ta, tb) = prosper_bench::fig_micro::fig10();
    ta.print();
    tb.print();
    let (fig11, t) = prosper_bench::fig_micro::fig11();
    t.print();
    let (fig12, t) = prosper_bench::fig_overhead::fig12();
    t.print();
    let (fig13, t) = prosper_bench::fig_overhead::fig13();
    t.print();
    let (ctx_switch, t) = prosper_bench::misc::ctx_switch_overhead();
    t.print();
    prosper_bench::misc::energy_area().print();

    if let Some(path) = json_path {
        let all = AllResults {
            fig1,
            fig2_beyond_fraction,
            fig3,
            fig4,
            fig8,
            fig9,
            fig10,
            fig11,
            fig12,
            fig13,
            ctx_switch,
        };
        let json = serde_json::to_string_pretty(&all).expect("results serialize");
        std::fs::write(&path, json).expect("write results file");
        eprintln!("wrote {path}");
    }
}
