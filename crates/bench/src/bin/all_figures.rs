//! Runs every table and figure of the evaluation in sequence.
//!
//! Flags (combinable, order-free):
//!
//! * `--json <path>` — write the structured figure results consumed by
//!   EXPERIMENTS.md.
//! * `--trace <path>` — capture one Prosper checkpoint run with
//!   telemetry installed and write a Chrome `trace_event` document
//!   (open in Perfetto or `chrome://tracing`).
//! * `--telemetry <path>` — per-figure wall-clock timings and metric
//!   deltas (default `bench_telemetry.json`; `-` disables the file).
//! * `--prometheus` — print the aggregate metrics snapshot in
//!   Prometheus text exposition format after the figures.

#![forbid(unsafe_code)]
// Figure timings measure host wall-clock time by design; exempt from
// the determinism ban (clippy.toml disallowed-methods, PA-DET005).
#![allow(clippy::disallowed_methods)]

use prosper_telemetry as telemetry;
use prosper_telemetry::{MetricsSnapshot, NoopSink, Telemetry};
use serde::Serialize;

#[derive(Serialize)]
struct AllResults {
    fig1: Vec<prosper_bench::fig_motivation::Fig1Row>,
    fig2_beyond_fraction: f64,
    fig3: Vec<prosper_bench::fig_motivation::Fig3Row>,
    fig4: Vec<prosper_bench::fig_motivation::Fig4Row>,
    fig8: Vec<prosper_bench::fig_performance::Fig8Row>,
    fig9: Vec<prosper_bench::fig_performance::Fig9Row>,
    fig10: Vec<prosper_bench::fig_micro::Fig10Row>,
    fig11: Vec<prosper_bench::fig_micro::Fig11Row>,
    fig12: Vec<prosper_bench::fig_overhead::Fig12Row>,
    fig13: Vec<prosper_bench::fig_overhead::Fig13Row>,
    ctx_switch: prosper_bench::misc::CtxSwitchResult,
}

/// One figure's cost: wall time plus the telemetry it reported.
#[derive(Serialize)]
struct FigureTiming {
    name: String,
    wall_ms: f64,
    /// Metric deltas attributable to this figure (absent when the
    /// telemetry feature is compiled out).
    metrics: Option<MetricsSnapshot>,
}

#[derive(Serialize)]
struct BenchTelemetry {
    figures: Vec<FigureTiming>,
    total_wall_ms: f64,
}

#[derive(Default)]
struct Args {
    json: Option<String>,
    trace: Option<String>,
    telemetry: Option<String>,
    prometheus: bool,
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut path_arg = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a path argument"))
        };
        match flag.as_str() {
            "--json" => out.json = Some(path_arg("--json")),
            "--trace" => out.trace = Some(path_arg("--trace")),
            "--telemetry" => out.telemetry = Some(path_arg("--telemetry")),
            "--prometheus" => out.prometheus = true,
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

/// Runs one figure, recording wall time and the metric deltas it
/// reported into the installed telemetry context.
fn timed<T>(name: &str, rows: &mut Vec<FigureTiming>, f: impl FnOnce() -> T) -> T {
    let before = telemetry::with(|t| t.registry().snapshot());
    let start = std::time::Instant::now();
    let value = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let metrics = telemetry::with(|t| t.registry().snapshot())
        .zip(before)
        .map(|(after, before)| after - before);
    rows.push(FigureTiming {
        name: name.to_string(),
        wall_ms,
        metrics,
    });
    value
}

fn main() {
    let args = parse_args();
    let total_start = std::time::Instant::now();

    // A traced Prosper run goes first so its context does not mix
    // with the figure-level metrics context installed below.
    if let Some(path) = &args.trace {
        let cap = prosper_bench::trace_capture::capture_prosper_run(3);
        let doc = telemetry::chrome_trace(&cap.events);
        std::fs::write(path, doc).expect("write trace file");
        eprintln!(
            "wrote {path} ({} events, {} intervals)",
            cap.events.len(),
            cap.result.intervals
        );
    }

    // Metrics-only context for the figures: spans are discarded, metric
    // deltas are attributed per figure by `timed`.
    telemetry::install(Telemetry::new(Box::new(NoopSink)));
    let mut timings = Vec::new();

    prosper_bench::misc::table1().print();
    let (fig1, t) = timed("fig1", &mut timings, prosper_bench::fig_motivation::fig1);
    t.print();
    let (_, fig2_beyond_fraction, t) =
        timed("fig2", &mut timings, prosper_bench::fig_motivation::fig2);
    t.print();
    let (fig3, t) = timed("fig3", &mut timings, prosper_bench::fig_motivation::fig3);
    t.print();
    let (fig4, t) = timed("fig4", &mut timings, prosper_bench::fig_motivation::fig4);
    t.print();
    let (fig8, t) = timed("fig8", &mut timings, prosper_bench::fig_performance::fig8);
    t.print();
    let (fig9, t) = timed("fig9", &mut timings, prosper_bench::fig_performance::fig9);
    t.print();
    let (fig10, ta, tb) = timed("fig10", &mut timings, prosper_bench::fig_micro::fig10);
    ta.print();
    tb.print();
    let (fig11, t) = timed("fig11", &mut timings, prosper_bench::fig_micro::fig11);
    t.print();
    let (fig12, t) = timed("fig12", &mut timings, prosper_bench::fig_overhead::fig12);
    t.print();
    let (fig13, t) = timed("fig13", &mut timings, prosper_bench::fig_overhead::fig13);
    t.print();
    let (ctx_switch, t) = timed(
        "ctx_switch",
        &mut timings,
        prosper_bench::misc::ctx_switch_overhead,
    );
    t.print();
    prosper_bench::misc::energy_area().print();

    let ctx = telemetry::uninstall().expect("figure context was installed");
    if args.prometheus {
        print!(
            "{}",
            prosper_telemetry::prometheus_text(&ctx.registry().snapshot())
        );
    }

    let telemetry_path = args
        .telemetry
        .unwrap_or_else(|| "bench_telemetry.json".to_string());
    if telemetry_path != "-" {
        let doc = BenchTelemetry {
            figures: timings,
            total_wall_ms: total_start.elapsed().as_secs_f64() * 1e3,
        };
        let json = serde_json::to_string_pretty(&doc).expect("timings serialize");
        std::fs::write(&telemetry_path, json).expect("write telemetry file");
        eprintln!("wrote {telemetry_path}");
    }

    if let Some(path) = args.json {
        let all = AllResults {
            fig1,
            fig2_beyond_fraction,
            fig3,
            fig4,
            fig8,
            fig9,
            fig10,
            fig11,
            fig12,
            fig13,
            ctx_switch,
        };
        let json = serde_json::to_string_pretty(&all).expect("results serialize");
        std::fs::write(&path, json).expect("write results file");
        eprintln!("wrote {path}");
    }
}
