//! `prosper-obs`: the checkpoint-tax attribution report.
//!
//! Runs the attributed workloads (micro checkpoint loop, parallel
//! commit at 1/2/4 workers, crash + recovery replay), verifies the
//! conservation invariant on every ledger, and renders the results
//! as a text HUD, a `prosper-checkpoint-tax/v1` JSON report, and
//! Chrome-trace interference timelines.
//!
//! ```sh
//! cargo run --release -p prosper-bench --bin prosper_obs -- --quick
//! cargo run --release -p prosper-bench --bin prosper_obs -- \
//!     --quick --out tax.json --trace-dir traces/
//! # regression gate against a committed report (deterministic):
//! cargo run --release -p prosper-bench --bin prosper_obs -- \
//!     --quick --diff tax.json --baseline BENCH_pr8.json
//! ```
//!
//! Without `--baseline`, `BENCH_pr8.json` is checked automatically
//! when present; any of the v1/v2/v3 perf-baseline schemas is
//! accepted.
//!
//! Exits nonzero on a conservation violation, a diff against the
//! given previous report, or a baseline phase-breakdown mismatch.

use std::process::ExitCode;

use prosper_bench::obs::{
    check_against_perf_baseline, collect, diff_reports, render_text, timeline_json, TaxReport,
};
use prosper_core::faultinject::{run_attributed, CrashMatrixConfig};

/// Perf baseline checked automatically when no `--baseline` is given
/// and the file exists (any of the v1/v2/v3 schemas is accepted).
const DEFAULT_BASELINE: &str = "BENCH_pr8.json";

struct Args {
    quick: bool,
    out: Option<String>,
    trace_dir: Option<String>,
    diff: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: None,
        trace_dir: None,
        diff: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a path argument"))
        };
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = Some(value("--out")?),
            "--trace-dir" => args.trace_dir = Some(value("--trace-dir")?),
            "--diff" => args.diff = Some(value("--diff")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let report = collect(args.quick)?;
    print!("{}", render_text(&report));

    if let Some(path) = &args.out {
        let json = serde_json::to_string_pretty(&report).map_err(|e| format!("{e:?}"))?;
        std::fs::write(path, json + "\n").map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote tax report to {path}");
    }

    if let Some(dir) = &args.trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir}: {e}"))?;
        // One timeline per commit worker count — the per-thread
        // interference picture the HUD aggregates away.
        let cfg = if args.quick {
            CrashMatrixConfig {
                threads: 2,
                intervals: 2,
                stores_per_interval: 8,
                ..Default::default()
            }
        } else {
            CrashMatrixConfig {
                threads: 4,
                intervals: 3,
                stores_per_interval: 16,
                ..Default::default()
            }
        };
        for workers in [1usize, 2, 4] {
            let run = run_attributed(&cfg, workers);
            let path = format!("{dir}/stall_timeline_w{workers}.json");
            std::fs::write(&path, timeline_json(&run.snapshot))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote timeline to {path}");
        }
    }

    // An explicit --baseline is mandatory to check; without one, the
    // committed default baseline is checked when it is present (so a
    // repo-root run gets the consistency gate for free).
    let baseline = args.baseline.clone().or_else(|| {
        std::path::Path::new(DEFAULT_BASELINE)
            .exists()
            .then(|| DEFAULT_BASELINE.to_string())
    });
    if let Some(path) = &baseline {
        let json =
            std::fs::read_to_string(path).map_err(|e| format!("read baseline {path}: {e}"))?;
        check_against_perf_baseline(&report, &json)?;
        println!("baseline phase breakdown consistent with {path}");
    }

    if let Some(path) = &args.diff {
        let json =
            std::fs::read_to_string(path).map_err(|e| format!("read diff base {path}: {e}"))?;
        let base: TaxReport =
            serde_json::from_str(&json).map_err(|e| format!("parse diff base {path}: {e:?}"))?;
        let drift = diff_reports(&base, &report);
        if drift.is_empty() {
            println!("no drift against {path}");
        } else {
            for line in &drift {
                println!("DRIFT: {line}");
            }
            return Err(format!("{} drift line(s) against {path}", drift.len()));
        }
    }

    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("prosper-obs: {e}");
            ExitCode::FAILURE
        }
    }
}
