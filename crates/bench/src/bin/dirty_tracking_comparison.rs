//! Page-granularity dirty-tracking comparison: hardware dirty bit
//! (LDT-style, the paper's Dirtybit reference) vs write-protection
//! faults (SoftDirty-style).
//!
//! Section II-B: "the write-protection-based approach incurs
//! additional overhead due to the page faults and may lead to
//! significant overheads as shown by Singh et al." — this binary
//! quantifies that gap on our model.

use prosper_baselines::{DirtybitMechanism, WriteProtectMechanism};
use prosper_bench::report::{ratio, Table};
use prosper_bench::scale::{DEFAULT_INTERVALS, INTERVAL_10MS, SEED};
use prosper_gemos::checkpoint::{CheckpointManager, MemoryPersistence, NoPersistence};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_trace::workloads::{Workload, WorkloadProfile};

fn run(profile: &WorkloadProfile, mech: &mut dyn MemoryPersistence) -> u64 {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL_10MS);
    let w = Workload::new(profile.clone(), SEED);
    mgr.run_stack_only(w, mech, DEFAULT_INTERVALS).total_cycles
}

fn main() {
    let mut table = Table::new(
        "Page-granularity dirty tracking: dirty bit (LDT) vs write-protect (SoftDirty), \
         normalized to no persistence",
        &["workload", "Dirtybit", "WriteProtect", "faults taken"],
    );
    for profile in WorkloadProfile::applications() {
        let baseline = run(&profile, &mut NoPersistence) as f64;
        let mut db = DirtybitMechanism::new();
        let db_time = run(&profile, &mut db) as f64;
        let mut wp = WriteProtectMechanism::new();
        let wp_time = run(&profile, &mut wp) as f64;
        table.push_row(&[
            profile.name.to_string(),
            ratio(db_time / baseline),
            ratio(wp_time / baseline),
            wp.protect_faults.to_string(),
        ]);
    }
    table.print();
    println!("the dirty-bit approach avoids every one of those page faults (Section II-B)");
}
