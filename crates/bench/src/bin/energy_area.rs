//! Prints the lookup-table energy/area numbers (Section V, CACTI-P
//! constants) together with a dynamic-energy estimate for a tracked
//! run.

use prosper_core::energy::EnergyModel;
use prosper_core::tracker::{DirtyTracker, TrackerConfig};
use prosper_memsim::addr::VirtAddr;
use prosper_trace::interval::IntervalCollector;
use prosper_trace::record::TraceEvent;
use prosper_trace::source::TraceSource;
use prosper_trace::workloads::{Workload, WorkloadProfile};

fn main() {
    prosper_bench::misc::energy_area().print();

    // Dynamic energy for a tracked Gapbs_pr run.
    let mut tracker = DirtyTracker::new(TrackerConfig::default());
    let w = Workload::new(WorkloadProfile::gapbs_pr(), prosper_bench::scale::SEED);
    tracker.configure(w.stack().reserved_range(), VirtAddr::new(0x1000_0000));
    let mut collector = IntervalCollector::new(w, prosper_bench::scale::INTERVAL_10MS);
    for _ in 0..prosper_bench::scale::DEFAULT_INTERVALS {
        let iv = collector.next_interval();
        for ev in &iv.events {
            if let TraceEvent::Access(a) = ev {
                if a.is_stack_store() {
                    tracker.observe_store(a.vaddr, u64::from(a.size));
                }
            }
        }
        tracker.flush();
    }
    let model = EnergyModel::paper_cacti_7nm();
    let stats = tracker.lookup_stats();
    println!(
        "\nGapbs_pr tracked run: {} searches, {} bitmap loads, {} bitmap stores",
        stats.searches, stats.bitmap_loads, stats.bitmap_stores
    );
    println!(
        "lookup-table dynamic energy: {:.3} nJ",
        model.dynamic_energy_nj(&stats)
    );
}
