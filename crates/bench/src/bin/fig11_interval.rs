//! Regenerates Figure 11: checkpoint size vs checkpoint interval
//! (1/5/10 ms) for Quicksort and Recursive at depths 4, 8, 16.

fn main() {
    let (_, table) = prosper_bench::fig_micro::fig11();
    table.print();
}
