//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * **Coalescing** — the straw-man tracker of Section III-B (bitmap
//!   store per SOI) vs the lookup table;
//! * **Allocation policy** — Accumulate-and-Apply (the paper's choice)
//!   vs Load-and-Update;
//! * **Adaptive extensions** — the dynamic-granularity and dynamic
//!   HWM/LWM policies (future work in the paper) vs the fixed
//!   defaults.

use prosper_core::lookup::AllocPolicy;
use prosper_core::tracker::TrackerConfig;
use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::CheckpointManager;
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_trace::micro::{MicroBench, MicroSpec};
use prosper_trace::workloads::{Workload, WorkloadProfile};
use serde::Serialize;

use crate::report::Table;
use crate::scale::{DEFAULT_INTERVALS, INTERVAL_10MS, SEED};

/// One ablation configuration's measurements.
#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Total run cycles.
    pub total_cycles: u64,
    /// Bitmap loads + stores emitted by the tracker.
    pub bitmap_traffic: u64,
    /// Bytes copied at checkpoints.
    pub bytes_copied: u64,
}

fn run_workload_config(profile: &WorkloadProfile, mut mech: ProsperMechanism) -> AblationRow {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL_10MS);
    let w = Workload::new(profile.clone(), SEED);
    let res = mgr.run_stack_only(w, &mut mech, DEFAULT_INTERVALS);
    let stats = mech.tracker().lookup_stats();
    AblationRow {
        config: String::new(),
        total_cycles: res.total_cycles,
        bitmap_traffic: stats.bitmap_loads + stats.bitmap_stores,
        bytes_copied: res.bytes_copied,
    }
}

fn run_micro_config(spec: MicroSpec, mut mech: ProsperMechanism) -> AblationRow {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL_10MS);
    let bench = MicroBench::new(spec, SEED);
    let res = mgr.run_stack_only(bench, &mut mech, DEFAULT_INTERVALS);
    let stats = mech.tracker().lookup_stats();
    AblationRow {
        config: String::new(),
        total_cycles: res.total_cycles,
        bitmap_traffic: stats.bitmap_loads + stats.bitmap_stores,
        bytes_copied: res.bytes_copied,
    }
}

/// Coalescing ablation: straw-man (store per SOI) vs the 16-entry
/// lookup table, on a write-heavy workload.
pub fn ablation_coalescing() -> (Vec<AblationRow>, Table) {
    let profile = WorkloadProfile::gapbs_pr();
    let mut rows = Vec::new();
    let mut straw = run_workload_config(&profile, ProsperMechanism::new(TrackerConfig::strawman()));
    straw.config = "straw-man (no coalescing)".into();
    let mut table16 = run_workload_config(&profile, ProsperMechanism::with_defaults());
    table16.config = "16-entry lookup table".into();
    rows.push(straw);
    rows.push(table16);
    let mut table = Table::new(
        "Ablation: bitmap-store coalescing (Gapbs_pr)",
        &["config", "cycles", "bitmap traffic", "bytes copied"],
    );
    for r in &rows {
        table.push_row(&[
            r.config.clone(),
            r.total_cycles.to_string(),
            r.bitmap_traffic.to_string(),
            r.bytes_copied.to_string(),
        ]);
    }
    (rows, table)
}

/// Allocation-policy ablation: Accumulate-and-Apply vs
/// Load-and-Update (Section III-B design choice).
pub fn ablation_alloc_policy() -> (Vec<AblationRow>, Table) {
    let profile = WorkloadProfile::mcf();
    let mut rows = Vec::new();
    for (policy, label) in [
        (AllocPolicy::AccumulateAndApply, "Accumulate-and-Apply"),
        (AllocPolicy::LoadAndUpdate, "Load-and-Update"),
    ] {
        let cfg = TrackerConfig {
            policy,
            ..TrackerConfig::default()
        };
        let mut row = run_workload_config(&profile, ProsperMechanism::new(cfg));
        row.config = label.into();
        rows.push(row);
    }
    let mut table = Table::new(
        "Ablation: lookup-table allocation policy (mcf)",
        &["config", "cycles", "bitmap traffic", "bytes copied"],
    );
    for r in &rows {
        table.push_row(&[
            r.config.clone(),
            r.total_cycles.to_string(),
            r.bitmap_traffic.to_string(),
            r.bytes_copied.to_string(),
        ]);
    }
    (rows, table)
}

/// Lookup-table-size ablation: the paper fixes 16 entries (and sizes
/// the CACTI model for it); this sweep shows the traffic knee.
pub fn ablation_table_size() -> (Vec<AblationRow>, Table) {
    let profile = WorkloadProfile::gapbs_pr();
    let mut rows = Vec::new();
    for entries in [4usize, 8, 16, 32] {
        let cfg = TrackerConfig {
            lookup_entries: entries,
            ..TrackerConfig::default()
        };
        let mut row = run_workload_config(&profile, ProsperMechanism::new(cfg));
        row.config = format!("{entries} entries");
        rows.push(row);
    }
    let mut table = Table::new(
        "Ablation: lookup-table size (Gapbs_pr)",
        &["config", "cycles", "bitmap traffic", "bytes copied"],
    );
    for r in &rows {
        table.push_row(&[
            r.config.clone(),
            r.total_cycles.to_string(),
            r.bitmap_traffic.to_string(),
            r.bytes_copied.to_string(),
        ]);
    }
    (rows, table)
}

/// Adaptive-granularity ablation on the Stream micro-benchmark (the
/// workload the paper says should trigger coarsening).
pub fn ablation_adaptive() -> (Vec<AblationRow>, Table, u64) {
    let spec = MicroSpec::Stream {
        array_bytes: 64 * 1024,
    };
    let mut rows = Vec::new();
    let mut fixed = run_micro_config(spec, ProsperMechanism::with_defaults());
    fixed.config = "fixed 8 B granularity".into();
    rows.push(fixed);

    // Re-run with the adapter, reading the final granularity.
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL_10MS);
    let mut mech = ProsperMechanism::with_defaults().with_adaptive_granularity();
    let bench = MicroBench::new(spec, SEED);
    let res = mgr.run_stack_only(bench, &mut mech, DEFAULT_INTERVALS);
    let stats = mech.tracker().lookup_stats();
    let final_granularity = mech.current_granularity();
    rows.push(AblationRow {
        config: format!("adaptive (ends at {final_granularity} B)"),
        total_cycles: res.total_cycles,
        bitmap_traffic: stats.bitmap_loads + stats.bitmap_stores,
        bytes_copied: res.bytes_copied,
    });

    let mut table = Table::new(
        "Ablation: dynamic granularity on Stream (paper future work)",
        &["config", "cycles", "bitmap traffic", "bytes copied"],
    );
    for r in &rows {
        table.push_row(&[
            r.config.clone(),
            r.total_cycles.to_string(),
            r.bitmap_traffic.to_string(),
            r.bytes_copied.to_string(),
        ]);
    }
    (rows, table, final_granularity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_slashes_bitmap_traffic() {
        let (rows, _) = ablation_coalescing();
        let straw = &rows[0];
        let coalesced = &rows[1];
        assert!(
            straw.bitmap_traffic > coalesced.bitmap_traffic * 3,
            "straw-man traffic {} vs coalesced {}",
            straw.bitmap_traffic,
            coalesced.bitmap_traffic
        );
        // The extra traffic is off the critical path, so total cycles
        // may barely move when the bus has headroom — but it must not
        // make the run *faster*.
        assert!(
            straw.total_cycles as f64 >= coalesced.total_cycles as f64 * 0.99,
            "straw-man {} vs coalesced {}",
            straw.total_cycles,
            coalesced.total_cycles
        );
        // Both track the same dirty state.
        assert_eq!(straw.bytes_copied, coalesced.bytes_copied);
    }

    #[test]
    fn alloc_policies_track_identically() {
        let (rows, _) = ablation_alloc_policy();
        assert_eq!(
            rows[0].bytes_copied, rows[1].bytes_copied,
            "policies differ only in traffic, not in dirty state"
        );
    }

    #[test]
    fn bigger_tables_coalesce_more() {
        let (rows, _) = ablation_table_size();
        let traffic: Vec<u64> = rows.iter().map(|r| r.bitmap_traffic).collect();
        assert!(
            traffic[0] >= traffic[2],
            "4 entries ({}) emit at least as much traffic as 16 ({})",
            traffic[0],
            traffic[2]
        );
        // Dirty state is table-size independent.
        assert!(rows.iter().all(|r| r.bytes_copied == rows[0].bytes_copied));
    }

    #[test]
    fn adaptive_granularity_coarsens_on_stream() {
        let (rows, _, final_granularity) = ablation_adaptive();
        assert!(
            final_granularity > 8,
            "Stream must trigger coarsening, ended at {final_granularity}"
        );
        // Coarser tracking reduces bitmap traffic on a dense workload.
        assert!(rows[1].bitmap_traffic <= rows[0].bitmap_traffic);
    }
}
