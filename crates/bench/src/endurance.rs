//! NVM write-volume (endurance) study.
//!
//! Section II of the paper argues that "considering the write-
//! intensive nature of the stack region, maintaining the stack in NVM
//! leads to performance and endurance issues" — one of the three
//! reasons to prefer a DRAM-resident stack with periodic checkpoints.
//! This study quantifies the argument on our model: the total NVM
//! write volume per mechanism is a direct proxy for cell wear.

use prosper_baselines::{DirtybitMechanism, RomulusMechanism, SspMechanism};
use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::{CheckpointManager, MemoryPersistence};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_trace::workloads::{Workload, WorkloadProfile};
use serde::Serialize;

use crate::report::Table;
use crate::scale::{DEFAULT_INTERVALS, INTERVAL_10MS, SEED, SSP_1MS};

/// One mechanism's endurance measurements.
#[derive(Clone, Debug, Serialize)]
pub struct EnduranceRow {
    /// Mechanism name.
    pub mechanism: String,
    /// NVM line writes over the run.
    pub nvm_line_writes: u64,
    /// Writes to the hottest NVM line.
    pub hottest_line_writes: u64,
}

fn run(profile: &WorkloadProfile, mech: &mut dyn MemoryPersistence) -> EnduranceRow {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL_10MS);
    let w = Workload::new(profile.clone(), SEED);
    mgr.run_stack_only(w, mech, DEFAULT_INTERVALS);
    let wear = machine.controller().nvm().wear_stats();
    EnduranceRow {
        mechanism: mech.name().to_string(),
        nvm_line_writes: wear.total_line_writes,
        hottest_line_writes: wear.max_line_writes,
    }
}

/// Runs the endurance comparison on Gapbs_pr (the stack-heaviest
/// workload): Prosper and Dirtybit (DRAM stack, checkpoint writes
/// only) vs Romulus and SSP (NVM-resident stack).
pub fn endurance_study() -> (Vec<EnduranceRow>, Table) {
    let profile = WorkloadProfile::gapbs_pr();
    let rows = vec![
        run(&profile, &mut ProsperMechanism::with_defaults()),
        run(&profile, &mut DirtybitMechanism::new()),
        run(&profile, &mut SspMechanism::new(SSP_1MS)),
        run(&profile, &mut RomulusMechanism::new()),
    ];
    let mut table = Table::new(
        "NVM write volume per mechanism (endurance proxy, Gapbs_pr)",
        &["mechanism", "NVM line writes", "hottest line"],
    );
    for r in &rows {
        table.push_row(&[
            r.mechanism.clone(),
            r.nvm_line_writes.to_string(),
            r.hottest_line_writes.to_string(),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpointing_writes_less_nvm_than_nvm_residence() {
        let (rows, _) = endurance_study();
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.mechanism.contains(n))
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        let prosper = by_name("Prosper");
        let romulus = by_name("Romulus");
        let ssp = by_name("SSP");
        assert!(
            prosper.nvm_line_writes < romulus.nvm_line_writes,
            "Prosper {} < Romulus {}",
            prosper.nvm_line_writes,
            romulus.nvm_line_writes
        );
        assert!(
            prosper.nvm_line_writes < ssp.nvm_line_writes,
            "Prosper {} < SSP {}",
            prosper.nvm_line_writes,
            ssp.nvm_line_writes
        );
        // Sub-page tracking also writes less than page-granularity
        // checkpointing.
        let dirtybit = by_name("Dirtybit");
        assert!(prosper.nvm_line_writes < dirtybit.nvm_line_writes);
    }

    #[test]
    fn all_mechanisms_write_something() {
        let (rows, _) = endurance_study();
        for r in &rows {
            assert!(r.nvm_line_writes > 0, "{} persisted nothing", r.mechanism);
            assert!(r.hottest_line_writes >= 1);
        }
    }
}
