//! Captures a checkpoint-timeline trace of a Prosper run for export
//! as a Chrome `trace_event` document (viewable in Perfetto or
//! `chrome://tracing`).
//!
//! The capture installs a dedicated telemetry context with a
//! ring-buffer sink, replays a workload under the Prosper mechanism,
//! and returns the recorded span/event stream plus the metrics the
//! run reported. Because each simulated run starts its clock at zero,
//! tracing one run at a time is what keeps the exported timeline
//! well-formed.

use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::{CheckpointManager, RunResult};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_telemetry as telemetry;
use prosper_telemetry::{Event, MetricsSnapshot, RingBufferSink, Telemetry};
use prosper_trace::workloads::{Workload, WorkloadProfile};

use crate::scale;

/// Everything a traced checkpoint run produced.
#[derive(Debug)]
pub struct TraceCapture {
    /// The span/instant event stream, in emission order.
    pub events: Vec<Event>,
    /// Metrics reported during the traced run.
    pub metrics: MetricsSnapshot,
    /// The run's aggregate result (for cross-checking).
    pub result: RunResult,
}

/// Runs `intervals` checkpoint intervals of the GAPBS PageRank
/// workload under Prosper with a telemetry context installed, and
/// returns the captured events and metrics.
///
/// Any previously installed telemetry context is replaced and the
/// capture's own context is uninstalled on return; callers install
/// their own context afterwards if they need one.
#[must_use]
pub fn capture_prosper_run(intervals: u64) -> TraceCapture {
    let (sink, handle) = RingBufferSink::new(1 << 20);
    telemetry::install(Telemetry::new(Box::new(sink)));
    // The machine must be built under the installed context so it
    // resolves its metric handles.
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, scale::INTERVAL_10MS);
    let mut mech = ProsperMechanism::with_defaults();
    let workload = Workload::new(WorkloadProfile::gapbs_pr(), scale::SEED);
    let result = mgr.run_stack_only(workload, &mut mech, intervals);
    let t = telemetry::uninstall().expect("capture context was installed");
    TraceCapture {
        events: handle.take(),
        metrics: t.registry().snapshot(),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_has_nested_checkpoint_phases() {
        let cap = capture_prosper_run(2);
        assert_eq!(cap.result.intervals, 2);
        if cap.events.is_empty() {
            // Telemetry compiled out (`enabled` feature off).
            return;
        }
        // Each interval must contain the Prosper phases nested inside
        // the manager's commit span.
        for phase in [
            "prosper.ckpt.quiesce",
            "prosper.ckpt.scan",
            "prosper.ckpt.copy",
            "prosper.ckpt.apply",
        ] {
            let begins = cap
                .events
                .iter()
                .filter(|e| matches!(e, Event::SpanBegin { name, .. } if name == phase))
                .count();
            assert_eq!(begins, 2, "{phase} once per interval");
        }
        let nested = cap.events.iter().any(
            |e| matches!(e, Event::SpanBegin { name, depth, .. } if name == "prosper.ckpt.quiesce" && *depth >= 2),
        );
        assert!(nested, "phases nest inside interval and commit spans");
        assert!(cap.metrics.counters.get("prosper.ckpt.intervals") == Some(&2));
    }

    #[test]
    fn chrome_export_is_parseable() {
        let cap = capture_prosper_run(1);
        let json = telemetry::chrome_trace(&cap.events);
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(doc["traceEvents"].as_array().is_some());
    }
}
