//! The end-to-end persistence-performance experiments: Figures 8–9
//! (Setup-I).

use prosper_baselines::{DirtybitMechanism, RomulusMechanism, SspMechanism};
use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::{CheckpointManager, MemoryPersistence, NoPersistence};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_trace::workloads::{Workload, WorkloadProfile};
use serde::Serialize;

use crate::report::{ratio, Table};
use crate::scale::{DEFAULT_INTERVALS, INTERVAL_10MS, SEED, SSP_100US, SSP_10US, SSP_1MS};

/// Heap region used for whole-memory persistence (matches the
/// workloads' heap base and largest footprint).
fn heap_region() -> VirtRange {
    VirtRange::new(
        VirtAddr::new(0x5555_0000_0000),
        VirtAddr::new(0x5555_2000_0000),
    )
}

/// Runs one workload with a stack mechanism (and optional heap
/// mechanism), returning total cycles.
fn run_config(
    profile: &WorkloadProfile,
    stack_mech: &mut dyn MemoryPersistence,
    heap_mech: Option<&mut dyn MemoryPersistence>,
) -> u64 {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL_10MS);
    let w = Workload::new(profile.clone(), SEED);
    let res = mgr.run(w, stack_mech, heap_mech, heap_region(), DEFAULT_INTERVALS);
    res.total_cycles
}

/// One Figure 8 row: a workload's normalized execution time under
/// each stack-persistence mechanism.
#[derive(Clone, Debug, Serialize)]
pub struct Fig8Row {
    /// Workload name.
    pub workload: String,
    /// Normalized execution time per mechanism, `(name, ratio)`.
    pub mechanisms: Vec<(String, f64)>,
}

impl Fig8Row {
    /// Normalized time of the named mechanism.
    pub fn of(&self, name: &str) -> f64 {
        self.mechanisms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("mechanism {name} missing"))
    }
}

/// Figure 8: stack-persistence overhead of Romulus, SSP (three
/// consolidation intervals), Dirtybit, and Prosper, normalized to
/// no-persistence execution time.
pub fn fig8() -> (Vec<Fig8Row>, Table) {
    let mut rows = Vec::new();
    for profile in WorkloadProfile::applications() {
        let baseline = run_config(&profile, &mut NoPersistence, None) as f64;
        let mut mechanisms: Vec<(String, f64)> = Vec::new();

        let mut romulus = RomulusMechanism::new();
        mechanisms.push((
            "Romulus".into(),
            run_config(&profile, &mut romulus, None) as f64 / baseline,
        ));
        for (mk, label) in [
            (SSP_10US, "SSP-10us"),
            (SSP_100US, "SSP-100us"),
            (SSP_1MS, "SSP-1ms"),
        ] {
            let mut ssp = SspMechanism::new(mk);
            mechanisms.push((
                label.into(),
                run_config(&profile, &mut ssp, None) as f64 / baseline,
            ));
        }
        let mut dirtybit = DirtybitMechanism::new();
        mechanisms.push((
            "Dirtybit".into(),
            run_config(&profile, &mut dirtybit, None) as f64 / baseline,
        ));
        let mut prosper = ProsperMechanism::with_defaults();
        mechanisms.push((
            "Prosper".into(),
            run_config(&profile, &mut prosper, None) as f64 / baseline,
        ));

        rows.push(Fig8Row {
            workload: profile.name.to_string(),
            mechanisms,
        });
    }
    let mut table = Table::new(
        "Figure 8: stack persistence — execution time normalized to no persistence",
        &[
            "workload",
            "Romulus",
            "SSP-10us",
            "SSP-100us",
            "SSP-1ms",
            "Dirtybit",
            "Prosper",
        ],
    );
    for r in &rows {
        table.push_row(&[
            r.workload.clone(),
            ratio(r.of("Romulus")),
            ratio(r.of("SSP-10us")),
            ratio(r.of("SSP-100us")),
            ratio(r.of("SSP-1ms")),
            ratio(r.of("Dirtybit")),
            ratio(r.of("Prosper")),
        ]);
    }
    (rows, table)
}

/// One Figure 9 row: whole-memory (heap + stack) persistence.
#[derive(Clone, Debug, Serialize)]
pub struct Fig9Row {
    /// Workload name.
    pub workload: String,
    /// SSP consolidation label this row belongs to.
    pub ssp_interval: String,
    /// SSP for both heap and stack.
    pub ssp_only: f64,
    /// SSP heap + Dirtybit stack.
    pub ssp_dirtybit: f64,
    /// SSP heap + Prosper stack.
    pub ssp_prosper: f64,
}

/// Figure 9: memory-state persistence with SSP on the heap and
/// {SSP, Dirtybit, Prosper} on the stack, for the three consolidation
/// intervals.
pub fn fig9() -> (Vec<Fig9Row>, Table) {
    let mut rows = Vec::new();
    for profile in WorkloadProfile::applications() {
        let baseline = run_config(&profile, &mut NoPersistence, None) as f64;
        for (mk, label) in [(SSP_10US, "10us"), (SSP_100US, "100us"), (SSP_1MS, "1ms")] {
            let ssp_only = {
                let mut stack = SspMechanism::new(mk);
                let mut heap = SspMechanism::new(mk);
                run_config(&profile, &mut stack, Some(&mut heap)) as f64 / baseline
            };
            let ssp_dirtybit = {
                let mut stack = DirtybitMechanism::new();
                let mut heap = SspMechanism::new(mk);
                run_config(&profile, &mut stack, Some(&mut heap)) as f64 / baseline
            };
            let ssp_prosper = {
                let mut stack = ProsperMechanism::with_defaults();
                let mut heap = SspMechanism::new(mk);
                run_config(&profile, &mut stack, Some(&mut heap)) as f64 / baseline
            };
            rows.push(Fig9Row {
                workload: profile.name.to_string(),
                ssp_interval: label.to_string(),
                ssp_only,
                ssp_dirtybit,
                ssp_prosper,
            });
        }
    }
    let mut table = Table::new(
        "Figure 9: memory persistence (heap via SSP) — execution time \
         normalized to no persistence",
        &[
            "workload",
            "SSP intvl",
            "SSP",
            "SSP+Dirtybit",
            "SSP+Prosper",
        ],
    );
    for r in &rows {
        table.push_row(&[
            r.workload.clone(),
            r.ssp_interval.clone(),
            ratio(r.ssp_only),
            ratio(r.ssp_dirtybit),
            ratio(r.ssp_prosper),
        ]);
    }
    (rows, table)
}

/// One row of the Prosper-everywhere extension study.
#[derive(Clone, Debug, Serialize)]
pub struct ProsperHeapRow {
    /// Workload name.
    pub workload: String,
    /// SSP-1ms heap + Prosper stack (the paper's best combination).
    pub ssp_heap: f64,
    /// Prosper tracking both heap and stack (the generality claim of
    /// Section III: "we can use Prosper to track modifications to
    /// dynamically allocated virtual address range in the heap").
    pub prosper_heap: f64,
}

/// Extension: Prosper tracking the heap range as well as the stack,
/// against the paper's SSP-heap combination.
pub fn prosper_everywhere() -> (Vec<ProsperHeapRow>, Table) {
    let mut rows = Vec::new();
    for profile in WorkloadProfile::applications() {
        let baseline = run_config(&profile, &mut NoPersistence, None) as f64;
        let ssp_heap = {
            let mut stack = ProsperMechanism::with_defaults();
            let mut heap = SspMechanism::new(SSP_1MS);
            run_config(&profile, &mut stack, Some(&mut heap)) as f64 / baseline
        };
        let prosper_heap = {
            let mut stack = ProsperMechanism::with_defaults();
            let mut heap = ProsperMechanism::with_defaults();
            run_config(&profile, &mut stack, Some(&mut heap)) as f64 / baseline
        };
        rows.push(ProsperHeapRow {
            workload: profile.name.to_string(),
            ssp_heap,
            prosper_heap,
        });
    }
    let mut table = Table::new(
        "Extension: Prosper on the heap too, vs SSP-1ms heap (stack via Prosper in both)",
        &["workload", "SSP-1ms heap", "Prosper heap"],
    );
    for r in &rows {
        table.push_row(&[r.workload.clone(), ratio(r.ssp_heap), ratio(r.prosper_heap)]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_ordering_matches_paper() {
        let (rows, _) = fig8();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            let prosper = r.of("Prosper");
            assert!(
                prosper < r.of("Romulus"),
                "{}: Prosper beats Romulus",
                r.workload
            );
            assert!(
                prosper < r.of("SSP-10us"),
                "{}: Prosper beats SSP-10us",
                r.workload
            );
            assert!(
                prosper < r.of("SSP-1ms"),
                "{}: Prosper beats SSP-1ms",
                r.workload
            );
            assert!(
                r.of("SSP-10us") >= r.of("SSP-1ms"),
                "{}: SSP overhead falls with a longer consolidation interval",
                r.workload
            );
            assert!(
                prosper <= r.of("Dirtybit") * 1.05,
                "{}: Prosper at least matches Dirtybit on applications",
                r.workload
            );
            assert!(prosper >= 1.0, "persistence is never free");
        }
    }

    #[test]
    fn prosper_heap_competitive_with_ssp_heap() {
        let (rows, _) = prosper_everywhere();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.prosper_heap <= r.ssp_heap * 1.05,
                "{}: Prosper-heap {} vs SSP-heap {}",
                r.workload,
                r.prosper_heap,
                r.ssp_heap
            );
            assert!(r.prosper_heap >= 1.0);
        }
    }

    #[test]
    fn fig9_prosper_combo_wins() {
        let (rows, _) = fig9();
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.ssp_prosper <= r.ssp_only,
                "{} ({}): SSP+Prosper beats SSP-everywhere",
                r.workload,
                r.ssp_interval
            );
            assert!(
                r.ssp_prosper <= r.ssp_dirtybit * 1.05,
                "{} ({}): SSP+Prosper at least matches SSP+Dirtybit",
                r.workload,
                r.ssp_interval
            );
        }
    }
}
