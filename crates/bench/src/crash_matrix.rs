//! Crash-matrix harness: drives the exhaustive crash-point sweep of
//! [`prosper_core::faultinject`] over a set of workload shapes and
//! aggregates the results for reporting.
//!
//! This is the artifact-style counterpart of the paper's "kill gem5
//! mid-run and check the application resumes" validation: instead of a
//! handful of manual kills, every step boundary of the checkpoint
//! pipeline is enumerated and crashed exactly once, per workload
//! shape. Results are mirrored into telemetry counters
//! (`prosper.crashmatrix.*`) when a context is installed.

use std::collections::BTreeMap;

use prosper_core::faultinject::{
    enumerate_crash_sites, run_crash_attributed, run_crash_matrix, CrashMatrixConfig,
    CrashMatrixReport,
};
use prosper_core::SpineConfig;
use prosper_gemos::crash::CrashSite;
use prosper_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// One suite entry: a labelled workload shape and its sweep result.
#[derive(Debug)]
pub struct MatrixRow {
    /// Human-readable shape label (e.g. `2t x 3iv`).
    pub label: String,
    /// The workload shape that was swept.
    pub cfg: CrashMatrixConfig,
    /// The sweep result.
    pub report: CrashMatrixReport,
}

/// Coverage of one crash-site kind within a sweep.
#[derive(Debug)]
pub struct KindCoverage {
    /// The site kind (the variant name, without per-site parameters).
    pub kind: &'static str,
    /// Crash points of this kind that were exercised.
    pub exercised: u64,
    /// Of those, how many failed verification.
    pub failed: u64,
}

/// The crash-site kind: variant name without the per-site parameters,
/// for coverage reporting.
pub fn site_kind(site: &CrashSite) -> &'static str {
    match site {
        CrashSite::PreStage => "pre-stage",
        CrashSite::MidStage { .. } => "mid-stage",
        CrashSite::PreSeal => "pre-seal",
        CrashSite::PostSeal => "post-seal",
        CrashSite::MidApply { .. } => "mid-apply",
        CrashSite::MidPipelineStage { .. } => "mid-pipeline-stage",
        CrashSite::PostApplyThread { .. } => "post-apply-thread",
        CrashSite::PostApplyPreRegisters => "post-apply-pre-registers",
        CrashSite::MidRegisterApply { .. } => "mid-register-apply",
        CrashSite::PostCommit => "post-commit",
        CrashSite::MidBitmapClear { .. } => "mid-bitmap-clear",
        CrashSite::MidSwitchSave => "mid-switch-save",
        CrashSite::MidSwitchRestore => "mid-switch-restore",
        CrashSite::BatchSeal { .. } => "batch-seal",
        CrashSite::MidMerge { .. } => "mid-merge",
        CrashSite::MergeRetire { .. } => "merge-retire",
        CrashSite::AllocSubtreePersist { .. } => "alloc-subtree-persist",
        CrashSite::AllocReservationSteal { .. } => "alloc-reservation-steal",
    }
}

/// Per-kind coverage of one sweep, in taxonomy order.
pub fn kind_coverage(report: &CrashMatrixReport) -> Vec<KindCoverage> {
    let order = [
        "pre-stage",
        "mid-stage",
        "pre-seal",
        "post-seal",
        "mid-apply",
        "mid-pipeline-stage",
        "post-apply-thread",
        "post-apply-pre-registers",
        "mid-register-apply",
        "post-commit",
        "mid-bitmap-clear",
        "mid-switch-save",
        "mid-switch-restore",
        "batch-seal",
        "mid-merge",
        "merge-retire",
        "alloc-subtree-persist",
        "alloc-reservation-steal",
    ];
    order
        .iter()
        .map(|kind| KindCoverage {
            kind,
            exercised: report
                .sites
                .iter()
                .filter(|s| site_kind(s) == *kind)
                .count() as u64,
            failed: report
                .failures
                .iter()
                .filter(|f| site_kind(&f.site) == *kind)
                .count() as u64,
        })
        .collect()
}

/// The workload shapes the default sweep covers: single-thread,
/// multi-thread, and a longer multi-interval run.
pub fn default_suite() -> Vec<(&'static str, CrashMatrixConfig)> {
    vec![
        (
            "1 thread x 2 intervals",
            CrashMatrixConfig {
                threads: 1,
                intervals: 2,
                stores_per_interval: 8,
                ..Default::default()
            },
        ),
        (
            "2 threads x 3 intervals",
            CrashMatrixConfig {
                threads: 2,
                intervals: 3,
                stores_per_interval: 12,
                ..Default::default()
            },
        ),
        (
            "3 threads x 2 intervals",
            CrashMatrixConfig {
                threads: 3,
                intervals: 2,
                stores_per_interval: 10,
                seed: 0xC0FF_EE00,
                ..Default::default()
            },
        ),
        (
            "2 threads x 2 intervals + pipelined pair",
            CrashMatrixConfig {
                threads: 2,
                intervals: 2,
                stores_per_interval: 10,
                pipelined_epilogue: true,
                ..Default::default()
            },
        ),
        (
            "2 threads x 3 intervals + spine merge-always",
            CrashMatrixConfig {
                threads: 2,
                intervals: 3,
                stores_per_interval: 10,
                spine: Some(SpineConfig::merge_always()),
                ..Default::default()
            },
        ),
        (
            "2 threads x 3 intervals + lazy spine",
            CrashMatrixConfig {
                threads: 2,
                intervals: 3,
                stores_per_interval: 8,
                spine: Some(SpineConfig::lazy(64)),
                ..Default::default()
            },
        ),
        (
            "2 threads x 2 intervals + allocator epilogue",
            CrashMatrixConfig {
                threads: 2,
                intervals: 2,
                stores_per_interval: 8,
                alloc_epilogue: true,
                ..Default::default()
            },
        ),
    ]
}

/// A reduced suite for quick smoke runs (CI micro workloads).
pub fn quick_suite() -> Vec<(&'static str, CrashMatrixConfig)> {
    vec![
        (
            "1 thread x 2 intervals",
            CrashMatrixConfig {
                threads: 1,
                intervals: 2,
                stores_per_interval: 5,
                ..Default::default()
            },
        ),
        (
            "2 threads x 2 intervals",
            CrashMatrixConfig {
                threads: 2,
                intervals: 2,
                stores_per_interval: 6,
                ..Default::default()
            },
        ),
        (
            "2 threads x 1 interval + pipelined pair",
            CrashMatrixConfig {
                threads: 2,
                intervals: 1,
                stores_per_interval: 5,
                pipelined_epilogue: true,
                ..Default::default()
            },
        ),
        (
            "2 threads x 2 intervals + spine merge-always",
            CrashMatrixConfig {
                threads: 2,
                intervals: 2,
                stores_per_interval: 5,
                spine: Some(SpineConfig::merge_always()),
                ..Default::default()
            },
        ),
        (
            "1 thread x 1 interval + allocator epilogue",
            CrashMatrixConfig {
                threads: 1,
                intervals: 1,
                stores_per_interval: 4,
                alloc_epilogue: true,
                ..Default::default()
            },
        ),
    ]
}

/// Runs every shape of `suite` through the exhaustive sweep,
/// reporting aggregate counters into telemetry (if a context is
/// installed): `prosper.crashmatrix.sites`, `.survived`, `.failures`.
pub fn run_suite(suite: &[(&'static str, CrashMatrixConfig)]) -> Vec<MatrixRow> {
    let rows: Vec<MatrixRow> = suite
        .iter()
        .map(|(label, cfg)| MatrixRow {
            label: (*label).to_string(),
            cfg: *cfg,
            report: run_crash_matrix(cfg),
        })
        .collect();
    telemetry::with(|t| {
        let reg = t.registry();
        for row in &rows {
            reg.counter("prosper.crashmatrix.sites")
                .add(row.report.total());
            reg.counter("prosper.crashmatrix.survived")
                .add(row.report.survived);
            reg.counter("prosper.crashmatrix.failures")
                .add(row.report.failures.len() as u64);
        }
    });
    rows
}

/// Schema tag of the crash-matrix attribution archive.
pub const MATRIX_ATTR_SCHEMA: &str = "prosper-crashmatrix-attribution/v1";

/// Attribution aggregate of one workload shape's full sweep: every
/// enumerated crash point re-run with a stall accountant attached.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatrixAttributionRow {
    /// The shape label.
    pub label: String,
    /// Crash points swept (and conservation-verified) for this shape.
    pub points: u64,
    /// Total stall ns per cause, summed across all points' ledgers.
    pub by_cause: BTreeMap<String, u64>,
    /// Total attributed stall ns across all points.
    pub stall_ns: u64,
    /// Total simulated wall ns across all points' runs.
    pub wall_ns: u64,
}

/// Attribution archive of a full matrix sweep, written by the
/// `crash_matrix` binary's `--telemetry-snapshot` flag.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatrixAttribution {
    /// Always [`MATRIX_ATTR_SCHEMA`].
    pub schema: String,
    /// One row per workload shape, in suite order.
    pub rows: Vec<MatrixAttributionRow>,
}

/// Re-runs every crash point of every shape with a stall accountant
/// attached, verifies the conservation invariant at each point
/// (torn commits and recovery replays included), and aggregates the
/// cause-tagged totals into an archive.
///
/// Deterministic: equal suites produce byte-identical archives.
///
/// # Errors
///
/// Returns the first recovery-invariant or conservation violation.
pub fn attributed_sweep(
    suite: &[(&'static str, CrashMatrixConfig)],
) -> Result<MatrixAttribution, String> {
    let mut rows = Vec::new();
    for (label, cfg) in suite {
        let sites = enumerate_crash_sites(cfg);
        let mut row = MatrixAttributionRow {
            label: (*label).to_string(),
            ..Default::default()
        };
        for index in 0..sites.len() as u64 {
            let (_, run) = run_crash_attributed(cfg, index)
                .map_err(|e| format!("{label}: crash at {index}: {e}"))?;
            run.snapshot
                .verify_conservation()
                .map_err(|e| format!("{label}: crash at {index}: {e}"))?;
            for (_, totals) in run.snapshot.per_thread() {
                for (cause, ns) in &totals.by_cause {
                    *row.by_cause.entry(cause.clone()).or_insert(0) += ns;
                }
                row.stall_ns += totals.window_ns;
            }
            row.wall_ns += run.total_cycles;
            row.points += 1;
        }
        rows.push(row);
    }
    Ok(MatrixAttribution {
        schema: MATRIX_ATTR_SCHEMA.to_string(),
        rows,
    })
}

/// Result of the probed-allocator conformance sweep.
#[derive(Debug)]
pub struct AllocConformance {
    /// Workload shapes swept.
    pub shapes: usize,
    /// Probed allocator operations recorded across all shapes.
    pub ops: u64,
    /// Protocol atomics recorded across all shapes.
    pub events: u64,
    /// Durable persist epochs whose crash images were enumerated.
    pub epochs: u64,
}

/// Sweeps the *real* `FrameAlloc` under concurrent probed load and
/// validates every recorded linearization with the allocator model's
/// history checker, then enumerates every seal-consistent post-crash
/// image of each persist epoch — the crash matrix's counterpart of
/// `prosper-allocmodel`'s exhaustive model runs, executed against the
/// shipping allocator instead of its model.
///
/// # Errors
///
/// Returns the first checker violation, labelled with its shape.
pub fn alloc_conformance_sweep(quick: bool) -> Result<AllocConformance, String> {
    use prosper_analysis::allocmodel::{
        check_alloc_history, check_crash_images, probe_trace, AllocTraceEvent, DurableStore,
        HistoryContext,
    };
    use prosper_gemos::llalloc::{AllocProbe, DurableAllocTree, FrameAlloc, SUBTREE_FRAMES};
    use prosper_gemos::physmem::Pool;
    use prosper_memsim::{config::MemoryLayout, PAGE_SIZE};

    // (workers, NVM subtrees, allocs per worker) — enough contention
    // to exercise reservation steals and frees racing the persist
    // thread.
    let shapes: &[(u32, u64, usize)] = if quick {
        &[(2, 1, 24)]
    } else {
        &[(2, 1, 24), (3, 2, 48), (4, 2, 64)]
    };
    let mut out = AllocConformance {
        shapes: shapes.len(),
        ops: 0,
        events: 0,
        epochs: 0,
    };
    for &(workers, subtrees, allocs) in shapes {
        let label = format!("{workers}w x {subtrees}st x {allocs}a");
        let a = FrameAlloc::new(MemoryLayout {
            dram_bytes: 0,
            nvm_bytes: subtrees * SUBTREE_FRAMES * PAGE_SIZE,
        });
        let probe = AllocProbe::new();
        let mut durable = DurableAllocTree::new();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (a, probe) = (&a, &probe);
                scope.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..allocs {
                        if let Ok(pfn) = a.alloc_for_probed(Pool::Nvm, w, probe) {
                            held.push(pfn);
                        }
                        if i % 3 == 0 && !held.is_empty() {
                            let pfn = held.remove(0);
                            let _ = a.free_probed(pfn, probe);
                        }
                    }
                    for pfn in held {
                        let _ = a.free_probed(pfn, probe);
                    }
                });
            }
            scope.spawn(|| {
                let mut d = DurableAllocTree::new();
                a.persist_nvm_probed(&mut d, &probe);
                a.persist_nvm_probed(&mut d, &probe);
                durable = d;
            });
        });
        let trace = probe_trace(&probe);
        let ctx = HistoryContext {
            total_frames: subtrees * SUBTREE_FRAMES,
            base_pfn: a.nvm_base_pfn(),
            frames_per_subtree: SUBTREE_FRAMES,
            subtrees: a.nvm_subtrees(),
            words_per_seal: a.nvm_bitmap_words(),
            enforce_serial_policy: false,
        };
        if let Some(v) = check_alloc_history(&trace, &ctx).first() {
            return Err(format!("{label}: trace rejected: {v}"));
        }
        for epoch in 1..=durable.committed_sequence() {
            let log: Vec<DurableStore> = trace
                .iter()
                .filter_map(|e| match *e {
                    AllocTraceEvent::StageWord { seq, word, value } if seq == epoch => {
                        Some(DurableStore::Word {
                            idx: word as usize,
                            val: value,
                        })
                    }
                    AllocTraceEvent::Seal { seq } if seq == epoch => Some(DurableStore::Seal),
                    _ => None,
                })
                .collect();
            let base = vec![0u64; a.nvm_bitmap_words()];
            if let Some(t) = check_crash_images(&base, &log).first() {
                return Err(format!("{label}: epoch {epoch}: {t}"));
            }
            out.epochs += 1;
        }
        // Every completed op opens with exactly one of these events.
        out.ops += trace
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    AllocTraceEvent::Gate { .. }
                        | AllocTraceEvent::Oom { .. }
                        | AllocTraceEvent::FreeClear { .. }
                )
            })
            .count() as u64;
        out.events += trace.len() as u64;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_telemetry::{NoopSink, Telemetry};

    #[test]
    fn alloc_conformance_sweep_passes_quick() {
        let r = alloc_conformance_sweep(true).expect("probed allocator trace conforms");
        assert_eq!(r.shapes, 1);
        assert!(r.ops > 0, "no probed operations recorded");
        assert!(r.events > r.ops, "protocol atomics outnumber operations");
        assert_eq!(r.epochs, 2, "both persist epochs crash-image checked");
    }

    #[test]
    fn attributed_sweep_conserves_and_is_deterministic() {
        let suite = [(
            "tiny",
            CrashMatrixConfig {
                threads: 1,
                intervals: 1,
                stores_per_interval: 4,
                ..Default::default()
            },
        )];
        let a = attributed_sweep(&suite).expect("sweep conserves");
        let b = attributed_sweep(&suite).expect("sweep conserves");
        assert_eq!(a, b);
        assert_eq!(a.schema, MATRIX_ATTR_SCHEMA);
        let row = &a.rows[0];
        assert!(row.points > 0);
        assert_eq!(row.stall_ns, row.by_cause.values().sum::<u64>());
        assert!(
            row.by_cause.contains_key("recovery"),
            "post-seal crash points attribute recovery: {:?}",
            row.by_cause
        );
        assert!(row.stall_ns <= row.wall_ns);
    }

    #[test]
    fn quick_suite_survives_everything() {
        telemetry::install(Telemetry::new(Box::new(NoopSink)));
        let rows = run_suite(&quick_suite());
        let t = telemetry::uninstall().expect("context was installed");
        let mut total = 0;
        for row in &rows {
            assert!(
                row.report.all_survived(),
                "{}: {:?}",
                row.label,
                row.report.failures.first()
            );
            total += row.report.total();
        }
        let snap = t.registry().snapshot();
        assert_eq!(snap.counters.get("prosper.crashmatrix.sites"), Some(&total));
        assert_eq!(
            snap.counters.get("prosper.crashmatrix.survived"),
            Some(&total)
        );
        assert_eq!(snap.counters.get("prosper.crashmatrix.failures"), Some(&0));
    }

    #[test]
    fn kind_coverage_spans_the_taxonomy() {
        // The pipelined epilogue is the only schedule that crosses the
        // overlap window (mid-pipeline-stage); the spine schedule is
        // the only one that crosses batch-seal/mid-merge/merge-retire.
        // Together the two shapes cover the whole taxonomy.
        let eager_cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 2,
            stores_per_interval: 6,
            pipelined_epilogue: true,
            alloc_epilogue: true,
            ..Default::default()
        };
        let spine_cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 2,
            stores_per_interval: 6,
            spine: Some(SpineConfig::merge_always()),
            ..Default::default()
        };
        let eager_cov = kind_coverage(&run_crash_matrix(&eager_cfg));
        let spine_cov = kind_coverage(&run_crash_matrix(&spine_cfg));
        assert_eq!(eager_cov.len(), 18, "one row per site kind");
        assert_eq!(spine_cov.len(), 18, "one row per site kind");
        for (e, s) in eager_cov.iter().zip(&spine_cov) {
            assert!(
                e.exercised + s.exercised > 0,
                "kind {} never exercised by either schedule",
                e.kind
            );
            assert_eq!(e.failed + s.failed, 0, "kind {} has failures", e.kind);
        }
        let exercised = |cov: &[KindCoverage], kind: &str| {
            cov.iter().find(|k| k.kind == kind).unwrap().exercised
        };
        // Schedule exclusivity: the apply copy exists only on the
        // eager schedule, the spine sites only on the spine schedule.
        assert_eq!(exercised(&spine_cov, "mid-apply"), 0);
        assert_eq!(exercised(&eager_cov, "batch-seal"), 0);
        assert!(exercised(&spine_cov, "batch-seal") > 0);
        assert!(exercised(&spine_cov, "mid-merge") > 0);
        assert!(exercised(&spine_cov, "merge-retire") > 0);
        // The allocator sites exist only on the allocator epilogue.
        assert_eq!(exercised(&spine_cov, "alloc-subtree-persist"), 0);
        assert!(exercised(&eager_cov, "alloc-subtree-persist") > 0);
        assert!(exercised(&eager_cov, "alloc-reservation-steal") > 0);
    }
}
