//! Concurrent per-core tracking study.
//!
//! Prosper instantiates one dirty tracker per core (Section III-D);
//! with several persistent applications running on different cores,
//! each tracker injects its own bitmap traffic into the shared L3 and
//! memory bus. This study runs one workload per core — with and
//! without tracking — and reports each core's slowdown, verifying that
//! per-core tracking does not compound across cores.

use prosper_core::tracker::{DirtyTracker, TrackerConfig};
use prosper_memsim::addr::VirtAddr;
use prosper_memsim::config::MachineConfig;
use prosper_memsim::multicore::MultiCoreMachine;
use prosper_memsim::Cycles;
use prosper_trace::record::{AccessKind, Region, TraceEvent};
use prosper_trace::source::TraceSource;
use prosper_trace::stack::StackModel;
use prosper_trace::workloads::{Workload, WorkloadProfile};
use serde::Serialize;

use crate::report::Table;
use crate::scale::SEED;

/// One core's measurements.
#[derive(Clone, Debug, Serialize)]
pub struct CoreRow {
    /// Core index.
    pub core: usize,
    /// Workload on the core.
    pub workload: String,
    /// Core cycles without tracking.
    pub base_cycles: Cycles,
    /// Core cycles with its tracker active.
    pub tracked_cycles: Cycles,
}

impl CoreRow {
    /// Tracked/untracked slowdown (≥ 1.0 − ε).
    pub fn slowdown(&self) -> f64 {
        self.tracked_cycles as f64 / self.base_cycles as f64
    }
}

fn run(profiles: &[WorkloadProfile], ops_per_core: u64, tracked: bool) -> Vec<Cycles> {
    let mut machine = MultiCoreMachine::new(MachineConfig::setup_i(), profiles.len());
    let mut workloads: Vec<Workload> = Vec::new();
    let mut trackers: Vec<DirtyTracker> = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        let top = VirtAddr::new(0x7000_0000_0000 + (i as u64) * 0x1_0000_0000);
        let stack = StackModel::with_layout(i as u32, top, 8 * 1024 * 1024);
        let mut tracker = DirtyTracker::new(TrackerConfig::default());
        tracker.configure(
            stack.reserved_range(),
            VirtAddr::new(0x1000_0000 + (i as u64) * 0x100_0000),
        );
        workloads.push(Workload::with_stack(p.clone(), SEED + i as u64, stack));
        trackers.push(tracker);
    }

    // Interleave the cores round-robin so bus contention overlaps.
    for _ in 0..ops_per_core {
        for c in 0..profiles.len() {
            match workloads[c].next_event() {
                TraceEvent::Compute(cy) => machine.advance(c, cy),
                TraceEvent::Access(a) => {
                    match a.kind {
                        AccessKind::Load => machine.load(c, a.vaddr, u64::from(a.size)),
                        AccessKind::Store => machine.store(c, a.vaddr, u64::from(a.size)),
                    };
                    if tracked && a.region == Region::Stack && a.kind == AccessKind::Store {
                        let ops = trackers[c].observe_store(a.vaddr, u64::from(a.size));
                        for op in ops {
                            match op {
                                prosper_core::lookup::BitmapOp::Load(addr) => {
                                    machine.inject_load(c, VirtAddr::new(addr), 4)
                                }
                                prosper_core::lookup::BitmapOp::Store(addr, _) => {
                                    machine.inject_store(c, VirtAddr::new(addr), 4)
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (0..profiles.len()).map(|c| machine.now(c)).collect()
}

/// Runs the per-core tracking study on the three application
/// workloads, one per core.
pub fn multicore_study(ops_per_core: u64) -> (Vec<CoreRow>, Table) {
    let profiles = WorkloadProfile::applications();
    let base = run(&profiles, ops_per_core, false);
    let tracked = run(&profiles, ops_per_core, true);
    let rows: Vec<CoreRow> = profiles
        .iter()
        .enumerate()
        .map(|(core, p)| CoreRow {
            core,
            workload: p.name.to_string(),
            base_cycles: base[core],
            tracked_cycles: tracked[core],
        })
        .collect();
    let mut table = Table::new(
        "Concurrent per-core tracking: core slowdown with all trackers active",
        &[
            "core",
            "workload",
            "base cycles",
            "tracked cycles",
            "slowdown",
        ],
    );
    for r in &rows {
        table.push_row(&[
            r.core.to_string(),
            r.workload.clone(),
            r.base_cycles.to_string(),
            r.tracked_cycles.to_string(),
            format!("{:.4}", r.slowdown()),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_tracking_overhead_stays_small() {
        let (rows, _) = multicore_study(60_000);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            let s = r.slowdown();
            assert!(
                (0.99..1.10).contains(&s),
                "core {} ({}): slowdown {s}",
                r.core,
                r.workload
            );
        }
    }

    #[test]
    fn cores_progress_independently() {
        let (rows, _) = multicore_study(20_000);
        // Different workloads have different memory intensity, so
        // their core clocks differ.
        assert!(rows[0].base_cycles != rows[2].base_cycles);
    }
}
