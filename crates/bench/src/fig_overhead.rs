//! The tracking-overhead and sensitivity experiments: Figures 12–13
//! (Setup-II, Linux + kernel thread in the paper).

use prosper_core::lookup::LookupStats;
use prosper_core::tracker::TrackerConfig;
use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::{CheckpointManager, NoPersistence};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_trace::interval::IntervalCollector;
use prosper_trace::micro::{MicroBench, MicroSpec};
use prosper_trace::record::TraceEvent;
use prosper_trace::source::TraceSource;
use prosper_trace::workloads::{Workload, WorkloadProfile};
use serde::Serialize;

use crate::report::Table;
use crate::scale::{DEFAULT_INTERVALS, INTERVAL_10MS, SEED};

/// Granularities swept in Figure 12.
pub const FIG12_GRANULARITIES: [u64; 3] = [8, 64, 128];

/// One Figure 12 row.
#[derive(Clone, Debug, Serialize)]
pub struct Fig12Row {
    /// Benchmark name.
    pub benchmark: String,
    /// User-mode speedup (tracked / untracked, >0.9; ~0.99 in the
    /// paper) per granularity in [`FIG12_GRANULARITIES`] order.
    pub speedups: Vec<f64>,
}

/// Factory producing a fresh instance of one Figure 12 trace source.
type SourceFactory = Box<dyn FnMut() -> Box<dyn TraceSource>>;

/// Sources for the Figure 12 set: SPEC + graph workloads + Stream.
fn fig12_sources() -> Vec<(String, SourceFactory)> {
    let mut out: Vec<(String, SourceFactory)> = Vec::new();
    for profile in WorkloadProfile::tracking_overhead_set() {
        let name = profile.name.to_string();
        let p = profile.clone();
        out.push((
            name,
            Box::new(move || Box::new(Workload::new(p.clone(), SEED))),
        ));
    }
    out.push((
        "Stream".to_string(),
        Box::new(|| {
            Box::new(MicroBench::new(
                MicroSpec::Stream {
                    array_bytes: 64 * 1024,
                },
                SEED,
            ))
        }),
    ));
    out
}

/// Runs the workload and returns user-mode cycles (total minus
/// checkpoint time), with or without Prosper tracking.
fn user_cycles(source: Box<dyn TraceSource>, granularity: Option<u64>) -> u64 {
    struct BoxedSource(Box<dyn TraceSource>);
    impl TraceSource for BoxedSource {
        fn next_event(&mut self) -> TraceEvent {
            self.0.next_event()
        }
        fn name(&self) -> &'static str {
            "boxed"
        }
        fn stack(&self) -> &prosper_trace::stack::StackModel {
            self.0.stack()
        }
    }
    let mut machine = Machine::new(MachineConfig::setup_ii());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL_10MS);
    let res = match granularity {
        Some(g) => {
            let mut mech = ProsperMechanism::new(TrackerConfig::default().with_granularity(g));
            mgr.run_stack_only(BoxedSource(source), &mut mech, DEFAULT_INTERVALS)
        }
        None => mgr.run_stack_only(BoxedSource(source), &mut NoPersistence, DEFAULT_INTERVALS),
    };
    res.total_cycles - res.checkpoint_cycles
}

/// Figure 12: user-mode performance with Prosper dirty tracking,
/// relative to no tracking, at 8/64/128-byte granularity.
pub fn fig12() -> (Vec<Fig12Row>, Table) {
    let mut rows = Vec::new();
    for (name, mut make) in fig12_sources() {
        let base = user_cycles(make(), None) as f64;
        let speedups = FIG12_GRANULARITIES
            .iter()
            .map(|&g| base / user_cycles(make(), Some(g)) as f64)
            .collect();
        rows.push(Fig12Row {
            benchmark: name,
            speedups,
        });
    }
    let mut table = Table::new(
        "Figure 12: user-mode speedup with Prosper tracking vs no tracking \
         (1.00 = no overhead; paper: <1% average overhead)",
        &["benchmark", "8B", "64B", "128B"],
    );
    for r in &rows {
        table.push_row(&[
            r.benchmark.clone(),
            format!("{:.4}", r.speedups[0]),
            format!("{:.4}", r.speedups[1]),
            format!("{:.4}", r.speedups[2]),
        ]);
    }
    (rows, table)
}

/// HWM values swept in Figure 13 (LWM fixed at 4).
pub const HWM_SWEEP: [u32; 4] = [8, 16, 24, 32];
/// LWM values swept in Figure 13 (HWM fixed at 24).
pub const LWM_SWEEP: [u32; 4] = [2, 4, 8, 16];

/// One Figure 13 data point.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig13Point {
    /// The swept parameter's value.
    pub value: u32,
    /// Bitmap loads issued by the tracker.
    pub loads: u64,
    /// Bitmap stores issued by the tracker.
    pub stores: u64,
}

/// Figure 13 results for one workload.
#[derive(Clone, Debug, Serialize)]
pub struct Fig13Row {
    /// Workload name (mcf or SSSP in the paper).
    pub workload: String,
    /// Sweep over HWM with LWM = 4.
    pub hwm_sweep: Vec<Fig13Point>,
    /// Sweep over LWM with HWM = 24.
    pub lwm_sweep: Vec<Fig13Point>,
}

/// Drives only the tracker (no machine model needed) over the
/// workload's stack stores for the configured number of intervals,
/// returning the lookup stats.
fn tracker_stats(profile: &WorkloadProfile, hwm: u32, lwm: u32) -> LookupStats {
    use prosper_core::tracker::DirtyTracker;
    let cfg = TrackerConfig::default().with_watermarks(hwm, lwm);
    let mut tracker = DirtyTracker::new(cfg);
    let w = Workload::new(profile.clone(), SEED);
    let range = w.stack().reserved_range();
    tracker.configure(range, prosper_memsim::addr::VirtAddr::new(0x1000_0000));
    let mut collector = IntervalCollector::new(w, INTERVAL_10MS);
    for _ in 0..DEFAULT_INTERVALS {
        let iv = collector.next_interval();
        for ev in &iv.events {
            if let TraceEvent::Access(a) = ev {
                if a.is_stack_store() {
                    tracker.observe_store(a.vaddr, u64::from(a.size));
                }
            }
        }
        tracker.flush();
        tracker.reset_watermark();
        // The OS clears the bitmap after inspection.
        let geom = tracker.geometry();
        let active = prosper_memsim::addr::VirtRange::new(range.start(), range.end());
        tracker.bitmap_mut().inspect_and_clear(&geom, active);
    }
    tracker.lookup_stats()
}

/// Figure 13: bitmap loads/stores vs HWM and LWM for mcf and SSSP.
pub fn fig13() -> (Vec<Fig13Row>, Table) {
    let profiles = [WorkloadProfile::mcf(), WorkloadProfile::g500_sssp()];
    let mut rows = Vec::new();
    for profile in &profiles {
        let hwm_sweep = HWM_SWEEP
            .iter()
            .map(|&hwm| {
                let s = tracker_stats(profile, hwm, 4);
                Fig13Point {
                    value: hwm,
                    loads: s.bitmap_loads,
                    stores: s.bitmap_stores,
                }
            })
            .collect();
        let lwm_sweep = LWM_SWEEP
            .iter()
            .map(|&lwm| {
                let s = tracker_stats(profile, 24, lwm);
                Fig13Point {
                    value: lwm,
                    loads: s.bitmap_loads,
                    stores: s.bitmap_stores,
                }
            })
            .collect();
        rows.push(Fig13Row {
            workload: profile.name.to_string(),
            hwm_sweep,
            lwm_sweep,
        });
    }
    let mut table = Table::new(
        "Figure 13: tracker bitmap loads/stores vs HWM (LWM=4) and LWM (HWM=24)",
        &["workload", "sweep", "value", "loads", "stores"],
    );
    for r in &rows {
        for p in &r.hwm_sweep {
            table.push_row(&[
                r.workload.clone(),
                "HWM".into(),
                p.value.to_string(),
                p.loads.to_string(),
                p.stores.to_string(),
            ]);
        }
        for p in &r.lwm_sweep {
            table.push_row(&[
                r.workload.clone(),
                "LWM".into(),
                p.value.to_string(),
                p.loads.to_string(),
                p.stores.to_string(),
            ]);
        }
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_overhead_small() {
        let (rows, _) = fig12();
        assert_eq!(rows.len(), 7);
        let mut sum = 0.0;
        let mut n = 0.0;
        for r in &rows {
            for &s in &r.speedups {
                assert!(
                    s > 0.90,
                    "{}: tracking overhead must stay small, speedup {s}",
                    r.benchmark
                );
                assert!(s < 1.10, "{}: speedup {s} suspiciously high", r.benchmark);
                sum += s;
                n += 1.0;
            }
        }
        let mean = sum / n;
        assert!(
            mean > 0.95,
            "mean speedup {mean} (paper: <1% average overhead)"
        );
    }

    #[test]
    fn fig13_sssp_improves_with_hwm() {
        let (rows, _) = fig13();
        let sssp = rows.iter().find(|r| r.workload.contains("sssp")).unwrap();
        let first = &sssp.hwm_sweep[0];
        let last = sssp.hwm_sweep.last().unwrap();
        assert!(
            last.loads + last.stores < first.loads + first.stores,
            "SSSP: ops fall as HWM rises ({} -> {})",
            first.loads + first.stores,
            last.loads + last.stores
        );
    }

    #[test]
    fn fig13_mcf_and_sssp_trends_differ() {
        let (rows, _) = fig13();
        let trend = |sweep: &[Fig13Point]| {
            let first = (sweep[0].loads + sweep[0].stores) as f64;
            let last = {
                let p = sweep.last().unwrap();
                (p.loads + p.stores) as f64
            };
            last / first.max(1.0)
        };
        let mcf = rows.iter().find(|r| r.workload.contains("mcf")).unwrap();
        let sssp = rows.iter().find(|r| r.workload.contains("sssp")).unwrap();
        // The paper's headline: the HWM trend reverses between the
        // spatially-local SSSP and the scattered mcf.
        assert!(
            trend(&mcf.hwm_sweep) > trend(&sssp.hwm_sweep),
            "mcf's HWM trend ({}) sits above SSSP's ({})",
            trend(&mcf.hwm_sweep),
            trend(&sssp.hwm_sweep)
        );
    }

    #[test]
    fn fig13_mcf_improves_with_lwm() {
        // The paper observes that *raising* the LWM from the default
        // helps mcf (more evictions create useful vacancies).
        let (rows, _) = fig13();
        let mcf = rows.iter().find(|r| r.workload.contains("mcf")).unwrap();
        let default_lwm = mcf.lwm_sweep.iter().find(|p| p.value == 4).unwrap();
        let high_lwm = mcf.lwm_sweep.iter().find(|p| p.value == 16).unwrap();
        assert!(
            high_lwm.loads + high_lwm.stores <= default_lwm.loads + default_lwm.stores,
            "mcf: raising LWM from the default must not increase traffic \
             ({} -> {})",
            default_lwm.loads + default_lwm.stores,
            high_lwm.loads + high_lwm.stores
        );
    }
}
