//! # prosper-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! the paper's evaluation. Each `fig*` binary in `src/bin/` calls into
//! the corresponding module here and prints the same rows/series the
//! paper reports; `all_figures` runs the full set and emits the JSON
//! consumed by EXPERIMENTS.md.
//!
//! ## Scaling
//!
//! The paper simulates 10 ms consistency intervals (30 M cycles at
//! 3 GHz) and, for the tracking-overhead study, 6000 of them. A
//! cycle-accounting model in a test harness cannot afford 180 G cycles
//! per configuration, so every experiment here scales the interval to
//! [`scale::INTERVAL_10MS`] budget cycles and runs
//! [`scale::DEFAULT_INTERVALS`] intervals. All reported quantities are
//! either normalized (execution-time ratios) or per-interval averages,
//! so the scaling preserves the comparisons the paper makes; absolute
//! checkpoint sizes shrink with the interval and are reported as
//! measured. See EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]
// The bench harness measures host wall-clock time by design; the
// determinism contract (clippy.toml disallowed-methods, PA-DET005)
// applies to simulator crates, not to the thing doing the measuring.
#![allow(clippy::disallowed_methods)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod crash_matrix;
pub mod endurance;
pub mod fig_micro;
pub mod fig_motivation;
pub mod fig_overhead;
pub mod fig_performance;
pub mod misc;
pub mod multicore_study;
pub mod obs;
pub mod perf;
pub mod report;
pub mod scale;
pub mod scheduler;
pub mod trace_capture;
