//! Result-table formatting and JSON emission shared by the figure
//! binaries.

use serde::Serialize;
use std::fmt::Display;

/// A printable results table: a header row plus data rows.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Table {
    /// Table caption (e.g. "Figure 8: stack persistence overhead").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of displayable cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row<T: Display>(&mut self, cells: &[T]) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a ratio with two decimals and an `x` suffix (e.g. `3.61x`).
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a byte count with a binary-unit suffix.
pub fn bytes(value: f64) -> String {
    if value >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", value / (1024.0 * 1024.0))
    } else if value >= 1024.0 {
        format!("{:.1} KiB", value / 1024.0)
    } else {
        format!("{value:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(&["a".to_string(), "1".to_string()]);
        t.push_row(&["longer".to_string(), "22".to_string()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(3.606), "3.61x");
        assert_eq!(bytes(512.0), "512 B");
        assert_eq!(bytes(2048.0), "2.0 KiB");
        assert_eq!(bytes(3.0 * 1024.0 * 1024.0), "3.0 MiB");
    }
}
