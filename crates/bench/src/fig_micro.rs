//! The micro-benchmark studies: Figures 10–11 (Setup-I).

use prosper_baselines::DirtybitMechanism;
use prosper_core::tracker::TrackerConfig;
use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::CheckpointManager;
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;
use prosper_trace::micro::{MicroBench, MicroSpec};
use serde::Serialize;

use crate::report::{bytes, ratio, Table};
use crate::scale::{DEFAULT_INTERVALS, INTERVAL_10MS, INTERVAL_1MS, INTERVAL_5MS, SEED};

/// Tracking granularities swept in Figure 10.
pub const GRANULARITIES: [u64; 5] = [8, 16, 32, 64, 128];

/// Outcome of one (micro-benchmark, mechanism) run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MicroRun {
    /// Mean checkpoint size per interval in bytes.
    pub mean_ckpt_bytes: f64,
    /// Mean checkpoint time per interval in cycles.
    pub mean_ckpt_cycles: f64,
}

fn run_prosper(spec: MicroSpec, granularity: u64, interval: Cycles) -> MicroRun {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, interval);
    let mut mech = ProsperMechanism::new(TrackerConfig::default().with_granularity(granularity));
    let bench = MicroBench::new(spec, SEED);
    let res = mgr.run_stack_only(bench, &mut mech, DEFAULT_INTERVALS);
    MicroRun {
        mean_ckpt_bytes: res.mean_checkpoint_bytes(),
        mean_ckpt_cycles: res.mean_checkpoint_cycles(),
    }
}

fn run_dirtybit(spec: MicroSpec, interval: Cycles) -> MicroRun {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, interval);
    let mut mech = DirtybitMechanism::new();
    let bench = MicroBench::new(spec, SEED);
    let res = mgr.run_stack_only(bench, &mut mech, DEFAULT_INTERVALS);
    MicroRun {
        mean_ckpt_bytes: res.mean_checkpoint_bytes(),
        mean_ckpt_cycles: res.mean_checkpoint_cycles(),
    }
}

/// One Figure 10 row.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10Row {
    /// Micro-benchmark name.
    pub benchmark: String,
    /// Prosper result per granularity, in [`GRANULARITIES`] order.
    pub prosper: Vec<MicroRun>,
    /// The Dirtybit (page-granularity) reference.
    pub dirtybit: MicroRun,
}

impl Fig10Row {
    /// Prosper checkpoint time at granularity index `i`, normalized to
    /// Dirtybit (Figure 10b's y-axis).
    pub fn normalized_time(&self, i: usize) -> f64 {
        self.prosper[i].mean_ckpt_cycles / self.dirtybit.mean_ckpt_cycles.max(1.0)
    }
}

/// Figure 10: checkpoint size (a) and normalized checkpoint time (b)
/// for the Table III micro-benchmarks across tracking granularities.
pub fn fig10() -> (Vec<Fig10Row>, Table, Table) {
    let mut rows = Vec::new();
    for spec in MicroSpec::all_default() {
        let prosper = GRANULARITIES
            .iter()
            .map(|&g| run_prosper(spec, g, INTERVAL_10MS))
            .collect();
        let dirtybit = run_dirtybit(spec, INTERVAL_10MS);
        rows.push(Fig10Row {
            benchmark: spec.name().to_string(),
            prosper,
            dirtybit,
        });
    }
    let mut size_table = Table::new(
        "Figure 10a: mean stack checkpoint size per interval",
        &[
            "benchmark",
            "8B",
            "16B",
            "32B",
            "64B",
            "128B",
            "Dirtybit(4K)",
        ],
    );
    let mut time_table = Table::new(
        "Figure 10b: checkpoint time normalized to Dirtybit",
        &["benchmark", "8B", "16B", "32B", "64B", "128B"],
    );
    for r in &rows {
        let mut cells = vec![r.benchmark.clone()];
        cells.extend(r.prosper.iter().map(|p| bytes(p.mean_ckpt_bytes)));
        cells.push(bytes(r.dirtybit.mean_ckpt_bytes));
        size_table.push_row(&cells);

        let mut cells = vec![r.benchmark.clone()];
        cells.extend((0..GRANULARITIES.len()).map(|i| ratio(r.normalized_time(i))));
        time_table.push_row(&cells);
    }
    (rows, size_table, time_table)
}

/// One Figure 11 row: checkpoint size vs checkpoint interval.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11Row {
    /// Benchmark label (Quicksort, Rec-4, Rec-8, Rec-16).
    pub benchmark: String,
    /// Mean checkpoint size at 1 ms intervals.
    pub ms1: MicroRun,
    /// Mean checkpoint size at 5 ms intervals.
    pub ms5: MicroRun,
    /// Mean checkpoint size at 10 ms intervals.
    pub ms10: MicroRun,
}

impl Fig11Row {
    /// Per-byte checkpoint time (cycles/byte) at 1 ms and 10 ms — the
    /// paper's Rec-4 observation (22 ns vs 11 ns per byte).
    pub fn per_byte_time(&self) -> (f64, f64) {
        (
            self.ms1.mean_ckpt_cycles / self.ms1.mean_ckpt_bytes.max(1.0),
            self.ms10.mean_ckpt_cycles / self.ms10.mean_ckpt_bytes.max(1.0),
        )
    }
}

/// Figure 11: influence of the checkpoint interval (1/5/10 ms) on the
/// checkpoint size, for Quicksort and Recursive at depths 4/8/16, at
/// 8-byte granularity.
pub fn fig11() -> (Vec<Fig11Row>, Table) {
    let specs = [
        ("Quicksort", MicroSpec::Quicksort { elements: 4096 }),
        ("Rec-4", MicroSpec::Recursive { depth: 4 }),
        ("Rec-8", MicroSpec::Recursive { depth: 8 }),
        ("Rec-16", MicroSpec::Recursive { depth: 16 }),
    ];
    let mut rows = Vec::new();
    for (label, spec) in specs {
        rows.push(Fig11Row {
            benchmark: label.to_string(),
            ms1: run_prosper(spec, 8, INTERVAL_1MS),
            ms5: run_prosper(spec, 8, INTERVAL_5MS),
            ms10: run_prosper(spec, 8, INTERVAL_10MS),
        });
    }
    let mut table = Table::new(
        "Figure 11: mean checkpoint size vs checkpoint interval (8 B granularity)",
        &[
            "benchmark",
            "1ms",
            "5ms",
            "10ms",
            "cyc/B @1ms",
            "cyc/B @10ms",
        ],
    );
    for r in &rows {
        let (pb1, pb10) = r.per_byte_time();
        table.push_row(&[
            r.benchmark.clone(),
            bytes(r.ms1.mean_ckpt_bytes),
            bytes(r.ms5.mean_ckpt_bytes),
            bytes(r.ms10.mean_ckpt_bytes),
            format!("{pb1:.1}"),
            format!("{pb10:.1}"),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_sparse_is_prospers_best_case() {
        let (rows, _, _) = fig10();
        let sparse = rows.iter().find(|r| r.benchmark == "Sparse").unwrap();
        // Paper: 99% checkpoint-size reduction vs page granularity and
        // a large checkpoint-time win.
        let reduction =
            sparse.dirtybit.mean_ckpt_bytes / sparse.prosper[0].mean_ckpt_bytes.max(1.0);
        assert!(
            reduction > 20.0,
            "Sparse size reduction {reduction} (paper: ~100x)"
        );
        assert!(
            sparse.normalized_time(0) < 0.7,
            "Sparse checkpoint time well below Dirtybit: {}",
            sparse.normalized_time(0)
        );
    }

    #[test]
    fn fig10_stream_is_prospers_worst_case() {
        let (rows, _, _) = fig10();
        let stream = rows.iter().find(|r| r.benchmark == "Stream").unwrap();
        let sparse = rows.iter().find(|r| r.benchmark == "Sparse").unwrap();
        // Dense writes leave little size advantage, so Stream's
        // normalized time sits far above Sparse's.
        assert!(stream.normalized_time(0) > sparse.normalized_time(0));
        // Dirty size at 8 B roughly equals the page-granularity size
        // for a fully-streamed array (within 2x).
        let ratio = stream.dirtybit.mean_ckpt_bytes / stream.prosper[0].mean_ckpt_bytes.max(1.0);
        assert!(ratio < 4.0, "Stream page/byte ratio small: {ratio}");
    }

    #[test]
    fn fig10_size_monotone_in_granularity() {
        let (rows, _, _) = fig10();
        for r in &rows {
            for pair in r.prosper.windows(2) {
                assert!(
                    pair[1].mean_ckpt_bytes >= pair[0].mean_ckpt_bytes * 0.95,
                    "{}: coarser granularity must not shrink the checkpoint",
                    r.benchmark
                );
            }
            // And page granularity is the upper bound.
            assert!(r.dirtybit.mean_ckpt_bytes >= r.prosper[0].mean_ckpt_bytes * 0.9);
        }
    }

    #[test]
    fn fig11_recursive_grows_with_interval_quicksort_benefits() {
        let (rows, _) = fig11();
        let rec16 = rows.iter().find(|r| r.benchmark == "Rec-16").unwrap();
        assert!(
            rec16.ms10.mean_ckpt_bytes >= rec16.ms1.mean_ckpt_bytes,
            "Recursive checkpoint grows with the interval"
        );
        let quick = rows.iter().find(|r| r.benchmark == "Quicksort").unwrap();
        // Quicksort coalesces: size grows sublinearly vs the 10x
        // interval increase.
        assert!(
            quick.ms10.mean_ckpt_bytes < quick.ms1.mean_ckpt_bytes * 10.0,
            "Quicksort coalesces across the longer interval"
        );
    }

    #[test]
    fn fig11_short_intervals_cost_more_per_byte() {
        let (rows, _) = fig11();
        let rec4 = rows.iter().find(|r| r.benchmark == "Rec-4").unwrap();
        let (pb1, pb10) = rec4.per_byte_time();
        assert!(
            pb1 > pb10,
            "per-byte time higher at 1ms ({pb1}) than 10ms ({pb10}) — paper: 22ns vs 11ns"
        );
    }
}
