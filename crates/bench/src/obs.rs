//! Checkpoint-tax attribution reporting — the library behind the
//! `prosper-obs` binary.
//!
//! Every unit of foreground delay in the simulated runs is tagged
//! with its cause (commit stage/seal/apply, tracker quiescence,
//! bitmap inspection, recovery replay) by the
//! [`prosper_telemetry::StallAccountant`] probes wired through the
//! core crate. This module turns those ledgers into:
//!
//! * the **checkpoint-tax report** (`prosper-checkpoint-tax/v1`
//!   JSON): per section and per thread, the run's wall time split
//!   into `{useful, inspect, stage, seal, apply, merge, quiesce,
//!   recovery}`, plus per-phase NVM write volume (write
//!   amplification) for the sections that drive the memory
//!   simulator;
//! * **Chrome-trace timelines** (`chrome://tracing` /
//!   <https://ui.perfetto.dev>) rendering each thread's cause-tagged
//!   stall segments as spans;
//! * a **text HUD** for terminal consumption;
//! * **deterministic diffing** of two tax reports for regression
//!   gating — every run is driven by the virtual clock and the
//!   simulator, so an unchanged tree produces a byte-identical
//!   report and any drift is a real behaviour change.
//!
//! Every section's ledger is re-verified against the conservation
//! invariant before it is reported: attributed stall ns must exactly
//! tile the measured stall windows.

use std::collections::BTreeMap;
use std::sync::Arc;

use prosper_core::faultinject::{
    enumerate_crash_sites, run_attributed, run_crash_attributed, AttributedRun, CrashMatrixConfig,
};
use prosper_core::fleet::{CheckpointFleet, FleetConfig};
use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::CheckpointManager;
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_telemetry::{
    chrome_trace, AttributionSnapshot, Event, SloReport, SloTracker, StallCause,
};
use prosper_trace::micro::{MicroBench, MicroSpec};
use serde::{Deserialize, Serialize};

use crate::report::Table;

/// Schema tag of the checkpoint-tax report.
pub const TAX_SCHEMA: &str = "prosper-checkpoint-tax/v1";

/// Stall-latency objective per checkpoint window, in virtual ns: the
/// SLO the error budget burns against. One interval's whole-process
/// stall should stay under this.
pub const SLO_OBJECTIVE_NS: u64 = 50_000;

/// Fraction of windows allowed over the objective.
pub const SLO_ERROR_BUDGET: f64 = 0.05;

/// One thread's share of a section's wall time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaxThreadRow {
    /// Thread id.
    pub tid: u32,
    /// Non-stalled ns: section total minus this thread's stall.
    pub useful_ns: u64,
    /// Bitmap inspection + clear + metadata walk.
    pub inspect_ns: u64,
    /// Parallel stage phase (DRAM → NVM staging).
    pub stage_ns: u64,
    /// The serial seal — the commit point.
    pub seal_ns: u64,
    /// Parallel apply phase (staging → committed slots).
    pub apply_ns: u64,
    /// Deferred spine merge (staged-delta spine mode only).
    pub merge_ns: u64,
    /// Tracker quiescence (flush + drain polling).
    pub quiesce_ns: u64,
    /// Recovery replay after a crash.
    pub recovery_ns: u64,
    /// Fleet-scale backpressure: the commit deferred because shared
    /// staging occupancy crossed the high-water mark.
    pub backpressure_ns: u64,
    /// Total measured stall (sum of this thread's windows) —
    /// conservation guarantees it equals the causes' sum.
    pub stall_ns: u64,
    /// Stall windows this thread crossed.
    pub windows: u64,
    /// Cause-tagged segments attributed to this thread.
    pub segments: u64,
}

/// One workload section of the tax report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaxSection {
    /// Section name (`micro`, `commit_w2`, `crash_recover`, ...).
    pub name: String,
    /// Commit workers the section ran with (0: serial crash path).
    pub workers: u64,
    /// Total simulated ns of the run (1 cycle = 1 ns).
    pub total_ns: u64,
    /// Sum of all threads' stall ns.
    pub stall_ns: u64,
    /// `total_ns * threads - stall_ns`: aggregate non-stalled time.
    pub useful_ns: u64,
    /// Per-thread breakdown, tid-ascending.
    pub threads: Vec<TaxThreadRow>,
    /// Stall-latency SLO over this section's windows.
    pub slo: SloReport,
    /// Per-phase NVM write volume, when the section drives the
    /// memory simulator (micro sections); `None` elsewhere.
    pub nvm_bytes: Option<NvmBytesRow>,
}

/// NVM bytes a section wrote per checkpoint phase, with the derived
/// write-amplification ratio.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NvmBytesRow {
    /// DRAM → NVM staging copies (equals the dirty bytes).
    pub stage: u64,
    /// Durability-point records.
    pub seal: u64,
    /// Apply copies (eager) or delta-batch descriptor appends
    /// (spine).
    pub apply: u64,
    /// Deferred spine merges.
    pub merge: u64,
    /// `1000 * total / stage`: NVM bytes written per dirty byte, in
    /// thousandths (0 when nothing was staged).
    pub write_amp_milli: u64,
}

impl NvmBytesRow {
    /// Builds the row from a machine's per-phase tally.
    #[must_use]
    pub fn from_phases(p: prosper_memsim::NvmPhaseBytes) -> Self {
        let total = p.total();
        Self {
            stage: p.stage,
            seal: p.seal,
            apply: p.apply,
            merge: p.merge,
            write_amp_milli: (total * 1000).checked_div(p.stage).unwrap_or(0),
        }
    }

    /// Total NVM bytes across all phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.stage + self.seal + self.apply + self.merge
    }
}

/// The full checkpoint-tax report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaxReport {
    /// Always [`TAX_SCHEMA`].
    pub schema: String,
    /// Whether the quick (CI-sized) workloads were used.
    pub quick: bool,
    /// Workload sections in collection order.
    pub sections: Vec<TaxSection>,
}

fn cause_ns(by_cause: &BTreeMap<String, u64>, cause: StallCause) -> u64 {
    by_cause.get(cause.as_str()).copied().unwrap_or(0)
}

/// Builds one tax section from an attributed run, verifying
/// conservation first.
///
/// # Errors
///
/// Returns the conservation violation if the ledger does not tile.
pub fn section_from_run(
    name: &str,
    workers: u64,
    run: &AttributedRun,
) -> Result<TaxSection, String> {
    run.snapshot
        .verify_conservation()
        .map_err(|e| format!("section {name}: {e}"))?;
    let slo = SloTracker::new(SLO_OBJECTIVE_NS, SLO_ERROR_BUDGET);
    for w in &run.snapshot.windows {
        slo.record(w.tid, w.duration_ns());
    }
    let per = run.snapshot.per_thread();
    let mut threads = Vec::with_capacity(per.len());
    let mut stall_total = 0u64;
    for (tid, t) in &per {
        stall_total += t.window_ns;
        threads.push(TaxThreadRow {
            tid: *tid,
            useful_ns: run.total_cycles.saturating_sub(t.window_ns),
            inspect_ns: cause_ns(&t.by_cause, StallCause::Inspect),
            stage_ns: cause_ns(&t.by_cause, StallCause::Stage),
            seal_ns: cause_ns(&t.by_cause, StallCause::Seal),
            apply_ns: cause_ns(&t.by_cause, StallCause::Apply),
            merge_ns: cause_ns(&t.by_cause, StallCause::Merge),
            quiesce_ns: cause_ns(&t.by_cause, StallCause::Quiesce),
            recovery_ns: cause_ns(&t.by_cause, StallCause::Recovery),
            backpressure_ns: cause_ns(&t.by_cause, StallCause::Backpressure),
            stall_ns: t.window_ns,
            windows: t.windows,
            segments: t.segments,
        });
    }
    let thread_count = threads.len() as u64;
    Ok(TaxSection {
        name: name.to_string(),
        workers,
        total_ns: run.total_cycles,
        stall_ns: stall_total,
        useful_ns: (run.total_cycles * thread_count).saturating_sub(stall_total),
        threads,
        slo: slo.report(),
        nvm_bytes: None,
    })
}

fn micro_run(
    quick: bool,
    spine: Option<prosper_core::SpineConfig>,
) -> (AttributedRun, NvmBytesRow) {
    let acct = Arc::new(prosper_telemetry::StallAccountant::new_virtual());
    let mut machine = Machine::new(MachineConfig::setup_i());
    let (budget, intervals, elements) = if quick {
        (200_000, 4, 512)
    } else {
        (400_000, 8, 2048)
    };
    let res = {
        let mut mgr = CheckpointManager::new(&mut machine, budget);
        let mut mech = match spine {
            Some(cfg) => ProsperMechanism::with_defaults().with_spine(cfg),
            None => ProsperMechanism::with_defaults(),
        };
        mech.set_attribution(Arc::clone(&acct), 0);
        let bench = MicroBench::new(MicroSpec::Quicksort { elements }, crate::scale::SEED);
        mgr.run_stack_only(bench, &mut mech, intervals)
    };
    (
        AttributedRun {
            snapshot: acct.snapshot(),
            total_cycles: res.total_cycles,
        },
        NvmBytesRow::from_phases(machine.ckpt_nvm_bytes()),
    )
}

/// The fleet section: a backpressured, staggered fleet run
/// ([`FleetConfig::choked`]) with every tenant's ledger folded into
/// the tax table. The section's wall time spans the run through its
/// last commit (deferral included), and the SLO report is the
/// fleet's own — per-tenant commit latency measured from each
/// scheduled tick, so queueing and backpressure burn the budget.
fn fleet_section() -> Result<TaxSection, String> {
    let cfg = FleetConfig::choked();
    let result = CheckpointFleet::new(cfg).run();
    let span = result
        .attribution
        .windows
        .iter()
        .map(|w| w.end_ns)
        .max()
        .unwrap_or(result.horizon_ns);
    let run = AttributedRun {
        snapshot: result.attribution,
        total_cycles: span,
    };
    let mut section = section_from_run("fleet", u64::from(cfg.shards), &run)?;
    section.slo = result.slo;
    section.nvm_bytes = Some(NvmBytesRow::from_phases(result.nvm_phase_bytes));
    Ok(section)
}

fn commit_cfg(quick: bool) -> CrashMatrixConfig {
    if quick {
        CrashMatrixConfig {
            threads: 2,
            intervals: 2,
            stores_per_interval: 8,
            ..Default::default()
        }
    } else {
        CrashMatrixConfig {
            threads: 4,
            intervals: 3,
            stores_per_interval: 16,
            ..Default::default()
        }
    }
}

/// Collects the full tax report: the PR-3 micro-workload (eager and
/// staged-delta-spine commits, each with its per-phase NVM write
/// volume), the parallel commit path at 1/2/4 workers, and a
/// crash+recover run (power failure at the last enumerated boundary —
/// deep in the final commit — followed by attributed recovery
/// replay).
///
/// Fully deterministic: two calls produce equal reports.
///
/// # Errors
///
/// Returns the first conservation violation or crash-run failure.
pub fn collect(quick: bool) -> Result<TaxReport, String> {
    let mut sections = Vec::new();
    let (run, nvm) = micro_run(quick, None);
    let mut micro = section_from_run("micro", 0, &run)?;
    micro.nvm_bytes = Some(nvm);
    sections.push(micro);
    let (run, nvm) = micro_run(quick, Some(prosper_core::SpineConfig::default()));
    let mut micro_spine = section_from_run("micro_spine", 0, &run)?;
    micro_spine.nvm_bytes = Some(nvm);
    sections.push(micro_spine);
    let cfg = commit_cfg(quick);
    for workers in [1u64, 2, 4] {
        sections.push(section_from_run(
            &format!("commit_w{workers}"),
            workers,
            &run_attributed(&cfg, workers as usize),
        )?);
    }
    let sites = enumerate_crash_sites(&cfg);
    let last = (sites.len() as u64).saturating_sub(1);
    let (_, crash_run) = run_crash_attributed(&cfg, last)?;
    sections.push(section_from_run("crash_recover", 0, &crash_run)?);
    sections.push(fleet_section()?);
    Ok(TaxReport {
        schema: TAX_SCHEMA.to_string(),
        quick,
        sections,
    })
}

/// Publishes a tax report into a metrics registry: per-section
/// stall/useful totals accumulate under the registered
/// `prosper.tax.*` counters, and each section's SLO lands on the
/// `prosper.slo.*` gauges via
/// [`prosper_telemetry::slo_to_registry`] (last section wins the
/// gauges; violations accumulate).
pub fn publish_to_registry(report: &TaxReport, registry: &prosper_telemetry::Registry) {
    for s in &report.sections {
        registry.counter("prosper.tax.reports").inc();
        registry.counter("prosper.tax.stall_ns").add(s.stall_ns);
        registry.counter("prosper.tax.useful_ns").add(s.useful_ns);
        prosper_telemetry::slo_to_registry(&s.slo, registry);
    }
}

/// Renders a snapshot's cause-tagged segments as Chrome-trace span
/// events (`stall.<cause>` spans per thread, one instant per window
/// start), viewable in `chrome://tracing` or Perfetto.
#[must_use]
pub fn timeline_events(snap: &AttributionSnapshot) -> Vec<Event> {
    // (ts, open-before-close at equal ts, emission index) keeps the
    // ordering deterministic and nesting-valid for the viewer.
    let mut keyed: Vec<(u64, u8, usize, Event)> = Vec::new();
    for (i, w) in snap.windows.iter().enumerate() {
        keyed.push((
            w.start_ns,
            0,
            i,
            Event::Instant {
                name: "stall.window".to_string(),
                ts: w.start_ns,
                tid: w.tid,
            },
        ));
    }
    for (i, seg) in snap.segments.iter().enumerate() {
        let name = format!("stall.{}", seg.cause.as_str());
        keyed.push((
            seg.start_ns,
            1,
            i,
            Event::SpanBegin {
                name: name.clone(),
                cat: "prosper-obs".to_string(),
                ts: seg.start_ns,
                tid: seg.tid,
                depth: 0,
            },
        ));
        keyed.push((
            seg.end_ns,
            2,
            i,
            Event::SpanEnd {
                name,
                ts: seg.end_ns,
                tid: seg.tid,
                depth: 0,
            },
        ));
    }
    keyed.sort_by_key(|(ts, kind, idx, _)| (*ts, *kind, *idx));
    keyed.into_iter().map(|(_, _, _, ev)| ev).collect()
}

/// A snapshot's interference timeline as a Chrome-trace JSON string.
#[must_use]
pub fn timeline_json(snap: &AttributionSnapshot) -> String {
    chrome_trace(&timeline_events(snap))
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Renders the tax report as a terminal HUD.
#[must_use]
pub fn render_text(report: &TaxReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Checkpoint-tax attribution ({}, {})\n\n",
        report.schema,
        if report.quick { "quick" } else { "full" }
    ));
    for s in &report.sections {
        out.push_str(&format!(
            "[{}] workers={} total={}ns stall={}ns ({} of per-thread time)\n",
            s.name,
            s.workers,
            s.total_ns,
            s.stall_ns,
            pct(s.stall_ns, s.total_ns * s.threads.len().max(1) as u64),
        ));
        let mut t = Table::new(
            format!("{} — per-thread stall tax", s.name),
            &[
                "tid", "useful", "quiesce", "inspect", "stage", "seal", "apply", "merge",
                "recovery", "backpr", "stall", "tax",
            ],
        );
        for r in &s.threads {
            t.push_row(&[
                r.tid.to_string(),
                r.useful_ns.to_string(),
                r.quiesce_ns.to_string(),
                r.inspect_ns.to_string(),
                r.stage_ns.to_string(),
                r.seal_ns.to_string(),
                r.apply_ns.to_string(),
                r.merge_ns.to_string(),
                r.recovery_ns.to_string(),
                r.backpressure_ns.to_string(),
                r.stall_ns.to_string(),
                pct(r.stall_ns, s.total_ns),
            ]);
        }
        out.push_str(&t.render());
        if let Some(n) = &s.nvm_bytes {
            out.push_str(&format!(
                "  nvm bytes: stage={} seal={} apply={} merge={} write-amp={:.3}\n",
                n.stage,
                n.seal,
                n.apply,
                n.merge,
                n.write_amp_milli as f64 / 1000.0
            ));
        }
        for (tid, slo) in &s.slo.per_thread {
            out.push_str(&format!(
                "  slo tid {tid}: p50={} p95={} p99={} p999={} viol={} burn={:.2}\n",
                slo.p50_ns, slo.p95_ns, slo.p99_ns, slo.p999_ns, slo.violations, slo.burn_rate
            ));
        }
        out.push('\n');
    }
    out
}

/// Diffs two tax reports section-by-section. Attribution runs are
/// deterministic, so a non-empty diff against a committed baseline is
/// a real behaviour change in the commit/checkpoint/recovery paths.
#[must_use]
pub fn diff_reports(base: &TaxReport, current: &TaxReport) -> Vec<String> {
    let mut out = Vec::new();
    if base.schema != current.schema {
        out.push(format!("schema: {} -> {}", base.schema, current.schema));
    }
    if base.quick != current.quick {
        out.push(format!(
            "quick: {} -> {} (reports are not comparable across sizes)",
            base.quick, current.quick
        ));
        return out;
    }
    let base_by: BTreeMap<&str, &TaxSection> =
        base.sections.iter().map(|s| (s.name.as_str(), s)).collect();
    let cur_by: BTreeMap<&str, &TaxSection> = current
        .sections
        .iter()
        .map(|s| (s.name.as_str(), s))
        .collect();
    for (name, b) in &base_by {
        match cur_by.get(name) {
            None => out.push(format!("section {name}: removed")),
            Some(c) => {
                if b.total_ns != c.total_ns {
                    out.push(format!(
                        "section {name}: total_ns {} -> {}",
                        b.total_ns, c.total_ns
                    ));
                }
                if b.stall_ns != c.stall_ns {
                    out.push(format!(
                        "section {name}: stall_ns {} -> {}",
                        b.stall_ns, c.stall_ns
                    ));
                }
                if b.threads != c.threads {
                    for (bt, ct) in b.threads.iter().zip(&c.threads) {
                        if bt != ct {
                            out.push(format!(
                                "section {name} tid {}: {:?} -> {:?}",
                                bt.tid, bt, ct
                            ));
                        }
                    }
                    if b.threads.len() != c.threads.len() {
                        out.push(format!(
                            "section {name}: thread count {} -> {}",
                            b.threads.len(),
                            c.threads.len()
                        ));
                    }
                }
            }
        }
    }
    for name in cur_by.keys() {
        if !base_by.contains_key(name) {
            out.push(format!("section {name}: added"));
        }
    }
    out
}

/// Structural check against the recorded perf baseline
/// (`prosper-perf-baseline/v1` through `/v4`, e.g.
/// `BENCH_pr3.json`, `BENCH_pr8.json` or `BENCH_pr9.json`): every
/// checkpoint phase the baseline reports mean cycles for must be
/// attributed somewhere in the tax report's micro section (the
/// baseline's `clear` phase folds into `inspect` attribution, and a
/// v3 baseline's `merge` phase lands on the `micro_spine` section).
///
/// # Errors
///
/// Returns a message when the baseline is unreadable or a phase went
/// missing from attribution.
pub fn check_against_perf_baseline(report: &TaxReport, baseline_json: &str) -> Result<(), String> {
    let v: serde_json::Value =
        serde_json::from_str(baseline_json).map_err(|e| format!("baseline parse: {e:?}"))?;
    let schema = v
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("baseline has no schema tag")?;
    if !matches!(
        schema,
        "prosper-perf-baseline/v1"
            | "prosper-perf-baseline/v2"
            | "prosper-perf-baseline/v3"
            | "prosper-perf-baseline/v4"
    ) {
        return Err(format!("unexpected baseline schema {schema}"));
    }
    let phases = v
        .get("summary")
        .and_then(|s| s.get("ckpt_phase_mean_cycles"))
        .and_then(|p| p.as_object())
        .ok_or("baseline lacks summary.ckpt_phase_mean_cycles")?;
    let micro = report
        .sections
        .iter()
        .find(|s| s.name == "micro")
        .ok_or("tax report has no micro section")?;
    let attributed = |f: fn(&TaxThreadRow) -> u64| micro.threads.iter().map(f).sum::<u64>();
    for (phase, mean) in phases {
        if mean.as_f64().unwrap_or(0.0) <= 0.0 {
            continue;
        }
        let ns = match phase.as_str() {
            // The attribution layer charges the clear writes and the
            // metadata walk to the inspection window.
            "inspect" | "clear" => attributed(|t| t.inspect_ns),
            "stage" => attributed(|t| t.stage_ns),
            "apply" => attributed(|t| t.apply_ns),
            // Merge cycles only exist on the spine schedule, so they
            // are attributed in the spine micro section.
            "merge" => report
                .sections
                .iter()
                .find(|s| s.name == "micro_spine")
                .map(|s| s.threads.iter().map(|t| t.merge_ns).sum::<u64>())
                .unwrap_or(0),
            other => return Err(format!("baseline reports unknown phase {other}")),
        };
        if ns == 0 {
            return Err(format!(
                "baseline phase {phase} has mean cycles but the tax report attributes 0 ns to it"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_is_deterministic() {
        let a = collect(true).expect("collect");
        let b = collect(true).expect("collect");
        assert_eq!(a, b);
        let ja = serde_json::to_string_pretty(&a).unwrap();
        let jb = serde_json::to_string_pretty(&b).unwrap();
        assert_eq!(ja, jb, "tax JSON must be byte-identical across runs");
    }

    #[test]
    fn report_has_expected_sections_and_conserves() {
        let rep = collect(true).expect("collect");
        let names: Vec<&str> = rep.sections.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "micro",
                "micro_spine",
                "commit_w1",
                "commit_w2",
                "commit_w4",
                "crash_recover",
                "fleet"
            ]
        );
        for s in &rep.sections {
            let attributed: u64 = s
                .threads
                .iter()
                .map(|t| {
                    t.inspect_ns
                        + t.stage_ns
                        + t.seal_ns
                        + t.apply_ns
                        + t.merge_ns
                        + t.quiesce_ns
                        + t.recovery_ns
                        + t.backpressure_ns
                })
                .sum();
            assert_eq!(attributed, s.stall_ns, "section {} conserves", s.name);
        }
        let crash = rep
            .sections
            .iter()
            .find(|s| s.name == "crash_recover")
            .unwrap();
        assert!(
            crash.threads.iter().any(|t| t.recovery_ns > 0),
            "crash_recover section attributes recovery replay"
        );
        let fleet = rep.sections.iter().find(|s| s.name == "fleet").unwrap();
        assert!(
            fleet.threads.iter().any(|t| t.backpressure_ns > 0),
            "choked fleet section attributes backpressure deferrals"
        );
        assert!(
            fleet.nvm_bytes.is_some(),
            "fleet section records per-phase NVM bytes"
        );
        assert!(
            !fleet.slo.per_thread.is_empty(),
            "fleet section carries per-tenant SLO percentiles"
        );
    }

    #[test]
    fn spine_section_reports_write_amplification_win() {
        let rep = collect(true).expect("collect");
        let micro = rep.sections.iter().find(|s| s.name == "micro").unwrap();
        let spine = rep
            .sections
            .iter()
            .find(|s| s.name == "micro_spine")
            .unwrap();
        let m = micro.nvm_bytes.expect("micro records NVM phases");
        let s = spine.nvm_bytes.expect("micro_spine records NVM phases");
        assert_eq!(m.stage, s.stage, "same dirty bytes staged");
        assert_eq!(m.merge, 0, "eager mode never merges");
        assert!(s.merge > 0, "spine merges wrote deduplicated coverage");
        assert!(s.apply < m.apply, "spine defers the apply copy");
        // Quicksort dirties many tiny scattered runs, so the
        // per-run descriptor cost keeps the overall amp comparable;
        // the hot-word perf fixture is where the spine's strict
        // write-amp win is gated. Here we check both rows are
        // populated and the amp ratio is physically sensible.
        assert!(m.write_amp_milli > 1000 && s.write_amp_milli > 1000);
        assert!(
            spine.threads.iter().any(|t| t.merge_ns > 0),
            "merge stalls are attributed to their own cause"
        );
        assert!(
            micro.threads.iter().all(|t| t.merge_ns == 0),
            "eager mode attributes no merge stalls"
        );
    }

    #[test]
    fn timeline_events_balance_and_are_sorted() {
        let rep = run_attributed(&commit_cfg(true), 2);
        let evs = timeline_events(&rep.snapshot);
        let mut ts = 0;
        let mut depth: BTreeMap<u32, i64> = BTreeMap::new();
        for ev in &evs {
            assert!(ev.ts() >= ts, "events sorted by ts");
            ts = ev.ts();
            match ev {
                Event::SpanBegin { tid, .. } => *depth.entry(*tid).or_insert(0) += 1,
                Event::SpanEnd { tid, .. } => *depth.entry(*tid).or_insert(0) -= 1,
                Event::Instant { .. } => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "spans balance per thread");
        let json = timeline_json(&rep.snapshot);
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn diff_reports_flags_drift_and_nothing_else() {
        let a = collect(true).expect("collect");
        assert!(diff_reports(&a, &a).is_empty(), "self-diff is empty");
        let mut b = a.clone();
        assert_eq!(b.sections[2].name, "commit_w1");
        b.sections[2].threads[0].seal_ns += 7;
        b.sections[2].stall_ns += 7;
        let d = diff_reports(&a, &b);
        assert!(!d.is_empty());
        assert!(d.iter().any(|l| l.contains("commit_w1")));
    }

    #[test]
    fn perf_baseline_check_accepts_recorded_baseline() {
        let rep = collect(true).expect("collect");
        let json =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr3.json"))
                .expect("recorded baseline present");
        check_against_perf_baseline(&rep, &json).expect("phase breakdown consistent");
    }

    #[test]
    fn publish_lands_on_registered_names() {
        let rep = collect(true).expect("collect");
        let registry = prosper_telemetry::Registry::new();
        publish_to_registry(&rep, &registry);
        let snap = registry.snapshot();
        let stall: u64 = rep.sections.iter().map(|s| s.stall_ns).sum();
        assert_eq!(snap.counters.get("prosper.tax.stall_ns"), Some(&stall));
        assert_eq!(
            snap.counters.get("prosper.tax.reports"),
            Some(&(rep.sections.len() as u64))
        );
        assert!(snap.gauges.get("prosper.slo.p99_ns").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn tax_json_roundtrips() {
        let rep = collect(true).expect("collect");
        let json = serde_json::to_string(&rep).unwrap();
        let back: TaxReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
        assert_eq!(back.schema, TAX_SCHEMA);
    }
}
