//! Performance baseline suite for the hierarchical dirty bitmap and
//! the parallel whole-process commit (PR 3).
//!
//! Four sections, each with wall-clock measurements taken via
//! [`std::time::Instant`] (this is host time, not the simulator's
//! cycle domain — the point is the cost of the *implementation*, not
//! of the modeled machine):
//!
//! 1. **Bitmap inspection** — `inspect_and_clear` over sparse-stack,
//!    clustered, and dense dirty patterns, hierarchical
//!    [`DirtyBitmap`] vs the retained [`SparseDirtyBitmap`] BTreeMap
//!    reference, reported as granules scanned per second and a
//!    speedup ratio. The acceptance gate requires ≥ 5× on the
//!    sparse-stack pattern.
//! 2. **Parallel commit scaling** — `commit_with_workers` on an
//!    8-thread process across worker counts, with the telemetry
//!    per-phase timers (`stage`/`seal`/`apply`) broken out per
//!    configuration. A companion subsection sweeps the PR 7
//!    *pipelined* burst (`commit_pipelined_with_workers`, where
//!    stage(N+1) overlaps apply(N)) over the same worker counts plus
//!    the adaptive selector's own pick, and gates the adaptive
//!    configuration at ≥ 1.0× serial — skipped automatically on
//!    single-core hosts, where no overlap is physically possible.
//! 3. **Checkpoint latency** — interval-latency percentiles and
//!    per-phase cycle timers from the telemetry registry while a
//!    workload runs under [`ProsperMechanism`].
//! 4. **End-to-end runtime** — micro workloads through the
//!    checkpoint manager and the timeslice scheduler across process
//!    counts.
//! 5. **Staged-delta spine (PR 8)** — eager-apply vs spine-mode
//!    commit, two comparisons: commit *critical-path* latency on the
//!    deterministic virtual clock across sparse-stack/clustered/dense
//!    dirty patterns and merge policies (the deferred merge is broken
//!    out separately — it is off the critical path by construction),
//!    and NVM write amplification from the machine model's per-phase
//!    byte tally. The gates require spine critical latency ≤ eager at
//!    every pattern×policy, spine write amplification ≤ eager on
//!    *every* pattern (seal-time descriptor coalescing reclaimed the
//!    sparse many-tiny-runs arm that used to lose), and strictly
//!    lower steady-state amplification on repeated-hot-words.
//! 6. **Frame-allocator throughput (PR 9)** — alloc/free churn on the
//!    lock-free hierarchical [`FrameAlloc`] vs the retained
//!    `Mutex<PhysMemory>` reference across 1/2/4/8 workers, each arm
//!    timed as the minimum over several repetitions (the PR-7 argmin
//!    discipline). Gates: lock-free ≥ reference at one worker, and
//!    lock-free throughput monotone non-degrading up to the host's
//!    parallelism cap — auto-skipped with a warning on 1-core hosts.
//! 7. **Fleet bandwidth smoothing (PR 9)** — [`CheckpointFleet`] with
//!    staggered vs aligned shard schedules at equal total checkpoint
//!    bytes, compared on the peak-to-mean NVM write-bandwidth ratio
//!    from the machine model's per-phase byte tagging. The gate
//!    requires the staggered ratio strictly below the aligned one.
//!
//! [`run_all`] produces a [`PerfReport`]; the `perf_baseline` binary
//! renders it, writes the JSON artifact (`BENCH_pr9.json` since the
//! alloc/fleet sections landed; `BENCH_pr3.json`/`BENCH_pr7.json`/
//! `BENCH_pr8.json` are the earlier records), and enforces
//! [`validate`].

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use prosper_core::bitmap::reference::SparseDirtyBitmap;
use prosper_core::bitmap::{BitmapGeometry, CopyRun, DirtyBitmap};
use prosper_core::fleet::{CheckpointFleet, FleetConfig};
use prosper_core::oscomp::ProsperMechanism;
use prosper_core::recovery::PersistentProcess;
use prosper_gemos::checkpoint::CheckpointManager;
use prosper_gemos::llalloc::FrameAlloc;
use prosper_gemos::physmem::{PhysMemory, Pool};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::config::{MachineConfig, MemoryLayout};
use prosper_memsim::machine::Machine;
use prosper_telemetry as telemetry;
use prosper_telemetry::{HistogramSnapshot, MetricsSnapshot, NoopSink, Telemetry};
use prosper_telemetry::{StallAccountant, StallCause};
use prosper_trace::micro::{MicroBench, MicroSpec};
use prosper_trace::workloads::{Workload, WorkloadProfile};
use serde::Serialize;

use crate::obs::NvmBytesRow;
use crate::report::{ratio, Table};
use crate::scale::SEED;
use crate::scheduler::run_scheduled;

/// Schema tag stamped into the JSON report. `v2` added the
/// `pipeline` section (pipelined commit scaling + adaptive gate);
/// `v3` added the `spine` section (staged-delta spine latency and
/// write-amplification comparison) and a top-level
/// `host_parallelism`; `v4` added the `alloc` section (lock-free
/// frame-allocator throughput vs the serial reference) and the
/// `fleet` section (staggered vs aligned NVM bandwidth smoothing),
/// and tightened the spine write-amplification arms from
/// reported-only to gated.
pub const SCHEMA: &str = "prosper-perf-baseline/v4";

/// Minimum sparse-stack inspection speedup the baseline must record.
pub const SPARSE_STACK_GATE: f64 = 5.0;

/// Minimum adaptive pipelined-commit speedup vs serial, enforced only
/// on hosts where parallelism exists to be won (`host_parallelism >
/// 1`). The adaptive selector may *pick* serial — then the speedup is
/// 1.0 by construction — but it must never pick a losing fan-out.
pub const PIPELINE_GATE: f64 = 1.0;

/// Minimum lock-free-vs-reference alloc/free speedup at one worker:
/// the lock-free tree must not lose to the mutex-guarded serial
/// reference even without contention to amortize.
pub const ALLOC_SERIAL_GATE: f64 = 1.0;

/// Tolerance on the alloc scaling gate: adding workers (up to the
/// host's parallelism cap) must keep lock-free throughput at or above
/// this fraction of the previous worker count's — "monotone
/// non-degrading" with slack for scheduler noise on shared CI hosts.
pub const ALLOC_SCALING_FLOOR: f64 = 0.85;

/// Iteration budgets for one suite run.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Shrink every budget for a CI smoke run.
    pub quick: bool,
}

impl PerfConfig {
    /// Full-fidelity budgets (the committed baseline).
    #[must_use]
    pub fn full() -> Self {
        Self { quick: false }
    }

    /// Reduced budgets for CI smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Self { quick: true }
    }

    fn bitmap_iters(&self) -> u64 {
        if self.quick {
            30
        } else {
            300
        }
    }

    fn commit_iters(&self) -> u64 {
        if self.quick {
            4
        } else {
            12
        }
    }

    fn commit_workers(&self) -> &'static [usize] {
        if self.quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8]
        }
    }

    fn ckpt_intervals(&self) -> u64 {
        if self.quick {
            8
        } else {
            48
        }
    }

    fn workload_intervals(&self) -> u64 {
        if self.quick {
            3
        } else {
            12
        }
    }

    fn schedule_counts(&self) -> &'static [usize] {
        if self.quick {
            &[1, 2]
        } else {
            &[1, 2, 4]
        }
    }

    fn schedule_slices(&self) -> u64 {
        if self.quick {
            16
        } else {
            48
        }
    }

    fn alloc_workers(&self) -> &'static [usize] {
        if self.quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8]
        }
    }

    /// Alloc/free rounds per worker per timed repetition. Not reduced
    /// in quick mode: a 40-round rep finishes in ~0.3 ms, where timer
    /// granularity alone can swing the serial-gate ratio by 5%.
    fn alloc_rounds(&self) -> u64 {
        200
    }

    /// Timed repetitions per alloc arm; the argmin is reported.
    fn alloc_reps(&self) -> u64 {
        if self.quick {
            5
        } else {
            7
        }
    }
}

// ---------------------------------------------------------------------------
// Section 1: bitmap inspection
// ---------------------------------------------------------------------------

/// Bitmap words in the inspected window (each word covers 32 granules).
const WINDOW_WORDS: u64 = 4096;
const RANGE_START: u64 = 0x7000_0000;
const BITMAP_BASE: u64 = 0x1000_0000;
const GRANULARITY: u64 = 8;

/// One inspection pattern's measurements.
#[derive(Clone, Debug, Serialize)]
pub struct BitmapRow {
    /// Pattern name (`sparse-stack`, `clustered`, `dense`).
    pub pattern: String,
    /// Granules covered by the inspected window.
    pub window_granules: u64,
    /// Dirty bitmap words per iteration.
    pub dirty_words: u64,
    /// Dirty granule bits per iteration.
    pub dirty_bits: u64,
    /// Timed inspections per implementation.
    pub iterations: u64,
    /// Mean `inspect_and_clear` wall time, hierarchical bitmap (ns).
    pub hier_ns_mean: f64,
    /// Mean `inspect_and_clear` wall time, sparse reference (ns).
    pub sparse_ns_mean: f64,
    /// Window granules scanned per second, hierarchical bitmap.
    pub hier_granules_per_sec: f64,
    /// Window granules scanned per second, sparse reference.
    pub sparse_granules_per_sec: f64,
    /// `sparse_ns_mean / hier_ns_mean`.
    pub speedup: f64,
}

fn perf_geom() -> BitmapGeometry {
    BitmapGeometry {
        range_start: VirtAddr::new(RANGE_START),
        bitmap_base: VirtAddr::new(BITMAP_BASE),
        granularity: GRANULARITY,
    }
}

fn perf_window() -> VirtRange {
    VirtRange::new(
        VirtAddr::new(RANGE_START),
        VirtAddr::new(RANGE_START + WINDOW_WORDS * 32 * GRANULARITY),
    )
}

/// (word index, word value) pairs dirtied before every inspection.
fn pattern_words(pattern: &str) -> Vec<(u64, u32)> {
    match pattern {
        // A few dozen live frames scattered over a large reserved
        // window: the shape a real program stack leaves behind.
        "sparse-stack" => (0..WINDOW_WORDS)
            .step_by(100)
            .map(|w| (w, 0x0000_00ffu32))
            .collect(),
        // Bursts of fully dirty words (hot frames), clean in between.
        "clustered" => (0..8u64)
            .flat_map(|c| (0..16u64).map(move |i| (c * 512 + i, u32::MAX)))
            .collect(),
        // Worst case for the fast path: everything dirty.
        "dense" => (0..WINDOW_WORDS).map(|w| (w, u32::MAX)).collect(),
        other => panic!("unknown pattern {other}"),
    }
}

/// Times `iters` populate+inspect rounds; only the inspection is
/// accumulated. Returns total inspection nanoseconds.
fn time_inspections<B, I>(words: &[(u64, u32)], iters: u64, bitmap: &mut B, mut inspect: I) -> u64
where
    I: FnMut(&mut B) -> (Vec<CopyRun>, prosper_core::bitmap::InspectStats),
    B: DirtyWords,
{
    let mut total_ns = 0u64;
    for _ in 0..iters {
        for &(w, v) in words {
            bitmap.merge(BITMAP_BASE + w * 4, v);
        }
        let t = Instant::now();
        let out = inspect(bitmap);
        total_ns += t.elapsed().as_nanos() as u64;
        black_box(out);
    }
    total_ns
}

/// Uniform `merge_word` access for the two bitmap implementations.
trait DirtyWords {
    fn merge(&mut self, addr: u64, value: u32);
}

impl DirtyWords for DirtyBitmap {
    fn merge(&mut self, addr: u64, value: u32) {
        self.merge_word(addr, value);
    }
}

impl DirtyWords for SparseDirtyBitmap {
    fn merge(&mut self, addr: u64, value: u32) {
        self.merge_word(addr, value);
    }
}

/// Runs the bitmap-inspection comparison for every pattern.
#[must_use]
pub fn bitmap_section(cfg: &PerfConfig) -> Vec<BitmapRow> {
    let geom = perf_geom();
    let window = perf_window();
    let iters = cfg.bitmap_iters();
    let mut rows = Vec::new();
    for pattern in ["sparse-stack", "clustered", "dense"] {
        let words = pattern_words(pattern);

        // Sanity: both implementations agree on this pattern.
        let mut h = DirtyBitmap::new();
        let mut s = SparseDirtyBitmap::new();
        for &(w, v) in &words {
            h.merge_word(BITMAP_BASE + w * 4, v);
            s.merge_word(BITMAP_BASE + w * 4, v);
        }
        let (hr, hs) = h.inspect_and_clear(&geom, window);
        let (sr, ss) = s.inspect_and_clear(&geom, window);
        assert_eq!(hr, sr, "implementations diverged on {pattern}");
        assert_eq!(hs, ss, "stats diverged on {pattern}");

        let hier_ns = time_inspections(&words, iters, &mut DirtyBitmap::new(), |b| {
            b.inspect_and_clear(&geom, window)
        });
        let sparse_ns = time_inspections(&words, iters, &mut SparseDirtyBitmap::new(), |b| {
            b.inspect_and_clear(&geom, window)
        });

        let window_granules = WINDOW_WORDS * 32;
        let hier_mean = hier_ns as f64 / iters as f64;
        let sparse_mean = sparse_ns as f64 / iters as f64;
        let per_sec = |mean_ns: f64| window_granules as f64 / (mean_ns / 1e9);
        rows.push(BitmapRow {
            pattern: pattern.to_string(),
            window_granules,
            dirty_words: words.len() as u64,
            dirty_bits: words.iter().map(|&(_, v)| u64::from(v.count_ones())).sum(),
            iterations: iters,
            hier_ns_mean: hier_mean,
            sparse_ns_mean: sparse_mean,
            hier_granules_per_sec: per_sec(hier_mean),
            sparse_granules_per_sec: per_sec(sparse_mean),
            speedup: sparse_mean / hier_mean.max(1.0),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Section 2: parallel commit scaling
// ---------------------------------------------------------------------------

/// One worker-count configuration of the commit-scaling study.
#[derive(Clone, Debug, Serialize)]
pub struct CommitRow {
    /// Staging/apply workers used.
    pub workers: usize,
    /// Timed commits.
    pub iterations: u64,
    /// Mean whole-commit wall time (ns).
    pub mean_ns: f64,
    /// Speedup vs the single-worker (serial) configuration.
    pub speedup_vs_serial: f64,
    /// Mean stage-phase wall time per commit (ns, telemetry).
    pub stage_ns_mean: f64,
    /// Mean seal-phase wall time per commit (ns, telemetry).
    pub seal_ns_mean: f64,
    /// Mean apply-phase wall time per commit (ns, telemetry).
    pub apply_ns_mean: f64,
}

/// The commit-scaling study: fixed workload shape, varying workers.
#[derive(Clone, Debug, Serialize)]
pub struct CommitSection {
    /// `available_parallelism()` on the recording host. Worker counts
    /// above this add thread overhead without concurrency, so flat or
    /// negative scaling past it is expected, not a regression.
    pub host_parallelism: usize,
    /// Threads (stacks) in the committed process.
    pub threads: usize,
    /// Copy runs supplied per thread.
    pub runs_per_thread: usize,
    /// Bytes staged+applied per commit across all threads.
    pub bytes_per_commit: u64,
    /// One row per worker count.
    pub rows: Vec<CommitRow>,
}

const THREADS: usize = 8;
const STACK_BYTES: u64 = 256 * 1024;
const RUNS_PER_THREAD: u64 = 64;

/// The shared commit workload: an 8-thread process with full-stack
/// copy runs per thread (the shape both the classic and the pipelined
/// scaling studies measure).
fn commit_fixture() -> (PersistentProcess, BTreeMap<u32, Vec<CopyRun>>) {
    let ranges: Vec<VirtRange> = (0..THREADS as u64)
        .map(|i| {
            let top = 0x7100_0000 + (i + 1) * 0x100_0000;
            VirtRange::new(VirtAddr::new(top - STACK_BYTES), VirtAddr::new(top))
        })
        .collect();
    let mut process = PersistentProcess::new(&ranges);
    let run_len = STACK_BYTES / RUNS_PER_THREAD;
    let mut runs: BTreeMap<u32, Vec<CopyRun>> = BTreeMap::new();
    for (tid, range) in ranges.iter().enumerate() {
        let tid = tid as u32;
        // Give each stack distinct content so staging copies real data.
        process.record_store(tid, range.start() + 64, &[0xA0 + tid as u8; 128]);
        runs.insert(
            tid,
            (0..RUNS_PER_THREAD)
                .map(|r| CopyRun {
                    start: range.start() + r * run_len,
                    len: run_len,
                })
                .collect(),
        );
    }
    (process, runs)
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Measures `commit_with_workers` across worker counts.
#[must_use]
pub fn commit_section(cfg: &PerfConfig) -> CommitSection {
    let (mut process, runs) = commit_fixture();
    let iters = cfg.commit_iters();
    let mut rows = Vec::new();
    let mut serial_mean = 0.0f64;
    for &workers in cfg.commit_workers() {
        process.commit_with_workers(&runs, workers); // warm-up
        let before = registry_snapshot();
        let t = Instant::now();
        for _ in 0..iters {
            process.commit_with_workers(&runs, workers);
        }
        let total_ns = t.elapsed().as_nanos() as u64;
        let delta = registry_snapshot() - before;
        let mean_ns = total_ns as f64 / iters as f64;
        if workers == 1 {
            serial_mean = mean_ns;
        }
        let phase = |name: &str| hist(&delta, name).mean();
        rows.push(CommitRow {
            workers,
            iterations: iters,
            mean_ns,
            speedup_vs_serial: if serial_mean > 0.0 {
                serial_mean / mean_ns
            } else {
                1.0
            },
            stage_ns_mean: phase("prosper.commit.phase.stage_ns"),
            seal_ns_mean: phase("prosper.commit.phase.seal_ns"),
            apply_ns_mean: phase("prosper.commit.phase.apply_ns"),
        });
    }

    CommitSection {
        host_parallelism: host_parallelism(),
        threads: THREADS,
        runs_per_thread: RUNS_PER_THREAD as usize,
        bytes_per_commit: STACK_BYTES * THREADS as u64,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Section 2b: pipelined commit scaling (PR 7)
// ---------------------------------------------------------------------------

/// One worker-count configuration of the pipelined-burst study.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineRow {
    /// Staging/apply workers used.
    pub workers: usize,
    /// Timed bursts.
    pub iterations: u64,
    /// Mean whole-burst wall time (ns).
    pub mean_ns: f64,
    /// Speedup vs the single-worker (serial) configuration.
    pub speedup_vs_serial: f64,
    /// Mean burst wall time from the telemetry histogram
    /// (`prosper.commit.pipeline.burst_ns`).
    pub burst_ns_mean: f64,
}

/// The pipelined commit-scaling study: `commit_pipelined_with_workers`
/// bursts over the same workload shape as [`CommitSection`], plus the
/// adaptive selector's own configuration.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineSection {
    /// `available_parallelism()` on the recording host. The speedup
    /// gate is only meaningful above 1.
    pub host_parallelism: usize,
    /// Threads (stacks) in the committed process.
    pub threads: usize,
    /// Sequences committed per pipelined burst.
    pub batches: usize,
    /// Copy runs supplied per thread per sequence.
    pub runs_per_thread: usize,
    /// Bytes staged+applied per sequence across all threads.
    pub bytes_per_batch: u64,
    /// Worker count the adaptive selector picked for this burst.
    pub adaptive_workers: usize,
    /// Mean burst wall time at the adaptive worker count (ns).
    pub adaptive_mean_ns: f64,
    /// Adaptive-configuration speedup vs serial — the gated number.
    pub adaptive_speedup_vs_serial: f64,
    /// Whether [`validate`] enforces the [`PIPELINE_GATE`] on this
    /// report (false on single-core hosts: no overlap is physically
    /// possible, so the selector correctly picks serial).
    pub gate_enforced: bool,
    /// One row per swept worker count.
    pub rows: Vec<PipelineRow>,
}

/// Measures pipelined bursts across worker counts and the adaptive
/// selector's pick.
///
/// # Panics
///
/// Panics if the swept worker counts do not include the serial
/// configuration (the speedup denominator).
#[must_use]
pub fn pipeline_section(cfg: &PerfConfig) -> PipelineSection {
    const BATCHES: usize = 3;
    let (mut process, runs) = commit_fixture();
    let batches: Vec<BTreeMap<u32, Vec<CopyRun>>> = vec![runs; BATCHES];

    let iters = cfg.commit_iters();
    let time_bursts = |process: &mut PersistentProcess, workers: usize| {
        process.commit_pipelined_with_workers(&batches, workers); // warm-up
        let before = registry_snapshot();
        let t = Instant::now();
        for _ in 0..iters {
            process.commit_pipelined_with_workers(&batches, workers);
        }
        let total_ns = t.elapsed().as_nanos() as u64;
        let delta = registry_snapshot() - before;
        (
            total_ns as f64 / iters as f64,
            hist(&delta, "prosper.commit.pipeline.burst_ns").mean(),
        )
    };

    let mut rows = Vec::new();
    let mut serial_mean = 0.0f64;
    for &workers in cfg.commit_workers() {
        let (mean_ns, burst_ns_mean) = time_bursts(&mut process, workers);
        if workers == 1 {
            serial_mean = mean_ns;
        }
        assert!(serial_mean > 0.0, "worker sweep must start at serial");
        rows.push(PipelineRow {
            workers,
            iterations: iters,
            mean_ns,
            speedup_vs_serial: serial_mean / mean_ns,
            burst_ns_mean,
        });
    }

    // The adaptive configuration reuses the sweep's measurement when
    // the selector lands on a swept count — the gate then compares
    // one timed configuration against another, not two noisy timings
    // of the same one.
    let adaptive_workers = process.planned_pipelined_workers(&batches);
    let adaptive_mean_ns = match rows.iter().find(|r| r.workers == adaptive_workers) {
        Some(row) => row.mean_ns,
        None => time_bursts(&mut process, adaptive_workers).0,
    };
    let host_parallelism = host_parallelism();

    PipelineSection {
        host_parallelism,
        threads: THREADS,
        batches: BATCHES,
        runs_per_thread: RUNS_PER_THREAD as usize,
        bytes_per_batch: STACK_BYTES * THREADS as u64,
        adaptive_workers,
        adaptive_mean_ns,
        adaptive_speedup_vs_serial: serial_mean / adaptive_mean_ns,
        gate_enforced: host_parallelism > 1,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Section 3: checkpoint latency percentiles
// ---------------------------------------------------------------------------

/// Summary statistics of one telemetry histogram.
#[derive(Clone, Debug, Default, Serialize)]
pub struct LatencyStats {
    /// Recorded samples.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// 50th percentile (bucket lower bound).
    pub p50: u64,
    /// 90th percentile (bucket lower bound).
    pub p90: u64,
    /// 99th percentile (bucket lower bound).
    pub p99: u64,
    /// Maximum recorded value.
    pub max: u64,
}

impl LatencyStats {
    fn from_hist(h: &HistogramSnapshot) -> Self {
        Self {
            count: h.count,
            mean: h.mean(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            max: h.max,
        }
    }
}

/// Checkpoint-latency study: one workload, telemetry-derived timings.
#[derive(Clone, Debug, Serialize)]
pub struct CheckpointSection {
    /// Workload driving the checkpoints.
    pub workload: String,
    /// Consistency intervals executed.
    pub intervals: u64,
    /// Whole-interval checkpoint latency (simulated cycles).
    pub interval_cycles: LatencyStats,
    /// Per-phase checkpoint timers (simulated cycles), keyed by phase
    /// name (`inspect`, `clear`, `stage`, `apply`).
    pub phase_cycles: BTreeMap<String, LatencyStats>,
}

/// Runs a workload under [`ProsperMechanism`] and reads the latency
/// percentiles back out of the telemetry registry.
#[must_use]
pub fn checkpoint_section(cfg: &PerfConfig) -> CheckpointSection {
    let intervals = cfg.ckpt_intervals();
    let before = registry_snapshot();
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, 30_000);
    let mut mech = ProsperMechanism::with_defaults();
    let w = Workload::new(WorkloadProfile::gapbs_pr(), SEED);
    mgr.run_stack_only(w, &mut mech, intervals);
    let delta = registry_snapshot() - before;

    let mut phase_cycles = BTreeMap::new();
    for phase in ["inspect", "clear", "stage", "apply"] {
        let h = hist(&delta, &format!("prosper.ckpt.phase.{phase}_cycles"));
        phase_cycles.insert(phase.to_string(), LatencyStats::from_hist(&h));
    }
    CheckpointSection {
        workload: "gapbs_pr".to_string(),
        intervals,
        interval_cycles: LatencyStats::from_hist(&hist(&delta, "prosper.ckpt.interval_cycles")),
        phase_cycles,
    }
}

// ---------------------------------------------------------------------------
// Section 4: end-to-end runtime
// ---------------------------------------------------------------------------

/// End-to-end run of one micro workload through the checkpoint manager.
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadRow {
    /// Micro-benchmark name.
    pub name: String,
    /// Consistency intervals executed.
    pub intervals: u64,
    /// Simulated cycles for the whole run.
    pub total_cycles: u64,
    /// Simulated cycles spent checkpointing.
    pub checkpoint_cycles: u64,
    /// Bytes the checkpoints copied.
    pub bytes_copied: u64,
    /// Host wall time for the run (ms).
    pub wall_ms: f64,
}

/// End-to-end run of the timeslice scheduler at one process count.
#[derive(Clone, Debug, Serialize)]
pub struct ScheduleRow {
    /// Concurrently scheduled processes.
    pub processes: usize,
    /// Context switches performed.
    pub switches: u64,
    /// Simulated cycles for the whole run.
    pub total_cycles: u64,
    /// Host wall time for the run (ms).
    pub wall_ms: f64,
}

/// Runs the micro-workload sweep.
#[must_use]
pub fn workload_section(cfg: &PerfConfig) -> Vec<WorkloadRow> {
    let intervals = cfg.workload_intervals();
    let specs = [
        MicroSpec::Stream { array_bytes: 65536 },
        MicroSpec::Random { array_bytes: 65536 },
        MicroSpec::Sparse { pages: 16 },
        MicroSpec::Recursive { depth: 96 },
    ];
    specs
        .iter()
        .map(|&spec| {
            let t = Instant::now();
            let mut machine = Machine::new(MachineConfig::setup_i());
            let mut mgr = CheckpointManager::new(&mut machine, 30_000);
            let mut mech = ProsperMechanism::with_defaults();
            let res = mgr.run_stack_only(MicroBench::new(spec, SEED), &mut mech, intervals);
            WorkloadRow {
                name: spec.name().to_string(),
                intervals: res.intervals,
                total_cycles: res.total_cycles,
                checkpoint_cycles: res.checkpoint_cycles,
                bytes_copied: res.bytes_copied,
                wall_ms: t.elapsed().as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// Runs the scheduler sweep across process counts.
#[must_use]
pub fn schedule_section(cfg: &PerfConfig) -> Vec<ScheduleRow> {
    let pool = [
        WorkloadProfile::gapbs_pr(),
        WorkloadProfile::ycsb_mem(),
        WorkloadProfile::mcf(),
        WorkloadProfile::g500_sssp(),
    ];
    cfg.schedule_counts()
        .iter()
        .map(|&n| {
            let profiles: Vec<_> = pool.iter().cloned().cycle().take(n).collect();
            let t = Instant::now();
            let res = run_scheduled(&profiles, 20_000, 60_000, cfg.schedule_slices());
            ScheduleRow {
                processes: n,
                switches: res.switches,
                total_cycles: res.total_cycles,
                wall_ms: t.elapsed().as_secs_f64() * 1e3,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Section 5: staged-delta spine (PR 8)
// ---------------------------------------------------------------------------

/// Threads in the spine latency fixture.
const SPINE_THREADS: u64 = 4;
/// Stack bytes per thread in the spine latency fixture.
const SPINE_STACK_BYTES: u64 = 64 * 1024;

/// One pattern × policy comparison of eager-apply vs spine-mode
/// commit critical-path latency on the deterministic virtual clock.
#[derive(Clone, Debug, Serialize)]
pub struct SpineLatencyRow {
    /// Dirty pattern (`sparse-stack`, `clustered`, `dense`).
    pub pattern: String,
    /// Merge policy the spine arm ran (`merge-always`, `default`,
    /// `lazy`).
    pub policy: String,
    /// Commits measured per arm.
    pub commits: u64,
    /// Eager-apply critical-path ns (all stall causes except merge).
    pub eager_critical_ns: u64,
    /// Spine-mode critical-path ns — the gated number.
    pub spine_critical_ns: u64,
    /// Deferred merge ns the spine arm spent off the critical path.
    pub spine_merge_ns: u64,
    /// Delta batches still unmerged when the sweep finished.
    pub spine_batches_left: usize,
}

/// One workload's NVM write-amplification comparison from the machine
/// model's per-phase byte tally.
#[derive(Clone, Debug, Serialize)]
pub struct SpineAmpRow {
    /// Workload label.
    pub pattern: String,
    /// Consistency intervals executed per arm.
    pub intervals: u64,
    /// Eager-apply per-phase NVM bytes.
    pub eager: NvmBytesRow,
    /// Spine-mode per-phase NVM bytes.
    pub spine: NvmBytesRow,
}

/// Section 5: the staged-delta spine study.
#[derive(Clone, Debug, Serialize)]
pub struct SpineSection {
    /// `available_parallelism()` on the recording host.
    pub host_parallelism: usize,
    /// Threads (stacks) in the latency fixture.
    pub threads: usize,
    /// Latency comparison, one row per dirty pattern × merge policy.
    pub latency: Vec<SpineLatencyRow>,
    /// Write-amplification comparison across dirty patterns (default
    /// merge policy). Gated spine ≤ eager on every row since v4:
    /// seal-time run coalescing plus the packed descriptor table
    /// removed the overhead that let many-tiny-runs patterns lose.
    pub write_amp: Vec<SpineAmpRow>,
    /// The steady-state repeated-hot-words workload — the strictly
    /// gated write-amplification win.
    pub hot_words: SpineAmpRow,
}

fn spine_ranges() -> Vec<VirtRange> {
    (0..SPINE_THREADS)
        .map(|i| {
            let top = 0x7400_0000 + (i + 1) * 0x10_0000;
            VirtRange::new(VirtAddr::new(top - SPINE_STACK_BYTES), VirtAddr::new(top))
        })
        .collect()
}

/// Copy runs modeling one dirty pattern over the spine fixture.
fn spine_pattern_runs(pattern: &str) -> BTreeMap<u32, Vec<CopyRun>> {
    let per_thread = |start: VirtAddr| -> Vec<CopyRun> {
        match pattern {
            // A few live frames scattered over the reserved window.
            "sparse-stack" => (0..8u64)
                .map(|k| CopyRun {
                    start: start + k * 8192,
                    len: 64,
                })
                .collect(),
            // Hot frame clusters.
            "clustered" => (0..4u64)
                .map(|k| CopyRun {
                    start: start + k * 16384,
                    len: 2048,
                })
                .collect(),
            // The whole stack dirty.
            "dense" => vec![CopyRun {
                start,
                len: SPINE_STACK_BYTES,
            }],
            other => panic!("unknown spine pattern {other}"),
        }
    };
    spine_ranges()
        .iter()
        .enumerate()
        .map(|(tid, r)| (tid as u32, per_thread(r.start())))
        .collect()
}

/// Commits `commits` times on the virtual clock and splits the stall
/// ledger into (critical-path ns, merge ns).
fn spine_commit_cost(
    process: &mut PersistentProcess,
    runs: &BTreeMap<u32, Vec<CopyRun>>,
    commits: u64,
) -> (u64, u64) {
    let acct = StallAccountant::new_virtual();
    for _ in 0..commits {
        process.commit_attributed(runs, 1, None, Some(&acct));
    }
    let snap = acct.snapshot();
    let merge = snap.cause_total_ns(StallCause::Merge);
    let total: u64 = StallCause::ALL
        .iter()
        .map(|&c| snap.cause_total_ns(c))
        .sum();
    (total - merge, merge)
}

/// Runs one micro workload to completion and returns the machine's
/// per-phase NVM byte tally.
fn spine_amp_arm(
    spec: MicroSpec,
    intervals: u64,
    spine: Option<prosper_core::SpineConfig>,
) -> NvmBytesRow {
    let mut machine = Machine::new(MachineConfig::setup_i());
    {
        let mut mgr = CheckpointManager::new(&mut machine, 30_000);
        let mut mech = match spine {
            Some(cfg) => ProsperMechanism::with_defaults().with_spine(cfg),
            None => ProsperMechanism::with_defaults(),
        };
        mgr.run_stack_only(MicroBench::new(spec, SEED), &mut mech, intervals);
    }
    NvmBytesRow::from_phases(machine.ckpt_nvm_bytes())
}

fn spine_amp_row(pattern: &str, spec: MicroSpec, intervals: u64) -> SpineAmpRow {
    SpineAmpRow {
        pattern: pattern.to_string(),
        intervals,
        eager: spine_amp_arm(spec, intervals, None),
        spine: spine_amp_arm(spec, intervals, Some(prosper_core::SpineConfig::default())),
    }
}

/// Measures the staged-delta spine against eager apply.
#[must_use]
pub fn spine_section(cfg: &PerfConfig) -> SpineSection {
    use prosper_core::SpineConfig;
    let commits = cfg.commit_iters();
    let policies = [
        ("merge-always", SpineConfig::merge_always()),
        ("default", SpineConfig::default()),
        ("lazy", SpineConfig::lazy(64)),
    ];
    let mut latency = Vec::new();
    for pattern in ["sparse-stack", "clustered", "dense"] {
        let runs = spine_pattern_runs(pattern);
        for (policy, spine_cfg) in policies {
            let mut eager = PersistentProcess::new(&spine_ranges());
            let (eager_critical_ns, _) = spine_commit_cost(&mut eager, &runs, commits);
            let mut spined = PersistentProcess::new_with_spine(&spine_ranges(), spine_cfg);
            let (spine_critical_ns, spine_merge_ns) =
                spine_commit_cost(&mut spined, &runs, commits);
            latency.push(SpineLatencyRow {
                pattern: pattern.to_string(),
                policy: policy.to_string(),
                commits,
                eager_critical_ns,
                spine_critical_ns,
                spine_merge_ns,
                spine_batches_left: spined.spine_batches(),
            });
        }
    }

    let intervals = cfg.workload_intervals();
    let write_amp = vec![
        spine_amp_row("sparse", MicroSpec::Sparse { pages: 16 }, intervals),
        spine_amp_row(
            "clustered",
            MicroSpec::Random { array_bytes: 65536 },
            intervals,
        ),
        spine_amp_row("dense", MicroSpec::Stream { array_bytes: 65536 }, intervals),
    ];
    // Steady state: the same hot words dirtied every interval, so the
    // spine's deferred fold dedups what eager apply copies each time.
    let hot_words = spine_amp_row(
        "repeated-hot-words",
        MicroSpec::Stream { array_bytes: 8192 },
        intervals.max(6),
    );

    SpineSection {
        host_parallelism: host_parallelism(),
        threads: SPINE_THREADS as usize,
        latency,
        write_amp,
        hot_words,
    }
}

// ---------------------------------------------------------------------------
// Section 6: frame-allocator throughput (PR 9)
// ---------------------------------------------------------------------------

/// Frames each worker holds at the top of an alloc/free round.
const ALLOC_BURST: u64 = 128;

/// One worker-count configuration of the allocator study.
#[derive(Clone, Debug, Serialize)]
pub struct AllocRow {
    /// Concurrent workers hammering the allocator.
    pub workers: usize,
    /// Total alloc+free operations per timed repetition (all workers).
    pub ops: u64,
    /// Best (minimum) wall time across repetitions, lock-free tree.
    pub lockfree_ns: u64,
    /// Best (minimum) wall time across repetitions,
    /// `Mutex<PhysMemory>` reference.
    pub reference_ns: u64,
    /// Lock-free throughput at the best repetition (million ops/s).
    pub lockfree_mops: f64,
    /// Reference throughput at the best repetition (million ops/s).
    pub reference_mops: f64,
    /// `reference_ns / lockfree_ns` — same op count per arm.
    pub speedup: f64,
}

/// The frame-allocator scaling study: lock-free [`FrameAlloc`] vs the
/// mutex-guarded serial [`PhysMemory`] reference.
#[derive(Clone, Debug, Serialize)]
pub struct AllocSection {
    /// `available_parallelism()` on the recording host — the scaling
    /// gate only judges worker counts up to this cap.
    pub host_parallelism: usize,
    /// DRAM frames installed in the arena.
    pub dram_frames: u64,
    /// Frames each worker holds at the top of a round.
    pub burst: u64,
    /// Alloc/free rounds per worker per repetition.
    pub rounds: u64,
    /// Timed repetitions per arm (the minimum is reported).
    pub reps: u64,
    /// Whether [`validate`] enforces the scaling gate on this report
    /// (false on single-core hosts, where concurrent workers cannot
    /// scale by construction).
    pub gate_enforced: bool,
    /// One row per worker count.
    pub rows: Vec<AllocRow>,
}

/// Arena sized so eight workers' bursts plus per-worker subtree
/// reservations never exhaust the DRAM pool.
fn alloc_arena() -> MemoryLayout {
    MemoryLayout {
        dram_bytes: 32 * 1024 * 1024,
        nvm_bytes: 2 * 1024 * 1024,
    }
}

/// One timed repetition of the lock-free arm: `workers` scoped
/// threads, each allocating a burst of frames and freeing them back,
/// `rounds` times, through the shared `&self` allocator.
fn alloc_lockfree_rep(workers: usize, rounds: u64) -> u64 {
    let alloc = FrameAlloc::new(alloc_arena());
    let t = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let alloc = &alloc;
            scope.spawn(move || {
                let mut held = Vec::with_capacity(ALLOC_BURST as usize);
                for _ in 0..rounds {
                    for _ in 0..ALLOC_BURST {
                        held.push(alloc.alloc_for(Pool::Dram, w as u32).expect("dram frame"));
                    }
                    for pfn in held.drain(..) {
                        alloc.free(pfn).expect("free");
                    }
                }
            });
        }
    });
    t.elapsed().as_nanos() as u64
}

/// One timed repetition of the reference arm: the same workload shape
/// against `Mutex<PhysMemory>`, locking per operation — the cost the
/// `&mut self` API imposes on every concurrent caller.
fn alloc_reference_rep(workers: usize, rounds: u64) -> u64 {
    let mem = std::sync::Mutex::new(PhysMemory::new(alloc_arena()));
    let t = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let mem = &mem;
            scope.spawn(move || {
                let mut held = Vec::with_capacity(ALLOC_BURST as usize);
                for _ in 0..rounds {
                    for _ in 0..ALLOC_BURST {
                        held.push(mem.lock().unwrap().alloc(Pool::Dram).expect("dram frame"));
                    }
                    for pfn in held.drain(..) {
                        mem.lock().unwrap().free(pfn).expect("free");
                    }
                }
            });
        }
    });
    t.elapsed().as_nanos() as u64
}

/// Measures alloc/free throughput across worker counts, both arms
/// timed as the minimum over `alloc_reps` repetitions.
#[must_use]
pub fn alloc_section(cfg: &PerfConfig) -> AllocSection {
    let rounds = cfg.alloc_rounds();
    let reps = cfg.alloc_reps();
    let argmin = |time_rep: &dyn Fn() -> u64| (0..reps).map(|_| time_rep()).min().unwrap_or(1);
    let mut rows = Vec::new();
    for &workers in cfg.alloc_workers() {
        let lockfree_ns = argmin(&|| alloc_lockfree_rep(workers, rounds)).max(1);
        let reference_ns = argmin(&|| alloc_reference_rep(workers, rounds)).max(1);
        let ops = workers as u64 * rounds * ALLOC_BURST * 2;
        let mops = |ns: u64| ops as f64 * 1e3 / ns as f64;
        rows.push(AllocRow {
            workers,
            ops,
            lockfree_ns,
            reference_ns,
            lockfree_mops: mops(lockfree_ns),
            reference_mops: mops(reference_ns),
            speedup: reference_ns as f64 / lockfree_ns as f64,
        });
    }
    let host_parallelism = host_parallelism();
    AllocSection {
        host_parallelism,
        dram_frames: alloc_arena().dram_bytes / 4096,
        burst: ALLOC_BURST,
        rounds,
        reps,
        gate_enforced: host_parallelism > 1,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Section 7: fleet bandwidth smoothing (PR 9)
// ---------------------------------------------------------------------------

/// One scheduling arm of the fleet study.
#[derive(Clone, Debug, Serialize)]
pub struct FleetArm {
    /// Whether shard intervals were staggered.
    pub staggered: bool,
    /// Commits completed across the run.
    pub commits: u64,
    /// Commits deferred by staging backpressure.
    pub deferred_commits: u64,
    /// Total checkpoint NVM bytes across all phases.
    pub ckpt_nvm_bytes: u64,
    /// Hottest bandwidth window's byte count.
    pub peak_window_bytes: u64,
    /// Peak-to-mean NVM write-bandwidth ratio (milli-units) — the
    /// gated number.
    pub peak_to_mean_milli: u64,
}

/// The fleet bandwidth-smoothing study: identical workload, staggered
/// vs aligned shard schedules.
#[derive(Clone, Debug, Serialize)]
pub struct FleetSection {
    /// Shards in the fleet.
    pub shards: u32,
    /// Tenant processes per shard.
    pub tenants_per_shard: u32,
    /// Checkpoint intervals executed.
    pub intervals: u32,
    /// Bandwidth-window width on the virtual clock (ns).
    pub window_ns: u64,
    /// The staggered-schedule arm.
    pub staggered: FleetArm,
    /// The aligned-schedule arm.
    pub aligned: FleetArm,
    /// `aligned.peak_to_mean_milli - staggered.peak_to_mean_milli` —
    /// how much of the bandwidth spike the stagger removed.
    pub smoothing_milli: u64,
}

fn fleet_arm(cfg: FleetConfig) -> FleetArm {
    let result = CheckpointFleet::new(cfg).run();
    FleetArm {
        staggered: cfg.staggered,
        commits: result.commits,
        deferred_commits: result.deferred_commits,
        ckpt_nvm_bytes: result.nvm_phase_bytes.total(),
        peak_window_bytes: result.peak_window_bytes,
        peak_to_mean_milli: result.peak_to_mean_milli,
    }
}

/// Runs both fleet arms on the deterministic virtual clock. The two
/// configs differ only in the `staggered` flag, so total checkpoint
/// bytes match by construction and the peak-to-mean comparison is
/// pure scheduling.
#[must_use]
pub fn fleet_section() -> FleetSection {
    let cfg = FleetConfig::smoke();
    let staggered = fleet_arm(cfg);
    let aligned = fleet_arm(FleetConfig::smoke_aligned());
    FleetSection {
        shards: cfg.shards,
        tenants_per_shard: cfg.tenants_per_shard,
        intervals: cfg.intervals,
        window_ns: cfg.window_ns,
        smoothing_milli: aligned
            .peak_to_mean_milli
            .saturating_sub(staggered.peak_to_mean_milli),
        staggered,
        aligned,
    }
}

// ---------------------------------------------------------------------------
// Report assembly
// ---------------------------------------------------------------------------

/// Headline numbers the acceptance criteria read directly.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Sparse-stack `inspect_and_clear` speedup, hierarchical vs
    /// BTreeMap reference.
    pub sparse_stack_speedup: f64,
    /// Largest worker count the commit study measured.
    pub max_commit_workers: usize,
    /// Commit speedup at that worker count vs serial.
    pub commit_speedup_at_max_workers: f64,
    /// Worker count the pipelined burst's adaptive selector picked.
    pub pipelined_adaptive_workers: usize,
    /// Pipelined adaptive-configuration speedup vs serial (gated at
    /// [`PIPELINE_GATE`] when the host has parallelism).
    pub pipelined_adaptive_speedup: f64,
    /// p99 whole-interval checkpoint latency (simulated cycles).
    pub ckpt_interval_p99_cycles: u64,
    /// Eager-apply NVM write amplification (milli-units: bytes
    /// written per 1000 dirty bytes) on the repeated-hot-words
    /// workload.
    pub eager_hot_words_write_amp_milli: u64,
    /// Spine-mode write amplification on the same workload — gated
    /// strictly below the eager number.
    pub spine_hot_words_write_amp_milli: u64,
    /// Mean per-phase checkpoint cycles (telemetry timers).
    pub ckpt_phase_mean_cycles: BTreeMap<String, f64>,
    /// Mean per-phase commit wall time at the max worker count (ns).
    pub commit_phase_mean_ns: BTreeMap<String, f64>,
    /// Lock-free allocator speedup vs the reference at one worker
    /// (gated at [`ALLOC_SERIAL_GATE`]).
    pub alloc_serial_speedup: f64,
    /// Lock-free allocator speedup at the largest measured worker
    /// count.
    pub alloc_speedup_at_max_workers: f64,
    /// Staggered fleet peak-to-mean NVM bandwidth ratio (milli).
    pub fleet_staggered_peak_to_mean_milli: u64,
    /// Aligned fleet peak-to-mean ratio — gated strictly above the
    /// staggered number.
    pub fleet_aligned_peak_to_mean_milli: u64,
}

/// The full perf-baseline report, serialized to `BENCH_pr3.json`.
#[derive(Clone, Debug, Serialize)]
pub struct PerfReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Whether the reduced CI budgets were used.
    pub quick: bool,
    /// `available_parallelism()` on the recording host — the number
    /// every auto-skipped gate is judged against.
    pub host_parallelism: usize,
    /// Section 1: bitmap inspection comparison.
    pub bitmap: Vec<BitmapRow>,
    /// Section 2: parallel commit scaling.
    pub commit: CommitSection,
    /// Section 2b: pipelined commit scaling and the adaptive gate.
    pub pipeline: PipelineSection,
    /// Section 3: checkpoint latency percentiles.
    pub checkpoint: CheckpointSection,
    /// Section 4a: micro-workload end-to-end runs.
    pub workloads: Vec<WorkloadRow>,
    /// Section 4b: scheduler end-to-end runs across process counts.
    pub scheduler: Vec<ScheduleRow>,
    /// Section 5: staged-delta spine vs eager apply.
    pub spine: SpineSection,
    /// Section 6: lock-free frame-allocator throughput.
    pub alloc: AllocSection,
    /// Section 7: fleet NVM bandwidth smoothing.
    pub fleet: FleetSection,
    /// Headline numbers.
    pub summary: Summary,
}

fn registry_snapshot() -> MetricsSnapshot {
    telemetry::with(|t| t.registry().snapshot()).unwrap_or_default()
}

fn hist(snap: &MetricsSnapshot, name: &str) -> HistogramSnapshot {
    snap.histograms.get(name).cloned().unwrap_or_default()
}

/// Runs every section and assembles the report. Installs a telemetry
/// context for the duration if none is active (the phase timers and
/// latency histograms come from the registry).
#[must_use]
pub fn run_all(cfg: &PerfConfig) -> PerfReport {
    let installed = if telemetry::enabled() {
        false
    } else {
        telemetry::install(Telemetry::new(Box::new(NoopSink)));
        true
    };

    let bitmap = bitmap_section(cfg);
    let commit = commit_section(cfg);
    let pipeline = pipeline_section(cfg);
    let checkpoint = checkpoint_section(cfg);
    let workloads = workload_section(cfg);
    let scheduler = schedule_section(cfg);
    let spine = spine_section(cfg);
    let alloc = alloc_section(cfg);
    let fleet = fleet_section();

    if installed {
        let _ = telemetry::uninstall();
    }

    let sparse_stack_speedup = bitmap
        .iter()
        .find(|r| r.pattern == "sparse-stack")
        .map_or(0.0, |r| r.speedup);
    let max_row = commit.rows.iter().max_by_key(|r| r.workers);
    let summary = Summary {
        sparse_stack_speedup,
        max_commit_workers: max_row.map_or(0, |r| r.workers),
        commit_speedup_at_max_workers: max_row.map_or(0.0, |r| r.speedup_vs_serial),
        pipelined_adaptive_workers: pipeline.adaptive_workers,
        pipelined_adaptive_speedup: pipeline.adaptive_speedup_vs_serial,
        ckpt_interval_p99_cycles: checkpoint.interval_cycles.p99,
        eager_hot_words_write_amp_milli: spine.hot_words.eager.write_amp_milli,
        spine_hot_words_write_amp_milli: spine.hot_words.spine.write_amp_milli,
        ckpt_phase_mean_cycles: checkpoint
            .phase_cycles
            .iter()
            .map(|(k, v)| (k.clone(), v.mean))
            .collect(),
        commit_phase_mean_ns: max_row.map_or_else(BTreeMap::new, |r| {
            BTreeMap::from([
                ("stage".to_string(), r.stage_ns_mean),
                ("seal".to_string(), r.seal_ns_mean),
                ("apply".to_string(), r.apply_ns_mean),
            ])
        }),
        alloc_serial_speedup: alloc.rows.first().map_or(0.0, |r| r.speedup),
        alloc_speedup_at_max_workers: alloc
            .rows
            .iter()
            .max_by_key(|r| r.workers)
            .map_or(0.0, |r| r.speedup),
        fleet_staggered_peak_to_mean_milli: fleet.staggered.peak_to_mean_milli,
        fleet_aligned_peak_to_mean_milli: fleet.aligned.peak_to_mean_milli,
    };

    PerfReport {
        schema: SCHEMA.to_string(),
        quick: cfg.quick,
        host_parallelism: host_parallelism(),
        bitmap,
        commit,
        pipeline,
        checkpoint,
        workloads,
        scheduler,
        spine,
        alloc,
        fleet,
        summary,
    }
}

/// Checks the report against the PR's acceptance criteria.
///
/// # Errors
///
/// Returns a description of the first violated criterion.
pub fn validate(report: &PerfReport) -> Result<(), String> {
    if report.schema != SCHEMA {
        return Err(format!("unexpected schema tag {:?}", report.schema));
    }
    if report.bitmap.is_empty() {
        return Err("bitmap section is empty".into());
    }
    let sparse = report
        .bitmap
        .iter()
        .find(|r| r.pattern == "sparse-stack")
        .ok_or("no sparse-stack bitmap row")?;
    if sparse.speedup < SPARSE_STACK_GATE {
        return Err(format!(
            "sparse-stack speedup {:.2}x below the {SPARSE_STACK_GATE}x gate",
            sparse.speedup
        ));
    }
    if report.commit.rows.iter().all(|r| r.workers < 4) {
        return Err("commit scaling never reached 4 workers".into());
    }
    let p = &report.pipeline;
    if p.rows.iter().all(|r| r.workers < 4) {
        return Err("pipelined scaling never reached 4 workers".into());
    }
    if p.adaptive_workers == 0 || p.adaptive_mean_ns <= 0.0 {
        return Err("pipelined adaptive configuration was not measured".into());
    }
    if p.gate_enforced != (p.host_parallelism > 1) {
        return Err("pipeline gate flag disagrees with host parallelism".into());
    }
    if p.gate_enforced && p.adaptive_speedup_vs_serial < PIPELINE_GATE {
        return Err(format!(
            "adaptive pipelined commit ({} workers) is {:.2}x serial, below \
             the {PIPELINE_GATE}x gate on a {}-way host",
            p.adaptive_workers, p.adaptive_speedup_vs_serial, p.host_parallelism
        ));
    }
    if report.checkpoint.interval_cycles.count == 0 {
        return Err("no checkpoint-latency samples recorded".into());
    }
    if report.workloads.is_empty() || report.scheduler.is_empty() {
        return Err("end-to-end section is empty".into());
    }
    let s = &report.spine;
    if s.latency.is_empty() || s.write_amp.is_empty() {
        return Err("spine section is empty".into());
    }
    for row in &s.latency {
        if row.spine_critical_ns > row.eager_critical_ns {
            return Err(format!(
                "spine critical-path latency {} ns exceeds eager {} ns on \
                 pattern {} / policy {}",
                row.spine_critical_ns, row.eager_critical_ns, row.pattern, row.policy
            ));
        }
    }
    // v4: seal-time descriptor coalescing flipped every write-amp arm
    // from reported-only to gated — including the sparse
    // many-tiny-runs pattern that used to lose to descriptor
    // overhead.
    for row in &s.write_amp {
        if row.spine.write_amp_milli > row.eager.write_amp_milli {
            return Err(format!(
                "spine write amplification {} exceeds eager {} on pattern {}",
                row.spine.write_amp_milli, row.eager.write_amp_milli, row.pattern
            ));
        }
    }
    let hw = &s.hot_words;
    if hw.eager.stage != hw.spine.stage {
        return Err(format!(
            "hot-words arms staged different byte counts ({} vs {}) — the \
             amplification comparison is apples to oranges",
            hw.eager.stage, hw.spine.stage
        ));
    }
    if hw.spine.write_amp_milli >= hw.eager.write_amp_milli {
        return Err(format!(
            "spine write amplification {} not strictly below eager {} on the \
             repeated-hot-words workload",
            hw.spine.write_amp_milli, hw.eager.write_amp_milli
        ));
    }

    let a = &report.alloc;
    if a.rows.is_empty() || a.rows[0].workers != 1 {
        return Err("alloc sweep must start at one worker".into());
    }
    if a.gate_enforced != (a.host_parallelism > 1) {
        return Err("alloc gate flag disagrees with host parallelism".into());
    }
    if a.rows[0].speedup < ALLOC_SERIAL_GATE {
        return Err(format!(
            "lock-free allocator is {:.2}x the serial reference at one \
             worker, below the {ALLOC_SERIAL_GATE}x gate",
            a.rows[0].speedup
        ));
    }
    if a.gate_enforced {
        for pair in a.rows.windows(2) {
            if pair[1].workers > a.host_parallelism {
                break;
            }
            if pair[1].lockfree_mops < pair[0].lockfree_mops * ALLOC_SCALING_FLOOR {
                return Err(format!(
                    "lock-free throughput degrades from {:.1} Mops/s at {} \
                     workers to {:.1} at {} (floor {:.0}% on a {}-way host)",
                    pair[0].lockfree_mops,
                    pair[0].workers,
                    pair[1].lockfree_mops,
                    pair[1].workers,
                    ALLOC_SCALING_FLOOR * 100.0,
                    a.host_parallelism
                ));
            }
        }
    }

    let f = &report.fleet;
    if f.staggered.ckpt_nvm_bytes != f.aligned.ckpt_nvm_bytes {
        return Err(format!(
            "fleet arms checkpointed different NVM byte totals ({} vs {}) — \
             the smoothing comparison is apples to oranges",
            f.staggered.ckpt_nvm_bytes, f.aligned.ckpt_nvm_bytes
        ));
    }
    if f.staggered.peak_to_mean_milli >= f.aligned.peak_to_mean_milli {
        return Err(format!(
            "staggered fleet peak-to-mean {} not strictly below aligned {}",
            f.staggered.peak_to_mean_milli, f.aligned.peak_to_mean_milli
        ));
    }
    Ok(())
}

/// Renders the report as printable tables.
#[must_use]
pub fn render(report: &PerfReport) -> Vec<Table> {
    let mut tables = Vec::new();

    let mut t = Table::new(
        "Bitmap inspection: hierarchical vs BTreeMap reference",
        &[
            "pattern",
            "dirty words",
            "hier ns",
            "sparse ns",
            "hier Mgranule/s",
            "speedup",
        ],
    );
    for r in &report.bitmap {
        t.push_row(&[
            r.pattern.clone(),
            r.dirty_words.to_string(),
            format!("{:.0}", r.hier_ns_mean),
            format!("{:.0}", r.sparse_ns_mean),
            format!("{:.1}", r.hier_granules_per_sec / 1e6),
            ratio(r.speedup),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        format!(
            "Parallel commit: {} threads, {} runs/thread, {} B/commit, host parallelism {}",
            report.commit.threads,
            report.commit.runs_per_thread,
            report.commit.bytes_per_commit,
            report.commit.host_parallelism
        ),
        &[
            "workers",
            "mean µs",
            "stage µs",
            "seal µs",
            "apply µs",
            "speedup",
        ],
    );
    for r in &report.commit.rows {
        t.push_row(&[
            r.workers.to_string(),
            format!("{:.1}", r.mean_ns / 1e3),
            format!("{:.1}", r.stage_ns_mean / 1e3),
            format!("{:.1}", r.seal_ns_mean / 1e3),
            format!("{:.1}", r.apply_ns_mean / 1e3),
            ratio(r.speedup_vs_serial),
        ]);
    }
    tables.push(t);

    let p = &report.pipeline;
    let mut t = Table::new(
        format!(
            "Pipelined commit: {} batches/burst, adaptive pick {} worker(s), gate {}",
            p.batches,
            p.adaptive_workers,
            if p.gate_enforced {
                "enforced"
            } else {
                "skipped (single-core host)"
            }
        ),
        &["workers", "mean µs", "telemetry burst µs", "speedup"],
    );
    for r in &p.rows {
        t.push_row(&[
            r.workers.to_string(),
            format!("{:.1}", r.mean_ns / 1e3),
            format!("{:.1}", r.burst_ns_mean / 1e3),
            ratio(r.speedup_vs_serial),
        ]);
    }
    t.push_row(&[
        format!("adaptive({})", p.adaptive_workers),
        format!("{:.1}", p.adaptive_mean_ns / 1e3),
        "-".to_string(),
        ratio(p.adaptive_speedup_vs_serial),
    ]);
    tables.push(t);

    let c = &report.checkpoint;
    let mut t = Table::new(
        format!(
            "Checkpoint latency: {} over {} intervals (simulated cycles)",
            c.workload, c.intervals
        ),
        &["timer", "count", "mean", "p50", "p90", "p99", "max"],
    );
    let stat_row = |name: &str, s: &LatencyStats| {
        vec![
            name.to_string(),
            s.count.to_string(),
            format!("{:.0}", s.mean),
            s.p50.to_string(),
            s.p90.to_string(),
            s.p99.to_string(),
            s.max.to_string(),
        ]
    };
    t.push_row(&stat_row("interval", &c.interval_cycles));
    for (phase, s) in &c.phase_cycles {
        t.push_row(&stat_row(&format!("phase.{phase}"), s));
    }
    tables.push(t);

    let mut t = Table::new(
        "End-to-end micro workloads",
        &[
            "workload",
            "intervals",
            "total cycles",
            "ckpt cycles",
            "bytes",
            "wall ms",
        ],
    );
    for r in &report.workloads {
        t.push_row(&[
            r.name.clone(),
            r.intervals.to_string(),
            r.total_cycles.to_string(),
            r.checkpoint_cycles.to_string(),
            r.bytes_copied.to_string(),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        "End-to-end scheduler across process counts",
        &["processes", "switches", "total cycles", "wall ms"],
    );
    for r in &report.scheduler {
        t.push_row(&[
            r.processes.to_string(),
            r.switches.to_string(),
            r.total_cycles.to_string(),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    tables.push(t);

    let s = &report.spine;
    let mut t = Table::new(
        format!(
            "Staged-delta spine: commit critical path, {} threads x {} commits (virtual ns)",
            s.threads,
            s.latency.first().map_or(0, |r| r.commits)
        ),
        &[
            "pattern",
            "policy",
            "eager crit",
            "spine crit",
            "merge (deferred)",
            "batches left",
        ],
    );
    for r in &s.latency {
        t.push_row(&[
            r.pattern.clone(),
            r.policy.clone(),
            r.eager_critical_ns.to_string(),
            r.spine_critical_ns.to_string(),
            r.spine_merge_ns.to_string(),
            r.spine_batches_left.to_string(),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        "Staged-delta spine: NVM write amplification (milli = bytes per 1000 dirty bytes)",
        &[
            "workload",
            "intervals",
            "eager amp",
            "spine amp",
            "eager bytes",
            "spine bytes",
        ],
    );
    for r in s.write_amp.iter().chain(std::iter::once(&s.hot_words)) {
        t.push_row(&[
            r.pattern.clone(),
            r.intervals.to_string(),
            r.eager.write_amp_milli.to_string(),
            r.spine.write_amp_milli.to_string(),
            r.eager.total().to_string(),
            r.spine.total().to_string(),
        ]);
    }
    tables.push(t);

    let a = &report.alloc;
    let mut t = Table::new(
        format!(
            "Frame allocator: lock-free vs Mutex<PhysMemory>, burst {} x {} rounds, \
             best of {} reps, scaling gate {}",
            a.burst,
            a.rounds,
            a.reps,
            if a.gate_enforced {
                "enforced"
            } else {
                "skipped (single-core host)"
            }
        ),
        &["workers", "lock-free Mops/s", "reference Mops/s", "speedup"],
    );
    for r in &a.rows {
        t.push_row(&[
            r.workers.to_string(),
            format!("{:.1}", r.lockfree_mops),
            format!("{:.1}", r.reference_mops),
            ratio(r.speedup),
        ]);
    }
    tables.push(t);

    let f = &report.fleet;
    let mut t = Table::new(
        format!(
            "Fleet NVM bandwidth smoothing: {} shards x {} tenants x {} intervals, \
             {} ns windows",
            f.shards, f.tenants_per_shard, f.intervals, f.window_ns
        ),
        &[
            "schedule",
            "commits",
            "deferred",
            "nvm bytes",
            "peak window B",
            "peak/mean milli",
        ],
    );
    for arm in [&f.staggered, &f.aligned] {
        t.push_row(&[
            if arm.staggered {
                "staggered"
            } else {
                "aligned"
            }
            .to_string(),
            arm.commits.to_string(),
            arm.deferred_commits.to_string(),
            arm.ckpt_nvm_bytes.to_string(),
            arm.peak_window_bytes.to_string(),
            arm.peak_to_mean_milli.to_string(),
        ]);
    }
    tables.push(t);

    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal budgets so the suite stays test-sized.
    fn tiny() -> PerfConfig {
        PerfConfig { quick: true }
    }

    #[test]
    fn quick_suite_produces_valid_report() {
        let report = run_all(&tiny());
        validate(&report).expect("quick report passes the acceptance gate");
        assert_eq!(report.bitmap.len(), 3);
        assert!(report.summary.sparse_stack_speedup >= SPARSE_STACK_GATE);
        assert!(report.summary.max_commit_workers >= 4);
        assert!(report.checkpoint.interval_cycles.count > 0);
        // Phase timers made it into the summary.
        assert_eq!(report.summary.ckpt_phase_mean_cycles.len(), 4);
        assert_eq!(report.summary.commit_phase_mean_ns.len(), 3);
        // The pipelined study ran and its summary fields agree.
        assert!(report.pipeline.rows.iter().any(|r| r.workers >= 4));
        assert_eq!(
            report.summary.pipelined_adaptive_workers,
            report.pipeline.adaptive_workers
        );
        assert!(report.pipeline.adaptive_workers >= 1);
        // The spine study ran: 3 patterns x 3 policies, and the
        // hot-words amplification win made it into the summary.
        assert_eq!(report.spine.latency.len(), 9);
        assert_eq!(report.spine.write_amp.len(), 3);
        assert!(
            report.summary.spine_hot_words_write_amp_milli
                < report.summary.eager_hot_words_write_amp_milli
        );
        // The allocator study ran at 1..=4 workers and its serial gate
        // number made it into the summary.
        assert!(report.alloc.rows.iter().any(|r| r.workers >= 4));
        assert!(report.summary.alloc_serial_speedup >= ALLOC_SERIAL_GATE);
        // The fleet arms moved identical bytes and the stagger won.
        assert_eq!(
            report.fleet.staggered.ckpt_nvm_bytes,
            report.fleet.aligned.ckpt_nvm_bytes
        );
        assert!(
            report.summary.fleet_staggered_peak_to_mean_milli
                < report.summary.fleet_aligned_peak_to_mean_milli
        );
        assert!(report.host_parallelism >= 1);
        // The report serializes and re-parses.
        let json = serde_json::to_string_pretty(&report).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        assert_eq!(
            v.get("bitmap").and_then(|b| b.as_array()).map(Vec::len),
            Some(3)
        );
    }

    #[test]
    fn render_covers_every_section() {
        let report = run_all(&tiny());
        let tables = render(&report);
        assert_eq!(tables.len(), 10);
        for t in &tables {
            assert!(!t.rows.is_empty(), "{} has rows", t.title);
        }
    }

    #[test]
    fn pipeline_gate_skips_on_single_core_and_rejects_losing_picks() {
        let mut report = run_all(&tiny());
        // The flag must track the recording host exactly.
        assert_eq!(
            report.pipeline.gate_enforced,
            report.pipeline.host_parallelism > 1
        );
        // A losing adaptive configuration fails validation on a
        // parallel host and sails through on a single-core one.
        report.pipeline.adaptive_speedup_vs_serial = 0.5;
        report.pipeline.host_parallelism = 4;
        report.pipeline.gate_enforced = true;
        let err = validate(&report).expect_err("losing pick must fail the gate");
        assert!(err.contains("below"), "unexpected gate error: {err}");
        report.pipeline.host_parallelism = 1;
        report.pipeline.gate_enforced = false;
        validate(&report).expect("single-core host skips the speedup gate");
    }

    #[test]
    fn bitmap_patterns_are_sane() {
        let rows = bitmap_section(&tiny());
        let dense = rows.iter().find(|r| r.pattern == "dense").unwrap();
        assert_eq!(dense.dirty_words, WINDOW_WORDS);
        let sparse = rows.iter().find(|r| r.pattern == "sparse-stack").unwrap();
        assert!(sparse.dirty_words < 64);
        assert!(sparse.hier_granules_per_sec > sparse.sparse_granules_per_sec);
    }
}
