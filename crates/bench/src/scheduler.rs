//! A timeslice scheduler composing the full multi-process story:
//! several persistent workloads share one core, the OS context-
//! switches between them (saving/restoring the Prosper tracker state
//! with the quiescence protocol), and each process's stack is
//! checkpointed at its own consistency intervals.
//!
//! This is the end-to-end shape of the paper's GemOS deployment
//! (Sections III-C/III-D): per-thread bitmap areas, tracker state as
//! part of the architectural context, and checkpoints that inspect
//! only the owning thread's active region.

use prosper_core::multithread::MultiThreadTracker;
use prosper_core::tracker::TrackerConfig;
use prosper_gemos::context::BASELINE_SWITCH_CYCLES;
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;
use prosper_trace::record::{AccessKind, Region, TraceEvent};
use prosper_trace::source::TraceSource;
use prosper_trace::stack::StackModel;
use prosper_trace::workloads::{Workload, WorkloadProfile};
use serde::Serialize;

use crate::report::Table;
use crate::scale::SEED;

/// Per-process result of a scheduled run.
#[derive(Clone, Debug, Serialize)]
pub struct ScheduledProcess {
    /// Workload name.
    pub name: String,
    /// Stack stores the process performed.
    pub stack_stores: u64,
    /// Bytes its checkpoints copied.
    pub bytes_copied: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// Aggregate result of the scheduled run.
#[derive(Clone, Debug, Serialize)]
pub struct ScheduleResult {
    /// Per-process outcomes.
    pub processes: Vec<ScheduledProcess>,
    /// Context switches performed.
    pub switches: u64,
    /// Mean Prosper-added cycles per switch.
    pub mean_switch_overhead: f64,
    /// Total cycles of the run.
    pub total_cycles: Cycles,
}

/// Runs `profiles` round-robin with the given timeslice, checkpointing
/// each process's stack every `interval` cycles of *its own* runtime.
///
/// # Panics
///
/// Panics if `profiles` is empty or the timeslice is zero.
pub fn run_scheduled(
    profiles: &[WorkloadProfile],
    timeslice: Cycles,
    interval: Cycles,
    slices: u64,
) -> ScheduleResult {
    assert!(!profiles.is_empty(), "need at least one process");
    assert!(timeslice > 0, "timeslice must be positive");

    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mt = MultiThreadTracker::new(TrackerConfig::default());

    // One stack range and bitmap area per process.
    let mut workloads = Vec::new();
    for (i, profile) in profiles.iter().enumerate() {
        let top = VirtAddr::new(0x7000_0000_0000 + (i as u64) * 0x1_0000_0000);
        let stack = StackModel::with_layout(i as u32, top, 8 * 1024 * 1024);
        mt.register_thread(
            i as u32,
            stack.reserved_range(),
            VirtAddr::new(0x1000_0000 + (i as u64) * 0x100_0000),
        );
        workloads.push(Workload::with_stack(
            profile.clone(),
            SEED + i as u64,
            stack,
        ));
    }

    let mut results: Vec<ScheduledProcess> = profiles
        .iter()
        .map(|p| ScheduledProcess {
            name: p.name.to_string(),
            stack_stores: 0,
            bytes_copied: 0,
            checkpoints: 0,
        })
        .collect();
    let mut runtime: Vec<Cycles> = vec![0; profiles.len()];
    let mut next_ckpt: Vec<Cycles> = vec![interval; profiles.len()];
    let mut switch_overhead = 0u64;
    let mut switches = 0u64;

    mt.schedule(&mut machine, 0);
    let mut current = 0usize;

    for _ in 0..slices {
        // Run the current process for one timeslice.
        let slice_end = runtime[current] + timeslice;
        while runtime[current] < slice_end {
            let ev = workloads[current].next_event();
            runtime[current] += ev.budget_cycles();
            match ev {
                TraceEvent::Compute(c) => machine.advance(c),
                TraceEvent::Access(a) => {
                    match a.kind {
                        AccessKind::Load => machine.load(a.vaddr, u64::from(a.size)),
                        AccessKind::Store => machine.store(a.vaddr, u64::from(a.size)),
                    };
                    if a.region == Region::Stack && a.kind == AccessKind::Store {
                        results[current].stack_stores += 1;
                        mt.observe_store(&mut machine, a.vaddr, u64::from(a.size));
                    }
                }
            }
        }

        // Its consistency interval may have elapsed: checkpoint.
        if runtime[current] >= next_ckpt[current] {
            next_ckpt[current] += interval;
            mt.tracker_mut().flush();
            let top = workloads[current].stack().top();
            let watermark = mt.tracker().min_soi_watermark().unwrap_or(top);
            let geom = mt.tracker().geometry();
            let (runs, _) = mt
                .tracker_mut()
                .bitmap_mut()
                .inspect_and_clear(&geom, VirtRange::new(watermark, top));
            let bytes: u64 = runs.iter().map(|r| r.len).sum();
            if bytes > 0 {
                machine.bulk_copy_dram_to_nvm(bytes);
            }
            results[current].bytes_copied += bytes;
            results[current].checkpoints += 1;
            mt.tracker_mut().reset_watermark();
        }

        // Timer interrupt: switch to the next process.
        let next = (current + 1) % profiles.len();
        if next != current {
            machine.advance(BASELINE_SWITCH_CYCLES);
            switch_overhead += mt.schedule(&mut machine, next as u32);
            switches += 1;
            current = next;
        }
    }

    ScheduleResult {
        processes: results,
        switches,
        mean_switch_overhead: if switches == 0 {
            0.0
        } else {
            switch_overhead as f64 / switches as f64
        },
        total_cycles: machine.now(),
    }
}

/// Renders a [`ScheduleResult`] as a table.
pub fn render(result: &ScheduleResult) -> Table {
    let mut table = Table::new(
        format!(
            "Timeslice scheduling: {} switches, mean tracker save/restore {:.0} cycles",
            result.switches, result.mean_switch_overhead
        ),
        &["process", "stack stores", "bytes copied", "checkpoints"],
    );
    for p in &result.processes {
        table.push_row(&[
            p.name.clone(),
            p.stack_stores.to_string(),
            p.bytes_copied.to_string(),
            p.checkpoints.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_processes_share_the_core() {
        let profiles = [WorkloadProfile::gapbs_pr(), WorkloadProfile::ycsb_mem()];
        let res = run_scheduled(&profiles, 20_000, 60_000, 24);
        assert_eq!(res.processes.len(), 2);
        assert_eq!(res.switches, 24);
        for p in &res.processes {
            assert!(p.stack_stores > 0, "{} ran", p.name);
            assert!(p.checkpoints >= 3, "{} checkpointed", p.name);
            assert!(p.bytes_copied > 0, "{} persisted data", p.name);
        }
        // Gapbs is stack-heavy relative to Ycsb.
        assert!(res.processes[0].stack_stores > res.processes[1].stack_stores);
        assert!(res.mean_switch_overhead > 0.0);
        assert!(
            res.mean_switch_overhead < 3_000.0,
            "switch overhead stays in the hundreds-of-cycles regime: {}",
            res.mean_switch_overhead
        );
    }

    #[test]
    fn single_process_never_switches() {
        let profiles = [WorkloadProfile::g500_sssp()];
        let res = run_scheduled(&profiles, 20_000, 40_000, 8);
        assert_eq!(res.switches, 0);
        assert_eq!(res.mean_switch_overhead, 0.0);
        assert!(res.processes[0].checkpoints > 0);
    }

    #[test]
    fn deterministic() {
        let profiles = [WorkloadProfile::gapbs_pr(), WorkloadProfile::mcf()];
        let a = run_scheduled(&profiles, 15_000, 45_000, 12);
        let b = run_scheduled(&profiles, 15_000, 45_000, 12);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.processes[0].bytes_copied, b.processes[0].bytes_copied);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_process_list_rejected() {
        run_scheduled(&[], 1000, 1000, 1);
    }
}
