//! Criterion bench: the tracker's per-store hot path — the SOI filter
//! plus the lookup-table update. This is the logic that sits next to
//! the L1D in hardware; in the simulator it must be cheap enough to
//! run per store across millions of events.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prosper_core::tracker::{DirtyTracker, TrackerConfig};
use prosper_memsim::addr::{VirtAddr, VirtRange};

fn tracker() -> (DirtyTracker, VirtRange) {
    let range = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7080_0000));
    let mut t = DirtyTracker::new(TrackerConfig::default());
    t.configure(range, VirtAddr::new(0x1000_0000));
    (t, range)
}

fn bench_soi_hit(c: &mut Criterion) {
    c.bench_function("tracker_observe_soi_coalesced", |b| {
        let (mut t, range) = tracker();
        b.iter(|| black_box(t.observe_store(black_box(range.start() + 64), 8)));
    });
}

fn bench_soi_scatter(c: &mut Criterion) {
    c.bench_function("tracker_observe_soi_scatter", |b| {
        let (mut t, range) = tracker();
        let mut offset = 0u64;
        b.iter(|| {
            offset = (offset + 4096 + 8) % 0x7f_0000;
            black_box(t.observe_store(black_box(range.start() + offset), 8))
        });
    });
}

fn bench_filtered_out(c: &mut Criterion) {
    c.bench_function("tracker_observe_non_soi", |b| {
        let (mut t, _) = tracker();
        // Heap address: filtered by the range comparator.
        b.iter(|| black_box(t.observe_store(black_box(VirtAddr::new(0x5555_0000_0000)), 8)));
    });
}

criterion_group!(
    benches,
    bench_soi_hit,
    bench_soi_scatter,
    bench_filtered_out
);
criterion_main!(benches);
