//! Criterion bench: end-to-end checkpoint cost of Prosper vs Dirtybit
//! on a Sparse interval (the paper's best case for sub-page tracking).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prosper_baselines::DirtybitMechanism;
use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::{CheckpointManager, MemoryPersistence};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_trace::micro::{MicroBench, MicroSpec};

fn run_intervals(mech: &mut dyn MemoryPersistence) -> u64 {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, 30_000);
    let bench = MicroBench::new(MicroSpec::Sparse { pages: 16 }, 1);
    let res = mgr.run_stack_only(bench, mech, 2);
    res.checkpoint_cycles
}

fn bench_prosper_checkpoint(c: &mut Criterion) {
    c.bench_function("checkpoint_sparse_prosper", |b| {
        b.iter(|| {
            let mut mech = ProsperMechanism::with_defaults();
            black_box(run_intervals(&mut mech))
        });
    });
}

fn bench_dirtybit_checkpoint(c: &mut Criterion) {
    c.bench_function("checkpoint_sparse_dirtybit", |b| {
        b.iter(|| {
            let mut mech = DirtybitMechanism::new();
            black_box(run_intervals(&mut mech))
        });
    });
}

criterion_group!(benches, bench_prosper_checkpoint, bench_dirtybit_checkpoint);
criterion_main!(benches);
