//! Criterion bench: machine-model access throughput (the simulator
//! substrate's hot path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prosper_memsim::addr::VirtAddr;
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;

fn bench_l1_hits(c: &mut Criterion) {
    c.bench_function("machine_store_l1_hit", |b| {
        let mut m = Machine::new(MachineConfig::setup_i());
        m.store(VirtAddr::new(0x1000), 8);
        b.iter(|| black_box(m.store(black_box(VirtAddr::new(0x1000)), 8)));
    });
}

fn bench_streaming_misses(c: &mut Criterion) {
    c.bench_function("machine_load_stream_miss", |b| {
        let mut m = Machine::new(MachineConfig::setup_i());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) % (1 << 28);
            black_box(m.load(black_box(VirtAddr::new(0x100_0000 + addr)), 8))
        });
    });
}

fn bench_injected_traffic(c: &mut Criterion) {
    c.bench_function("machine_inject_store", |b| {
        let mut m = Machine::new(MachineConfig::setup_i());
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 64) % (1 << 20);
            m.inject_store(black_box(VirtAddr::new(0x2000_0000 + addr)), 4);
        });
    });
}

criterion_group!(
    benches,
    bench_l1_hits,
    bench_streaming_misses,
    bench_injected_traffic
);
criterion_main!(benches);
