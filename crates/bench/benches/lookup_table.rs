//! Criterion bench: lookup-table record/flush throughput under the
//! paper's default configuration and both allocation policies.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prosper_core::lookup::{AllocPolicy, LookupTable};

fn bench_record_hit(c: &mut Criterion) {
    c.bench_function("lookup_record_hit", |b| {
        let mut table = LookupTable::new(16, 24, 8, AllocPolicy::AccumulateAndApply);
        let mut read = |_addr: u64| 0u32;
        // Warm one entry; subsequent records hit.
        table.record(0x100, 0, &mut read);
        let mut bit = 0u32;
        b.iter(|| {
            bit = (bit + 1) % 20; // stay below HWM=24
            black_box(table.record(black_box(0x100), bit, &mut read))
        });
    });
}

fn bench_record_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_record_scatter");
    for policy in [AllocPolicy::AccumulateAndApply, AllocPolicy::LoadAndUpdate] {
        group.bench_function(format!("{policy:?}"), |b| {
            let mut table = LookupTable::new(16, 24, 8, policy);
            let mut read = |_addr: u64| 0u32;
            let mut word = 0u64;
            b.iter(|| {
                word = word.wrapping_add(4).wrapping_mul(2862933555777941757) % (1 << 20);
                black_box(table.record(black_box(word & !3), 3, &mut read))
            });
        });
    }
    group.finish();
}

fn bench_flush_all(c: &mut Criterion) {
    c.bench_function("lookup_flush_all_16_entries", |b| {
        b.iter_with_setup(
            || {
                let mut table = LookupTable::new(16, 24, 8, AllocPolicy::AccumulateAndApply);
                let mut read = |_addr: u64| 0u32;
                for i in 0..16u64 {
                    table.record(i * 4, 0, &mut read);
                }
                table
            },
            |mut table| {
                let mut read = |_addr: u64| 0u32;
                black_box(table.flush_all(&mut read))
            },
        );
    });
}

criterion_group!(
    benches,
    bench_record_hit,
    bench_record_scatter,
    bench_flush_all
);
criterion_main!(benches);
