//! Criterion bench: dirty-bitmap inspection/coalescing throughput —
//! the dominant metadata cost of a Prosper checkpoint.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use prosper_core::bitmap::{BitmapGeometry, DirtyBitmap};
use prosper_memsim::addr::{VirtAddr, VirtRange};

fn geometry() -> BitmapGeometry {
    BitmapGeometry {
        range_start: VirtAddr::new(0x7000_0000),
        bitmap_base: VirtAddr::new(0x1000_0000),
        granularity: 8,
    }
}

fn bench_inspect(c: &mut Criterion) {
    let geom = geometry();
    let mut group = c.benchmark_group("bitmap_inspect_and_clear");
    for density in [1u64, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("bits_per_word", density),
            &density,
            |b, &density| {
                b.iter_with_setup(
                    || {
                        let mut bm = DirtyBitmap::new();
                        for w in 0..512u64 {
                            let mut value = 0u32;
                            for bit in 0..density {
                                value |= 1 << (bit * (32 / density.max(1)) % 32);
                            }
                            bm.write_word(0x1000_0000 + w * 4, value);
                        }
                        bm
                    },
                    |mut bm| {
                        let active = VirtRange::new(
                            VirtAddr::new(0x7000_0000),
                            VirtAddr::new(0x7000_0000 + 512 * 256),
                        );
                        black_box(bm.inspect_and_clear(&geom, active))
                    },
                );
            },
        );
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    c.bench_function("bitmap_merge_word", |b| {
        let mut bm = DirtyBitmap::new();
        let mut w = 0u64;
        b.iter(|| {
            w = (w + 4) % 4096;
            bm.merge_word(black_box(0x1000_0000 + w), black_box(0xff00_00ff));
        });
    });
}

criterion_group!(benches, bench_inspect, bench_merge);
criterion_main!(benches);
