//! The data plane: a per-thread persistent stack in NVM, updated
//! crash-consistently in two steps (Section III-B, point 4–5 of
//! Figure 6).
//!
//! At each checkpoint the OS first copies the dirty stack bytes into a
//! **staging buffer** in NVM together with a record of where they
//! belong; only once the staging buffer is complete is it **applied**
//! to the per-thread persistent stack. A commit sequence number is
//! written last. A crash before the apply completes recovers by
//! re-applying the (complete) staging buffer; a crash before the
//! staging buffer is sealed discards it — either way the persistent
//! stack reflects a whole checkpoint, never a torn one.

use prosper_gemos::crash::Persistent;
use prosper_gemos::image::MemoryImage;
use prosper_memsim::addr::{VirtAddr, VirtRange};
use serde::{Deserialize, Serialize};

use crate::bitmap::CopyRun;

/// Commit phases a crash can interrupt.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
enum CommitPhase {
    /// No commit in flight.
    Idle,
    /// Runs are being copied into the staging buffer (not yet sealed).
    Staging,
    /// The staging buffer is sealed; the apply to the persistent stack
    /// may be partially done.
    Sealed,
}

/// A staged run: target address plus the bytes to apply.
#[derive(Clone, Debug, PartialEq, Eq)]
struct StagedRun {
    start: VirtAddr,
    data: Vec<u8>,
}

/// The per-thread persistent stack store.
///
/// `volatile` mirrors the thread's live stack (in DRAM); `persistent`
/// is the NVM copy that recovery reads. All state that survives a
/// crash lives in `persistent`, `staging`, `sealed`, and
/// `committed_sequence` — [`PersistentStack::crash`] erases everything
/// else.
///
/// # Examples
///
/// ```
/// use prosper_core::bitmap::CopyRun;
/// use prosper_core::persist::PersistentStack;
/// use prosper_memsim::addr::{VirtAddr, VirtRange};
///
/// let range = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7001_0000));
/// let mut ps = PersistentStack::new(0, range);
/// ps.record_store(VirtAddr::new(0x7000_0100), b"saved");
/// ps.checkpoint(&[CopyRun { start: VirtAddr::new(0x7000_0100), len: 8 }]);
/// ps.crash();
/// ps.recover_after_crash();
/// assert_eq!(ps.volatile().read(VirtAddr::new(0x7000_0100), 5), b"saved");
/// ```
#[derive(Debug)]
pub struct PersistentStack {
    tid: u32,
    range: VirtRange,
    /// Live (DRAM) image of the stack.
    volatile: MemoryImage,
    /// NVM persistent stack.
    persistent: MemoryImage,
    /// NVM staging buffer (step one of the two-step commit).
    staging: Vec<StagedRun>,
    /// Sequence the open staging buffer belongs to (0 when no buffer
    /// is open). Written with `begin_stage`, so after a crash recovery
    /// can tell a buffer staged for sequence N from one staged ahead
    /// for N+1 while N's apply was still draining (the pipelined
    /// commit overlap window).
    staging_sequence: u64,
    /// Staging seal marker (durably written after all runs are staged).
    sealed: bool,
    phase: CommitPhase,
    /// Sequence number of the last fully-applied commit.
    committed_sequence: u64,
    next_sequence: u64,
}

impl PersistentStack {
    /// Creates an empty store for thread `tid` covering `range`.
    pub fn new(tid: u32, range: VirtRange) -> Self {
        Self {
            tid,
            range,
            volatile: MemoryImage::new(),
            persistent: MemoryImage::new(),
            staging: Vec::new(),
            staging_sequence: 0,
            sealed: false,
            phase: CommitPhase::Idle,
            committed_sequence: 0,
            next_sequence: 1,
        }
    }

    /// Owning thread.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The tracked stack range.
    pub fn range(&self) -> VirtRange {
        self.range
    }

    /// Records a live store into the volatile stack image.
    ///
    /// # Panics
    ///
    /// Panics if the write leaves the stack range.
    pub fn record_store(&mut self, addr: VirtAddr, bytes: &[u8]) {
        assert!(
            self.range.overlaps_access(addr, bytes.len() as u64),
            "store at {addr} outside stack range {}",
            self.range
        );
        self.volatile.write(addr, bytes);
    }

    /// The live volatile image.
    pub fn volatile(&self) -> &MemoryImage {
        &self.volatile
    }

    /// The persistent NVM image.
    pub fn persistent(&self) -> &MemoryImage {
        &self.persistent
    }

    /// Sequence number of the last complete commit.
    pub fn committed_sequence(&self) -> u64 {
        self.committed_sequence
    }

    /// Opens a fresh staging buffer (discarding any previous one).
    /// First step of the commit; a crash here leaves an empty,
    /// unsealed buffer that recovery discards. The buffer is tagged
    /// with this stack's own next sequence; whole-process commits use
    /// [`Self::begin_stage_at`] to tag it with the process sequence.
    pub fn begin_stage(&mut self) {
        self.begin_stage_at(self.next_sequence);
    }

    /// [`Self::begin_stage`] with an explicit sequence tag. The
    /// pipelined whole-process commit stages sequence N+1's runs while
    /// N's apply drains; the tag is what lets recovery replay a sealed
    /// record N without touching buffers staged ahead for N+1.
    pub fn begin_stage_at(&mut self, sequence: u64) {
        self.phase = CommitPhase::Staging;
        self.sealed = false;
        self.staging.clear();
        self.staging_sequence = sequence;
    }

    /// Sequence tag of the open staging buffer (0 when none is open).
    pub fn staging_sequence(&self) -> u64 {
        self.staging_sequence
    }

    /// Stages one dirty run from the volatile image into the NVM
    /// staging buffer. Drivable run-by-run so fault injection can fire
    /// a crash between any two runs.
    pub fn stage_run(&mut self, run: &CopyRun) {
        debug_assert!(
            self.phase == CommitPhase::Staging,
            "stage_run outside an open staging buffer"
        );
        let data = self.volatile.read(run.start, run.len as usize);
        self.staging.push(StagedRun {
            start: run.start,
            data,
        });
    }

    /// Durably writes the seal marker: the staging buffer is complete
    /// and recovery may replay it. For whole-process commits the
    /// per-stack seal is superseded by the process commit record (see
    /// `prosper_core::recovery`).
    pub fn seal(&mut self) {
        self.sealed = true;
        self.phase = CommitPhase::Sealed;
    }

    /// Number of runs currently staged.
    pub fn staged_runs(&self) -> usize {
        self.staging.len()
    }

    /// Total bytes currently staged across all runs — the
    /// deterministic work-size input for stall attribution's
    /// redo-cost model.
    pub fn staged_bytes(&self) -> u64 {
        self.staging.iter().map(|r| r.data.len() as u64).sum()
    }

    /// Bytes of the staged run at `idx` (0 when out of bounds; the
    /// cost model must never panic the commit path).
    pub fn staged_run_len(&self, idx: usize) -> u64 {
        self.staging.get(idx).map_or(0, |r| r.data.len() as u64)
    }

    /// Whether a sealed staging buffer exists.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// **Step one** of the commit: stage the dirty runs (as produced by
    /// bitmap inspection) from the volatile image into the NVM staging
    /// buffer, then seal it.
    pub fn stage(&mut self, runs: &[CopyRun]) {
        self.stage_partial(runs);
        self.seal();
    }

    /// Applies the staged run at `idx` to the persistent stack.
    /// Idempotent (staged runs carry absolute data), so recovery can
    /// replay applies interrupted at any point. Drivable run-by-run
    /// for fault injection.
    ///
    /// The caller vouches for the commit point: either this stack's
    /// seal marker ([`Self::apply`]) or a whole-process commit record.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds of the staging buffer.
    pub fn apply_run(&mut self, idx: usize) {
        let run = &self.staging[idx];
        self.persistent.write(run.start, &run.data);
    }

    /// Finishes an apply: durably records `sequence` as the committed
    /// checkpoint and retires the staging buffer.
    pub fn finish_apply(&mut self, sequence: u64) {
        self.committed_sequence = sequence;
        self.next_sequence = self.next_sequence.max(sequence + 1);
        self.staging.clear();
        self.staging_sequence = 0;
        self.sealed = false;
        self.phase = CommitPhase::Idle;
    }

    /// Discards an unsealed staging buffer (what recovery does when
    /// the crash hit before the seal).
    pub fn discard_staging(&mut self) {
        self.staging.clear();
        self.staging_sequence = 0;
        self.sealed = false;
        self.phase = CommitPhase::Idle;
    }

    /// **Step two**: apply the sealed staging buffer to the persistent
    /// stack and bump the commit sequence.
    ///
    /// # Panics
    ///
    /// Panics if no sealed staging buffer exists.
    pub fn apply(&mut self) {
        assert!(
            self.sealed && self.phase == CommitPhase::Sealed,
            "apply without a sealed staging buffer"
        );
        for idx in 0..self.staging.len() {
            self.apply_run(idx);
        }
        self.finish_apply(self.next_sequence);
    }

    /// Convenience: stage + apply in one call (the normal checkpoint
    /// path).
    pub fn checkpoint(&mut self, runs: &[CopyRun]) {
        self.stage(runs);
        self.apply();
    }

    /// Begins staging but stops **before the seal marker is written**
    /// — the state a crash leaves when it interrupts step one of the
    /// commit. Recovery must discard this buffer. Exposed for
    /// crash-injection tests and fault-injection harnesses.
    pub fn stage_partial(&mut self, runs: &[CopyRun]) {
        self.begin_stage();
        for run in runs {
            self.stage_run(run);
        }
        // Crash window: the seal marker is never written.
    }

    /// Simulates a power failure: volatile state is lost; persistent
    /// state (including any staged-but-unapplied buffer) survives.
    pub fn crash(&mut self) {
        self.volatile = MemoryImage::new();
    }

    /// Crash recovery: if a sealed staging buffer exists, the crash hit
    /// between seal and apply-complete — re-apply it idempotently. An
    /// unsealed buffer is discarded. The volatile image is then rebuilt
    /// from the persistent stack.
    pub fn recover_after_crash(&mut self) {
        if self.sealed {
            // Idempotent re-apply: staged runs carry absolute data.
            for idx in 0..self.staging.len() {
                self.apply_run(idx);
            }
            self.finish_apply(self.next_sequence);
        } else {
            self.discard_staging();
        }
        self.volatile = self.persistent.clone();
    }
}

impl Persistent for PersistentStack {
    fn commit(&mut self) {
        // Without tracking information, commit conservatively copies
        // the whole active image (tests exercise the tracked path via
        // `checkpoint`).
        let run = CopyRun {
            start: self.range.start(),
            len: self.range.len(),
        };
        self.checkpoint(&[run]);
    }

    fn recover(&mut self) {
        self.crash();
        self.recover_after_crash();
    }

    fn recovered_image(&self) -> &MemoryImage {
        &self.persistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PersistentStack {
        PersistentStack::new(
            0,
            VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7001_0000)),
        )
    }

    fn run(start: u64, len: u64) -> CopyRun {
        CopyRun {
            start: VirtAddr::new(start),
            len,
        }
    }

    #[test]
    fn checkpoint_then_crash_recovers_committed_data() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"committed");
        s.checkpoint(&[run(0x7000_0100, 16)]);
        // Post-checkpoint write is lost at the crash.
        s.record_store(VirtAddr::new(0x7000_0100), b"uncommitt");
        s.crash();
        s.recover_after_crash();
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0100), 9),
            b"committed"
        );
        assert_eq!(s.committed_sequence(), 1);
    }

    #[test]
    fn crash_during_staging_discards_partial_buffer() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0200), b"old");
        s.checkpoint(&[run(0x7000_0200, 8)]);
        s.record_store(VirtAddr::new(0x7000_0200), b"new");
        // Begin staging but crash before the seal marker is written.
        s.stage_partial(&[run(0x7000_0200, 8)]);
        s.crash();
        s.recover_after_crash();
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0200), 3),
            b"old",
            "unsealed staging discarded"
        );
        assert_eq!(s.committed_sequence(), 1);
    }

    #[test]
    fn crash_between_seal_and_apply_replays_staging() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0300), b"fresh");
        s.stage(&[run(0x7000_0300, 8)]);
        // Crash after seal, before apply.
        s.crash();
        s.recover_after_crash();
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0300), 5),
            b"fresh",
            "sealed staging replayed on recovery"
        );
        assert_eq!(s.committed_sequence(), 1);
    }

    #[test]
    fn run_by_run_staging_matches_batched_stage() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"alpha");
        s.record_store(VirtAddr::new(0x7000_0200), b"beta");
        s.begin_stage();
        s.stage_run(&run(0x7000_0100, 8));
        assert_eq!(s.staged_runs(), 1);
        s.stage_run(&run(0x7000_0200, 8));
        assert!(!s.is_sealed());
        s.seal();
        assert!(s.is_sealed());
        s.apply();
        assert_eq!(s.committed_sequence(), 1);
        assert_eq!(s.persistent().read(VirtAddr::new(0x7000_0100), 5), b"alpha");
        assert_eq!(s.persistent().read(VirtAddr::new(0x7000_0200), 4), b"beta");
    }

    #[test]
    fn crash_mid_apply_replays_all_runs_idempotently() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"one");
        s.record_store(VirtAddr::new(0x7000_0200), b"two");
        s.stage(&[run(0x7000_0100, 8), run(0x7000_0200, 8)]);
        // Apply the first run, then crash: the sealed buffer replays
        // in full on recovery, landing exactly one commit.
        s.apply_run(0);
        s.crash();
        s.recover_after_crash();
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0100), 3), b"one");
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0200), 3), b"two");
        assert_eq!(s.committed_sequence(), 1);
        assert_eq!(s.staged_runs(), 0);
    }

    #[test]
    fn finish_apply_with_external_sequence_keeps_counter_monotonic() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"proc");
        s.begin_stage();
        s.stage_run(&run(0x7000_0100, 8));
        s.apply_run(0);
        // A whole-process commit record supplies the sequence.
        s.finish_apply(7);
        assert_eq!(s.committed_sequence(), 7);
        // The next standalone checkpoint continues past it.
        s.record_store(VirtAddr::new(0x7000_0100), b"solo");
        s.checkpoint(&[run(0x7000_0100, 8)]);
        assert_eq!(s.committed_sequence(), 8);
    }

    #[test]
    fn only_staged_runs_persist() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0400), b"in-run");
        s.record_store(VirtAddr::new(0x7000_0500), b"not-in-run");
        s.checkpoint(&[run(0x7000_0400, 8)]);
        s.crash();
        s.recover_after_crash();
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0400), 6), b"in-run");
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0500), 10),
            vec![0u8; 10],
            "unstaged bytes were never persisted"
        );
    }

    #[test]
    fn sequence_advances_per_commit() {
        let mut s = store();
        for i in 0..5 {
            s.record_store(VirtAddr::new(0x7000_0000), &[i as u8; 8]);
            s.checkpoint(&[run(0x7000_0000, 8)]);
        }
        assert_eq!(s.committed_sequence(), 5);
    }

    #[test]
    fn staging_sequence_tags_survive_crash_and_clear_on_retire() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"ahead");
        assert_eq!(s.staging_sequence(), 0, "no open buffer yet");
        // A buffer staged ahead for a later whole-process sequence
        // keeps its tag across the crash (it lives in NVM)...
        s.begin_stage_at(7);
        s.stage_run(&run(0x7000_0100, 8));
        s.crash();
        assert_eq!(s.staging_sequence(), 7);
        // ...and recovery discards the unsealed buffer and drops the tag.
        s.recover_after_crash();
        assert_eq!(s.staging_sequence(), 0);
        assert_eq!(s.staged_runs(), 0);
        // finish_apply also retires the tag.
        s.record_store(VirtAddr::new(0x7000_0100), b"again");
        s.begin_stage_at(9);
        s.stage_run(&run(0x7000_0100, 8));
        s.apply_run(0);
        s.finish_apply(9);
        assert_eq!(s.staging_sequence(), 0);
        assert_eq!(s.committed_sequence(), 9);
    }

    #[test]
    #[should_panic(expected = "apply without a sealed staging buffer")]
    fn apply_without_stage_panics() {
        store().apply();
    }

    #[test]
    #[should_panic(expected = "outside stack range")]
    fn out_of_range_store_rejected() {
        store().record_store(VirtAddr::new(0x100), b"x");
    }

    #[test]
    fn persistent_trait_full_range_commit() {
        let mut s = PersistentStack::new(
            0,
            VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_1000)),
        );
        s.record_store(VirtAddr::new(0x7000_0800), &[0xab; 32]);
        Persistent::commit(&mut s);
        Persistent::recover(&mut s);
        assert_eq!(
            s.recovered_image().read(VirtAddr::new(0x7000_0800), 32),
            vec![0xab; 32]
        );
    }
}
