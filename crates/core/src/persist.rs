//! The data plane: a per-thread persistent stack in NVM, updated
//! crash-consistently in two steps (Section III-B, point 4–5 of
//! Figure 6).
//!
//! At each checkpoint the OS first copies the dirty stack bytes into a
//! **staging buffer** in NVM together with a record of where they
//! belong; only once the staging buffer is complete is it **applied**
//! to the per-thread persistent stack. A commit sequence number is
//! written last. A crash before the apply completes recovers by
//! re-applying the (complete) staging buffer; a crash before the
//! staging buffer is sealed discards it — either way the persistent
//! stack reflects a whole checkpoint, never a torn one.
//!
//! # Staged-delta spine (PR 8)
//!
//! The eager protocol pays the dirty-byte bill twice per interval:
//! once DRAM→staging and once staging→persistent-stack, with the
//! second copy on the commit critical path. The spine mode removes
//! the second copy from the critical path LSM-style: sealing a commit
//! **appends** the staged buffer to an NVM-resident spine of
//! immutable [`DeltaBatch`]es instead of applying it, and the seal
//! remains the sole durability point. A deferred **merge** —
//! triggered by batch count or overlapping-byte ratio, tunable via
//! [`SpineConfig`] — folds the spine newest-wins into the persistent
//! image, writing each surviving byte exactly once (overlapped bytes
//! from older batches are never written). Recovery folds the same
//! way; reads that need the durable state consult the spine-aware
//! [`PersistentStack::read_effective`].

use prosper_gemos::crash::Persistent;
use prosper_gemos::image::MemoryImage;
use prosper_memsim::addr::{VirtAddr, VirtRange};
use serde::{Deserialize, Serialize};

use crate::bitmap::CopyRun;

/// Commit phases a crash can interrupt.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
enum CommitPhase {
    /// No commit in flight.
    Idle,
    /// Runs are being copied into the staging buffer (not yet sealed).
    Staging,
    /// The staging buffer is sealed; the apply to the persistent stack
    /// may be partially done.
    Sealed,
}

/// A staged run: target address plus the bytes to apply.
#[derive(Clone, Debug, PartialEq, Eq)]
struct StagedRun {
    start: VirtAddr,
    data: Vec<u8>,
}

/// Tuning of the deferred spine merge (the LSM compaction policy).
///
/// A merge is triggered when **either** threshold is crossed: the
/// spine holds at least `max_batches` batches (bounding recovery
/// fold work), or the overlapping-byte ratio across batches reaches
/// `overlap_permille` (the write-amplification win of merging — every
/// overlapped byte is a byte the fold never writes — outweighs the
/// cost of rewriting the distinct coverage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpineConfig {
    /// Merge when the spine reaches this many batches (>= 2).
    pub max_batches: usize,
    /// Merge when `1000 * overlapped_bytes / total_batch_bytes`
    /// reaches this threshold (0 merges at every opportunity; 1001
    /// never triggers on overlap alone).
    pub overlap_permille: u32,
}

impl Default for SpineConfig {
    fn default() -> Self {
        Self {
            max_batches: 8,
            overlap_permille: 300,
        }
    }
}

impl SpineConfig {
    /// An eager-ish policy: merge as soon as two batches exist.
    #[must_use]
    pub fn merge_always() -> Self {
        Self {
            max_batches: 2,
            overlap_permille: 0,
        }
    }

    /// A lazy policy: merge only on batch-count pressure, never on
    /// overlap.
    #[must_use]
    pub fn lazy(max_batches: usize) -> Self {
        Self {
            max_batches,
            overlap_permille: 1001,
        }
    }
}

/// One immutable sealed delta batch on the spine: the staged runs of
/// exactly one committed sequence. Never mutated after
/// [`PersistentStack::seal_to_spine`] creates it; merges fold batches
/// into the persistent image and retire them wholesale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaBatch {
    sequence: u64,
    runs: Vec<StagedRun>,
}

impl DeltaBatch {
    /// The committed sequence this batch holds.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Number of runs in the batch.
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// Total payload bytes in the batch.
    pub fn bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.data.len() as u64).sum()
    }
}

/// One step of a spine merge: the deduplicated writes for one batch
/// (newest-first fold order), precomputed so fault injection can
/// crash between any two steps.
#[derive(Clone, Debug)]
pub struct MergeStep {
    writes: Vec<StagedRun>,
    batches_folded: u32,
}

impl MergeStep {
    /// NVM bytes this step writes (already deduplicated against
    /// newer batches' coverage).
    pub fn bytes(&self) -> u64 {
        self.writes.iter().map(|r| r.data.len() as u64).sum()
    }

    /// How many batches are folded once this step completes.
    pub fn batches_folded(&self) -> u32 {
        self.batches_folded
    }
}

/// What a completed merge did — the inputs for write-amplification
/// accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Batches folded into the persistent image and retired.
    pub batches_folded: u64,
    /// Total payload bytes across the folded batches.
    pub input_bytes: u64,
    /// Distinct NVM bytes actually written by the fold (always
    /// `<= input_bytes`; the difference is the overlap the merge
    /// never rewrites).
    pub written_bytes: u64,
}

/// Byte intervals `[start, end)`, kept sorted and disjoint.
type Coverage = Vec<(u64, u64)>;

/// Parts of `[start, end)` not covered by `coverage`.
fn subtract_coverage(start: u64, end: u64, coverage: &Coverage) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut cursor = start;
    for &(cs, ce) in coverage {
        if ce <= cursor {
            continue;
        }
        if cs >= end {
            break;
        }
        if cs > cursor {
            out.push((cursor, cs.min(end)));
        }
        cursor = cursor.max(ce);
        if cursor >= end {
            return out;
        }
    }
    if cursor < end {
        out.push((cursor, end));
    }
    out
}

/// Inserts `[start, end)` into `coverage`, merging adjacent and
/// overlapping intervals.
fn insert_coverage(coverage: &mut Coverage, start: u64, end: u64) {
    let mut merged = (start, end);
    let mut out = Vec::with_capacity(coverage.len() + 1);
    let mut placed = false;
    for &(cs, ce) in coverage.iter() {
        if ce < merged.0 {
            out.push((cs, ce));
        } else if cs > merged.1 {
            if !placed {
                out.push(merged);
                placed = true;
            }
            out.push((cs, ce));
        } else {
            merged = (merged.0.min(cs), merged.1.max(ce));
        }
    }
    if !placed {
        out.push(merged);
    }
    *coverage = out;
}

/// Folds a staged-run list into the minimal set of disjoint, maximal
/// runs with newest-wins byte values: where runs overlap, the
/// last-staged bytes survive; abutting runs concatenate into one
/// descriptor. A batch sealed from the result covers exactly the same
/// bytes with the same final values, but carries the fewest possible
/// run descriptors — which is what the spine persists per batch and
/// what every later merge walks.
fn coalesce_runs(runs: Vec<StagedRun>) -> Vec<StagedRun> {
    let mut coverage: Coverage = Vec::new();
    let mut pieces: Vec<StagedRun> = Vec::new();
    // Newest-first: only the parts of older runs not shadowed by a
    // newer run survive.
    for run in runs.iter().rev() {
        let s = run.start.raw();
        let e = s + run.data.len() as u64;
        for (ws, we) in subtract_coverage(s, e, &coverage) {
            let lo = (ws - s) as usize;
            let hi = (we - s) as usize;
            pieces.push(StagedRun {
                start: VirtAddr::new(ws),
                data: run.data[lo..hi].to_vec(),
            });
        }
        insert_coverage(&mut coverage, s, e);
    }
    pieces.sort_by_key(|r| r.start.raw());
    let mut out: Vec<StagedRun> = Vec::with_capacity(pieces.len());
    for piece in pieces {
        match out.last_mut() {
            Some(prev) if prev.start.raw() + prev.data.len() as u64 == piece.start.raw() => {
                prev.data.extend_from_slice(&piece.data);
            }
            _ => out.push(piece),
        }
    }
    out
}

/// The per-thread persistent stack store.
///
/// `volatile` mirrors the thread's live stack (in DRAM); `persistent`
/// is the NVM copy that recovery reads. All state that survives a
/// crash lives in `persistent`, `staging`, `sealed`, and
/// `committed_sequence` — [`PersistentStack::crash`] erases everything
/// else.
///
/// # Examples
///
/// ```
/// use prosper_core::bitmap::CopyRun;
/// use prosper_core::persist::PersistentStack;
/// use prosper_memsim::addr::{VirtAddr, VirtRange};
///
/// let range = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7001_0000));
/// let mut ps = PersistentStack::new(0, range);
/// ps.record_store(VirtAddr::new(0x7000_0100), b"saved");
/// ps.checkpoint(&[CopyRun { start: VirtAddr::new(0x7000_0100), len: 8 }]);
/// ps.crash();
/// ps.recover_after_crash();
/// assert_eq!(ps.volatile().read(VirtAddr::new(0x7000_0100), 5), b"saved");
/// ```
#[derive(Debug)]
pub struct PersistentStack {
    tid: u32,
    range: VirtRange,
    /// Live (DRAM) image of the stack.
    volatile: MemoryImage,
    /// NVM persistent stack.
    persistent: MemoryImage,
    /// NVM staging buffer (step one of the two-step commit).
    staging: Vec<StagedRun>,
    /// Sequence the open staging buffer belongs to (0 when no buffer
    /// is open). Written with `begin_stage`, so after a crash recovery
    /// can tell a buffer staged for sequence N from one staged ahead
    /// for N+1 while N's apply was still draining (the pipelined
    /// commit overlap window).
    staging_sequence: u64,
    /// Staging seal marker (durably written after all runs are staged).
    sealed: bool,
    phase: CommitPhase,
    /// Sequence number of the last fully-applied commit.
    committed_sequence: u64,
    next_sequence: u64,
    /// NVM-resident spine of immutable sealed delta batches, oldest
    /// first (ascending sequence). Empty in eager-apply mode.
    spine: Vec<DeltaBatch>,
}

impl PersistentStack {
    /// Creates an empty store for thread `tid` covering `range`.
    pub fn new(tid: u32, range: VirtRange) -> Self {
        Self {
            tid,
            range,
            volatile: MemoryImage::new(),
            persistent: MemoryImage::new(),
            staging: Vec::new(),
            staging_sequence: 0,
            sealed: false,
            phase: CommitPhase::Idle,
            committed_sequence: 0,
            next_sequence: 1,
            spine: Vec::new(),
        }
    }

    /// Owning thread.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The tracked stack range.
    pub fn range(&self) -> VirtRange {
        self.range
    }

    /// Records a live store into the volatile stack image.
    ///
    /// # Panics
    ///
    /// Panics if the write leaves the stack range.
    pub fn record_store(&mut self, addr: VirtAddr, bytes: &[u8]) {
        assert!(
            self.range.overlaps_access(addr, bytes.len() as u64),
            "store at {addr} outside stack range {}",
            self.range
        );
        self.volatile.write(addr, bytes);
    }

    /// The live volatile image.
    pub fn volatile(&self) -> &MemoryImage {
        &self.volatile
    }

    /// The persistent NVM image.
    pub fn persistent(&self) -> &MemoryImage {
        &self.persistent
    }

    /// Sequence number of the last complete commit.
    pub fn committed_sequence(&self) -> u64 {
        self.committed_sequence
    }

    /// Opens a fresh staging buffer (discarding any previous one).
    /// First step of the commit; a crash here leaves an empty,
    /// unsealed buffer that recovery discards. The buffer is tagged
    /// with this stack's own next sequence; whole-process commits use
    /// [`Self::begin_stage_at`] to tag it with the process sequence.
    pub fn begin_stage(&mut self) {
        self.begin_stage_at(self.next_sequence);
    }

    /// [`Self::begin_stage`] with an explicit sequence tag. The
    /// pipelined whole-process commit stages sequence N+1's runs while
    /// N's apply drains; the tag is what lets recovery replay a sealed
    /// record N without touching buffers staged ahead for N+1.
    pub fn begin_stage_at(&mut self, sequence: u64) {
        self.phase = CommitPhase::Staging;
        self.sealed = false;
        self.staging.clear();
        self.staging_sequence = sequence;
    }

    /// Sequence tag of the open staging buffer (0 when none is open).
    pub fn staging_sequence(&self) -> u64 {
        self.staging_sequence
    }

    /// Stages one dirty run from the volatile image into the NVM
    /// staging buffer. Drivable run-by-run so fault injection can fire
    /// a crash between any two runs.
    pub fn stage_run(&mut self, run: &CopyRun) {
        debug_assert!(
            self.phase == CommitPhase::Staging,
            "stage_run outside an open staging buffer"
        );
        let data = self.volatile.read(run.start, run.len as usize);
        self.staging.push(StagedRun {
            start: run.start,
            data,
        });
    }

    /// Durably writes the seal marker: the staging buffer is complete
    /// and recovery may replay it. For whole-process commits the
    /// per-stack seal is superseded by the process commit record (see
    /// `prosper_core::recovery`).
    pub fn seal(&mut self) {
        self.sealed = true;
        self.phase = CommitPhase::Sealed;
    }

    /// Number of runs currently staged.
    pub fn staged_runs(&self) -> usize {
        self.staging.len()
    }

    /// Total bytes currently staged across all runs — the
    /// deterministic work-size input for stall attribution's
    /// redo-cost model.
    pub fn staged_bytes(&self) -> u64 {
        self.staging.iter().map(|r| r.data.len() as u64).sum()
    }

    /// Bytes of the staged run at `idx` (0 when out of bounds; the
    /// cost model must never panic the commit path).
    pub fn staged_run_len(&self, idx: usize) -> u64 {
        self.staging.get(idx).map_or(0, |r| r.data.len() as u64)
    }

    /// Whether a sealed staging buffer exists.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// **Step one** of the commit: stage the dirty runs (as produced by
    /// bitmap inspection) from the volatile image into the NVM staging
    /// buffer, then seal it.
    pub fn stage(&mut self, runs: &[CopyRun]) {
        self.stage_partial(runs);
        self.seal();
    }

    /// Applies the staged run at `idx` to the persistent stack.
    /// Idempotent (staged runs carry absolute data), so recovery can
    /// replay applies interrupted at any point. Drivable run-by-run
    /// for fault injection.
    ///
    /// The caller vouches for the commit point: either this stack's
    /// seal marker ([`Self::apply`]) or a whole-process commit record.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds of the staging buffer.
    pub fn apply_run(&mut self, idx: usize) {
        let run = &self.staging[idx];
        self.persistent.write(run.start, &run.data);
    }

    /// Finishes an apply: durably records `sequence` as the committed
    /// checkpoint and retires the staging buffer.
    pub fn finish_apply(&mut self, sequence: u64) {
        self.committed_sequence = sequence;
        self.next_sequence = self.next_sequence.max(sequence + 1);
        self.staging.clear();
        self.staging_sequence = 0;
        self.sealed = false;
        self.phase = CommitPhase::Idle;
    }

    /// Discards an unsealed staging buffer (what recovery does when
    /// the crash hit before the seal).
    pub fn discard_staging(&mut self) {
        self.staging.clear();
        self.staging_sequence = 0;
        self.sealed = false;
        self.phase = CommitPhase::Idle;
    }

    /// **Step two**: apply the sealed staging buffer to the persistent
    /// stack and bump the commit sequence.
    ///
    /// # Panics
    ///
    /// Panics if no sealed staging buffer exists.
    pub fn apply(&mut self) {
        assert!(
            self.sealed && self.phase == CommitPhase::Sealed,
            "apply without a sealed staging buffer"
        );
        for idx in 0..self.staging.len() {
            self.apply_run(idx);
        }
        self.finish_apply(self.next_sequence);
    }

    /// Convenience: stage + apply in one call (the normal checkpoint
    /// path).
    pub fn checkpoint(&mut self, runs: &[CopyRun]) {
        self.stage(runs);
        self.apply();
    }

    /// Begins staging but stops **before the seal marker is written**
    /// — the state a crash leaves when it interrupts step one of the
    /// commit. Recovery must discard this buffer. Exposed for
    /// crash-injection tests and fault-injection harnesses.
    pub fn stage_partial(&mut self, runs: &[CopyRun]) {
        self.begin_stage();
        for run in runs {
            self.stage_run(run);
        }
        // Crash window: the seal marker is never written.
    }

    /// Simulates a power failure: volatile state is lost; persistent
    /// state (including any staged-but-unapplied buffer) survives.
    pub fn crash(&mut self) {
        self.volatile = MemoryImage::new();
    }

    /// Crash recovery: if a sealed staging buffer exists, the crash hit
    /// between seal and apply-complete — re-apply it idempotently. An
    /// unsealed buffer is discarded. The volatile image is then rebuilt
    /// from the persistent stack.
    pub fn recover_after_crash(&mut self) {
        if self.sealed {
            // Idempotent re-apply: staged runs carry absolute data.
            for idx in 0..self.staging.len() {
                self.apply_run(idx);
            }
            self.finish_apply(self.next_sequence);
        } else {
            self.discard_staging();
        }
        self.volatile = self.persistent.clone();
    }

    // ------------------------------------------------------------------
    // Staged-delta spine (PR 8)
    // ------------------------------------------------------------------

    /// **Spine-mode step two**: retire the sealed staging buffer as an
    /// immutable delta batch appended to the spine, and durably record
    /// `sequence` as committed. No data is copied — the staging buffer
    /// *becomes* the batch — so the apply copy disappears from the
    /// commit critical path. The caller vouches for the commit point
    /// (this stack's seal or a whole-process commit record — the
    /// latter never writes the per-stack seal marker, so only an open
    /// staging buffer is required here).
    ///
    /// The staged runs are coalesced before the batch is sealed:
    /// overlapping runs collapse to their newest-wins bytes and
    /// abutting runs concatenate, so the batch persists the minimal
    /// descriptor list for its coverage.
    pub fn seal_to_spine(&mut self, sequence: u64) {
        debug_assert!(
            self.phase != CommitPhase::Idle,
            "seal_to_spine without an open staging buffer"
        );
        let runs = coalesce_runs(std::mem::take(&mut self.staging));
        self.spine.push(DeltaBatch { sequence, runs });
        self.committed_sequence = sequence;
        self.next_sequence = self.next_sequence.max(sequence + 1);
        self.staging_sequence = 0;
        self.sealed = false;
        self.phase = CommitPhase::Idle;
    }

    /// The spine, oldest batch first.
    pub fn spine(&self) -> &[DeltaBatch] {
        &self.spine
    }

    /// Number of batches currently on the spine.
    pub fn spine_batches(&self) -> usize {
        self.spine.len()
    }

    /// Total payload bytes across all spine batches.
    pub fn spine_bytes(&self) -> u64 {
        self.spine.iter().map(DeltaBatch::bytes).sum()
    }

    /// Distinct bytes the spine covers (each byte counted once no
    /// matter how many batches touch it) — what a merge would write.
    pub fn spine_distinct_bytes(&self) -> u64 {
        let mut coverage: Coverage = Vec::new();
        for batch in &self.spine {
            for run in &batch.runs {
                let s = run.start.raw();
                insert_coverage(&mut coverage, s, s + run.data.len() as u64);
            }
        }
        coverage.iter().map(|(s, e)| e - s).sum()
    }

    /// `1000 * overlapped_bytes / total_bytes` across the spine (0
    /// when the spine is empty or nothing overlaps).
    pub fn spine_overlap_permille(&self) -> u32 {
        let total = self.spine_bytes();
        if total == 0 {
            return 0;
        }
        let overlap = total - self.spine_distinct_bytes();
        u32::try_from(overlap * 1000 / total).unwrap_or(1000)
    }

    /// Whether the merge policy triggers right now.
    pub fn should_merge(&self, cfg: &SpineConfig) -> bool {
        self.spine.len() >= 2
            && (self.spine.len() >= cfg.max_batches
                || self.spine_overlap_permille() >= cfg.overlap_permille)
    }

    /// Plans a full-spine merge: one [`MergeStep`] per batch in
    /// **newest-first** fold order, each step's writes already
    /// deduplicated against the coverage of every newer batch. Newer
    /// data is written first and older overlapped bytes are skipped,
    /// so newest-wins holds and every surviving byte is written
    /// exactly once. Each completed prefix of steps writes a subset of
    /// the full fold's writes with identical values, which is what
    /// makes a crash between steps recoverable by simply re-merging.
    pub fn merge_plan(&self) -> Vec<MergeStep> {
        let mut coverage: Coverage = Vec::new();
        let mut steps = Vec::with_capacity(self.spine.len());
        for (rank, batch) in self.spine.iter().rev().enumerate() {
            let mut writes = Vec::new();
            for run in &batch.runs {
                let s = run.start.raw();
                let e = s + run.data.len() as u64;
                for (ws, we) in subtract_coverage(s, e, &coverage) {
                    let lo = (ws - s) as usize;
                    let hi = (we - s) as usize;
                    writes.push(StagedRun {
                        start: VirtAddr::new(ws),
                        data: run.data[lo..hi].to_vec(),
                    });
                }
                insert_coverage(&mut coverage, s, e);
            }
            steps.push(MergeStep {
                writes,
                batches_folded: (rank + 1) as u32,
            });
        }
        steps
    }

    /// Applies one merge step's deduplicated writes to the persistent
    /// image. Idempotent: re-applying a step rewrites identical bytes.
    pub fn apply_merge_step(&mut self, step: &MergeStep) {
        for run in &step.writes {
            self.persistent.write(run.start, &run.data);
        }
    }

    /// Retires the spine after every merge step was applied: the
    /// batches' data now lives (deduplicated) in the persistent image.
    /// Returns the number of batches retired.
    pub fn retire_spine(&mut self) -> usize {
        let n = self.spine.len();
        self.spine.clear();
        n
    }

    /// Folds the whole spine newest-wins into the persistent image
    /// and retires it. Off the commit critical path; also the recovery
    /// fold. Idempotent and crash-safe: batches are immutable and a
    /// partial fold writes a value-identical subset of the full fold.
    pub fn merge_spine(&mut self) -> MergeStats {
        let input_bytes = self.spine_bytes();
        let mut written = 0;
        for step in self.merge_plan() {
            written += step.bytes();
            self.apply_merge_step(&step);
        }
        let folded = self.retire_spine();
        MergeStats {
            batches_folded: folded as u64,
            input_bytes,
            written_bytes: written,
        }
    }

    /// Spine-aware durable read: the persistent image with every spine
    /// batch folded over it, newest-wins, for `len` bytes at `addr`.
    /// What recovery and coherence checks consult while batches are
    /// still unmerged.
    pub fn read_effective(&self, addr: VirtAddr, len: usize) -> Vec<u8> {
        let mut out = self.persistent.read(addr, len);
        let (lo, hi) = (addr.raw(), addr.raw() + len as u64);
        // Oldest→newest overlay: later batches overwrite earlier ones.
        for batch in &self.spine {
            for run in &batch.runs {
                let rs = run.start.raw();
                let re = rs + run.data.len() as u64;
                let (s, e) = (rs.max(lo), re.min(hi));
                if s < e {
                    out[(s - lo) as usize..(e - lo) as usize]
                        .copy_from_slice(&run.data[(s - rs) as usize..(e - rs) as usize]);
                }
            }
        }
        out
    }

    /// Spine-mode crash recovery: a sealed staging buffer (crash after
    /// the seal, before the batch append) is retired to the spine —
    /// redo, the seal was the commit point — and an unsealed one is
    /// discarded. The spine is then folded into the persistent image
    /// and the volatile image rebuilt from it.
    pub fn recover_spine_after_crash(&mut self) {
        if self.sealed {
            self.seal_to_spine(self.next_sequence);
        } else {
            self.discard_staging();
        }
        self.merge_spine();
        self.volatile = self.persistent.clone();
    }
}

impl Persistent for PersistentStack {
    fn commit(&mut self) {
        // Without tracking information, commit conservatively copies
        // the whole active image (tests exercise the tracked path via
        // `checkpoint`).
        let run = CopyRun {
            start: self.range.start(),
            len: self.range.len(),
        };
        self.checkpoint(&[run]);
    }

    fn recover(&mut self) {
        self.crash();
        self.recover_after_crash();
    }

    fn recovered_image(&self) -> &MemoryImage {
        &self.persistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PersistentStack {
        PersistentStack::new(
            0,
            VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7001_0000)),
        )
    }

    fn run(start: u64, len: u64) -> CopyRun {
        CopyRun {
            start: VirtAddr::new(start),
            len,
        }
    }

    #[test]
    fn checkpoint_then_crash_recovers_committed_data() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"committed");
        s.checkpoint(&[run(0x7000_0100, 16)]);
        // Post-checkpoint write is lost at the crash.
        s.record_store(VirtAddr::new(0x7000_0100), b"uncommitt");
        s.crash();
        s.recover_after_crash();
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0100), 9),
            b"committed"
        );
        assert_eq!(s.committed_sequence(), 1);
    }

    #[test]
    fn crash_during_staging_discards_partial_buffer() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0200), b"old");
        s.checkpoint(&[run(0x7000_0200, 8)]);
        s.record_store(VirtAddr::new(0x7000_0200), b"new");
        // Begin staging but crash before the seal marker is written.
        s.stage_partial(&[run(0x7000_0200, 8)]);
        s.crash();
        s.recover_after_crash();
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0200), 3),
            b"old",
            "unsealed staging discarded"
        );
        assert_eq!(s.committed_sequence(), 1);
    }

    #[test]
    fn crash_between_seal_and_apply_replays_staging() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0300), b"fresh");
        s.stage(&[run(0x7000_0300, 8)]);
        // Crash after seal, before apply.
        s.crash();
        s.recover_after_crash();
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0300), 5),
            b"fresh",
            "sealed staging replayed on recovery"
        );
        assert_eq!(s.committed_sequence(), 1);
    }

    #[test]
    fn run_by_run_staging_matches_batched_stage() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"alpha");
        s.record_store(VirtAddr::new(0x7000_0200), b"beta");
        s.begin_stage();
        s.stage_run(&run(0x7000_0100, 8));
        assert_eq!(s.staged_runs(), 1);
        s.stage_run(&run(0x7000_0200, 8));
        assert!(!s.is_sealed());
        s.seal();
        assert!(s.is_sealed());
        s.apply();
        assert_eq!(s.committed_sequence(), 1);
        assert_eq!(s.persistent().read(VirtAddr::new(0x7000_0100), 5), b"alpha");
        assert_eq!(s.persistent().read(VirtAddr::new(0x7000_0200), 4), b"beta");
    }

    #[test]
    fn crash_mid_apply_replays_all_runs_idempotently() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"one");
        s.record_store(VirtAddr::new(0x7000_0200), b"two");
        s.stage(&[run(0x7000_0100, 8), run(0x7000_0200, 8)]);
        // Apply the first run, then crash: the sealed buffer replays
        // in full on recovery, landing exactly one commit.
        s.apply_run(0);
        s.crash();
        s.recover_after_crash();
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0100), 3), b"one");
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0200), 3), b"two");
        assert_eq!(s.committed_sequence(), 1);
        assert_eq!(s.staged_runs(), 0);
    }

    #[test]
    fn finish_apply_with_external_sequence_keeps_counter_monotonic() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"proc");
        s.begin_stage();
        s.stage_run(&run(0x7000_0100, 8));
        s.apply_run(0);
        // A whole-process commit record supplies the sequence.
        s.finish_apply(7);
        assert_eq!(s.committed_sequence(), 7);
        // The next standalone checkpoint continues past it.
        s.record_store(VirtAddr::new(0x7000_0100), b"solo");
        s.checkpoint(&[run(0x7000_0100, 8)]);
        assert_eq!(s.committed_sequence(), 8);
    }

    #[test]
    fn only_staged_runs_persist() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0400), b"in-run");
        s.record_store(VirtAddr::new(0x7000_0500), b"not-in-run");
        s.checkpoint(&[run(0x7000_0400, 8)]);
        s.crash();
        s.recover_after_crash();
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0400), 6), b"in-run");
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0500), 10),
            vec![0u8; 10],
            "unstaged bytes were never persisted"
        );
    }

    #[test]
    fn sequence_advances_per_commit() {
        let mut s = store();
        for i in 0..5 {
            s.record_store(VirtAddr::new(0x7000_0000), &[i as u8; 8]);
            s.checkpoint(&[run(0x7000_0000, 8)]);
        }
        assert_eq!(s.committed_sequence(), 5);
    }

    #[test]
    fn staging_sequence_tags_survive_crash_and_clear_on_retire() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"ahead");
        assert_eq!(s.staging_sequence(), 0, "no open buffer yet");
        // A buffer staged ahead for a later whole-process sequence
        // keeps its tag across the crash (it lives in NVM)...
        s.begin_stage_at(7);
        s.stage_run(&run(0x7000_0100, 8));
        s.crash();
        assert_eq!(s.staging_sequence(), 7);
        // ...and recovery discards the unsealed buffer and drops the tag.
        s.recover_after_crash();
        assert_eq!(s.staging_sequence(), 0);
        assert_eq!(s.staged_runs(), 0);
        // finish_apply also retires the tag.
        s.record_store(VirtAddr::new(0x7000_0100), b"again");
        s.begin_stage_at(9);
        s.stage_run(&run(0x7000_0100, 8));
        s.apply_run(0);
        s.finish_apply(9);
        assert_eq!(s.staging_sequence(), 0);
        assert_eq!(s.committed_sequence(), 9);
    }

    #[test]
    fn spine_commit_defers_apply_and_reads_effective() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0100), b"alpha");
        s.stage(&[run(0x7000_0100, 8)]);
        s.seal_to_spine(1);
        assert_eq!(s.committed_sequence(), 1);
        assert_eq!(s.spine_batches(), 1);
        // The apply copy never ran: the persistent image is untouched…
        assert_eq!(s.persistent().read(VirtAddr::new(0x7000_0100), 5), [0; 5]);
        // …but the spine-aware durable read sees the committed bytes.
        assert_eq!(s.read_effective(VirtAddr::new(0x7000_0100), 5), b"alpha");
    }

    #[test]
    fn spine_newest_wins_on_overlap() {
        let mut s = store();
        for (seq, val) in [(1u64, b"aaaaaaaa"), (2, b"bbbbbbbb")] {
            s.record_store(VirtAddr::new(0x7000_0100), val);
            s.stage(&[run(0x7000_0100, 8)]);
            s.seal_to_spine(seq);
        }
        assert_eq!(s.read_effective(VirtAddr::new(0x7000_0100), 8), b"bbbbbbbb");
        let stats = s.merge_spine();
        assert_eq!(stats.batches_folded, 2);
        assert_eq!(stats.input_bytes, 16);
        assert_eq!(stats.written_bytes, 8, "overlapped bytes written once");
        assert_eq!(
            s.persistent().read(VirtAddr::new(0x7000_0100), 8),
            b"bbbbbbbb"
        );
        assert_eq!(s.spine_batches(), 0);
    }

    #[test]
    fn seal_coalesces_adjacent_and_overlapping_runs() {
        let mut s = store();
        // Three abutting runs plus an overlapping restage: one
        // descriptor should survive, carrying the newest bytes.
        s.record_store(VirtAddr::new(0x7000_0100), b"abcdefghijkl");
        s.stage(&[
            run(0x7000_0100, 4),
            run(0x7000_0104, 4),
            run(0x7000_0108, 4),
        ]);
        s.seal_to_spine(1);
        assert_eq!(s.spine()[0].runs(), 1, "abutting runs coalesce");
        assert_eq!(s.spine()[0].bytes(), 12);
        assert_eq!(
            s.read_effective(VirtAddr::new(0x7000_0100), 12),
            b"abcdefghijkl"
        );

        // Overlapping restage inside one buffer: newest bytes win and
        // the batch still holds a single maximal run.
        s.record_store(VirtAddr::new(0x7000_0200), b"old-old-");
        s.begin_stage();
        s.stage_run(&run(0x7000_0200, 8));
        s.record_store(VirtAddr::new(0x7000_0204), b"NEW!");
        s.stage_run(&run(0x7000_0204, 4));
        s.seal_to_spine(2);
        let batch = &s.spine()[1];
        assert_eq!(batch.runs(), 1, "overlap folds into one descriptor");
        assert_eq!(batch.bytes(), 8, "shadowed bytes dropped from the batch");
        assert_eq!(s.read_effective(VirtAddr::new(0x7000_0200), 8), b"old-NEW!");

        // Disjoint runs stay separate descriptors.
        s.record_store(VirtAddr::new(0x7000_0300), b"aaaa");
        s.record_store(VirtAddr::new(0x7000_0400), b"bbbb");
        s.stage(&[run(0x7000_0300, 4), run(0x7000_0400, 4)]);
        s.seal_to_spine(3);
        assert_eq!(s.spine()[2].runs(), 2, "a gap keeps runs apart");

        // The merged image agrees with the volatile truth.
        s.merge_spine();
        assert_eq!(
            s.persistent().read(VirtAddr::new(0x7000_0200), 8),
            b"old-NEW!"
        );
    }

    #[test]
    fn merge_plan_partial_prefix_is_crash_safe() {
        let mut s = store();
        // Batch 1: two runs; batch 2 overlaps the first run's tail.
        s.record_store(VirtAddr::new(0x7000_0100), b"oldoldold");
        s.record_store(VirtAddr::new(0x7000_0200), b"keepme");
        s.stage(&[run(0x7000_0100, 9), run(0x7000_0200, 6)]);
        s.seal_to_spine(1);
        s.record_store(VirtAddr::new(0x7000_0104), b"newnew");
        s.stage(&[run(0x7000_0104, 6)]);
        s.seal_to_spine(2);

        let plan = s.merge_plan();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].batches_folded(), 1);
        assert_eq!(plan[1].batches_folded(), 2);
        // Newest step writes its full 6 bytes; the older one is
        // shadowed where batch 2 covers it ([0x104, 0x109) = 5 bytes).
        assert_eq!(plan[0].bytes(), 6);
        assert_eq!(plan[1].bytes(), 9 - 5 + 6);

        // Crash mid-merge: only the newest step applied, spine intact.
        s.apply_merge_step(&plan[0]);
        s.crash();
        s.recover_spine_after_crash();
        assert_eq!(
            s.volatile().read(VirtAddr::new(0x7000_0100), 10),
            b"oldonewnew"
        );
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0200), 6), b"keepme");
        assert_eq!(s.spine_batches(), 0, "recovery folds and retires");
        assert_eq!(s.committed_sequence(), 2);
    }

    #[test]
    fn spine_overlap_policy_triggers_merge() {
        let mut s = store();
        for seq in 1..=3u64 {
            s.record_store(VirtAddr::new(0x7000_0100), &[seq as u8; 8]);
            s.stage(&[run(0x7000_0100, 8)]);
            s.seal_to_spine(seq);
        }
        // Fully overlapping batches: 16 of 24 bytes are overlap.
        assert_eq!(s.spine_overlap_permille(), 666);
        assert!(s.should_merge(&SpineConfig::default()));
        assert!(!s.should_merge(&SpineConfig::lazy(8)), "lazy policy waits");
        assert!(s.should_merge(&SpineConfig::lazy(3)), "count pressure");
    }

    #[test]
    fn spine_recovery_after_seal_redoes_batch() {
        let mut s = store();
        s.record_store(VirtAddr::new(0x7000_0300), b"fresh");
        s.stage(&[run(0x7000_0300, 8)]);
        // Crash after seal, before the batch append: the seal is the
        // commit point, recovery must retire it to the spine (redo).
        s.crash();
        s.recover_spine_after_crash();
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0300), 5), b"fresh");
        assert_eq!(s.committed_sequence(), 1);

        // Unsealed staging is discarded, durable batches survive.
        s.record_store(VirtAddr::new(0x7000_0300), b"torn!");
        s.stage_partial(&[run(0x7000_0300, 8)]);
        s.crash();
        s.recover_spine_after_crash();
        assert_eq!(s.volatile().read(VirtAddr::new(0x7000_0300), 5), b"fresh");
        assert_eq!(s.committed_sequence(), 1);
    }

    #[test]
    fn spine_differential_matches_eager_apply() {
        // The same commit history through both modes lands the same
        // persistent image.
        let mut eager = store();
        let mut spine = store();
        let writes: [(u64, &[u8]); 4] = [
            (0x7000_0100, b"first"),
            (0x7000_0140, b"second"),
            (0x7000_0100, b"third"),
            (0x7000_0108, b"fourth"),
        ];
        for (seq, (addr, bytes)) in writes.iter().enumerate() {
            eager.record_store(VirtAddr::new(*addr), bytes);
            eager.stage(&[run(*addr, bytes.len() as u64 + 2)]);
            eager.apply();
            spine.record_store(VirtAddr::new(*addr), bytes);
            spine.stage(&[run(*addr, bytes.len() as u64 + 2)]);
            spine.seal_to_spine(seq as u64 + 1);
        }
        spine.merge_spine();
        let range = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_1000));
        assert!(eager.persistent().matches(spine.persistent(), range));
        assert_eq!(eager.committed_sequence(), spine.committed_sequence());
    }

    #[test]
    #[should_panic(expected = "apply without a sealed staging buffer")]
    fn apply_without_stage_panics() {
        store().apply();
    }

    #[test]
    #[should_panic(expected = "outside stack range")]
    fn out_of_range_store_rejected() {
        store().record_store(VirtAddr::new(0x100), b"x");
    }

    #[test]
    fn persistent_trait_full_range_commit() {
        let mut s = PersistentStack::new(
            0,
            VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_1000)),
        );
        s.record_store(VirtAddr::new(0x7000_0800), &[0xab; 32]);
        Persistent::commit(&mut s);
        Persistent::recover(&mut s);
        assert_eq!(
            s.recovered_image().read(VirtAddr::new(0x7000_0800), 32),
            vec![0xab; 32]
        );
    }
}
