//! # prosper-core
//!
//! The paper's primary contribution: **Prosper**, a hardware–software
//! (OS) co-designed checkpoint mechanism that tracks program-stack
//! modifications at sub-page byte granularity.
//!
//! ## Architecture (Figures 5–7 of the paper)
//!
//! * [`msr`] — the custom per-core MSRs through which the OS programs
//!   the tracker: stack address range, tracking granularity, bitmap
//!   base address, control/status (including the outstanding-operation
//!   counters used for quiescence and the active-region watermark).
//! * [`lookup`] — the small in-tracker lookup table that coalesces
//!   bitmap stores. Entries are `<bitmap word address, 32-bit bitmap
//!   value>`; flushes trigger on the high-water-mark (HWM), evictions
//!   prefer entries below the low-water-mark (LWM), falling back to a
//!   random victim. Both allocation policies from Section III-B are
//!   implemented: **Accumulate-and-Apply** (the paper's choice) and
//!   **Load-and-Update** (for ablation).
//! * [`bitmap`] — the dirty bitmap in DRAM, plus the OS-side
//!   inspection that coalesces contiguous set bits into copy runs.
//! * [`tracker`] — the per-core dirty tracker: filters stores of
//!   interest against the stack range, updates the lookup table, and
//!   emits the bitmap loads/stores the machine model injects as
//!   background traffic.
//! * [`oscomp`] — the Prosper OS component: implements the
//!   [`prosper_gemos::checkpoint::MemoryPersistence`] plug-in, running
//!   the two-step quiescence handshake, active-region-bounded bitmap
//!   inspection, and the two-step NVM copy at each checkpoint.
//! * [`persist`] — the data plane: a per-thread persistent stack in
//!   NVM updated crash-consistently via a staging buffer.
//! * [`multithread`] — per-hardware-thread tracker state with context-
//!   switch save/restore (Section III-C).
//! * [`recovery`] — whole-process two-phase commit (stage / seal /
//!   apply) binding every thread's stack and registers to one
//!   checkpoint sequence.
//! * [`faultinject`] — the exhaustive crash-point sweep: enumerates
//!   every step boundary of the checkpoint pipeline, injects a
//!   simulated power failure at each, and asserts the recovery
//!   invariants.
//! * [`energy`] — CACTI-P-derived energy/area accounting (Section V).
//! * [`fleet`] — fleet-scale checkpoint orchestration: sharded tenants
//!   with deterministically staggered intervals, global staging
//!   backpressure, and NVM write-bandwidth smoothing measurement.
//!
//! # Example
//!
//! ```
//! use prosper_core::tracker::{DirtyTracker, TrackerConfig};
//! use prosper_memsim::addr::{VirtAddr, VirtRange};
//!
//! let range = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7001_0000));
//! let mut t = DirtyTracker::new(TrackerConfig::default());
//! t.configure(range, VirtAddr::new(0x1000_0000));
//! let ops = t.observe_store(VirtAddr::new(0x7000_1234), 8);
//! assert!(ops.len() <= 2, "coalesced stores rarely emit traffic");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod bitmap;
pub mod energy;
pub mod faultinject;
pub mod fleet;
pub mod lookup;
pub mod msr;
pub mod multithread;
pub mod oscomp;
pub mod persist;
pub mod recovery;
pub mod tracker;

pub use fleet::{CheckpointFleet, FleetConfig, FleetResult};
pub use oscomp::ProsperMechanism;
pub use persist::SpineConfig;
pub use tracker::{DirtyTracker, TrackerConfig};
