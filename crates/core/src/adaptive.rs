//! Adaptive policies the paper leaves as future work, implemented as
//! optional extensions:
//!
//! * **Dynamic granularity** (end of the Figure 10 discussion:
//!   "Granularity setting should be dynamically adjusted (from the OS
//!   layer) to reduce the overhead for workloads like Stream") — after
//!   each checkpoint the OS inspects the measured dirty *density* of
//!   the interval and coarsens or refines the tracking granularity MSR
//!   for the next interval.
//! * **Dynamic HWM/LWM** (Figure 13 discussion: "a dynamic scheme
//!   based on the access pattern is left as a future direction") — the
//!   OS watches the tracker's bitmap-traffic counters and nudges the
//!   watermarks in the direction that reduced traffic, a simple
//!   one-dimensional hill climb per knob.
//!
//! Both policies only consume information the Prosper hardware already
//! exposes (bitmap word counts, lookup-table counters), so they are
//! faithful OS-layer extensions rather than new hardware.

use serde::{Deserialize, Serialize};

use crate::lookup::LookupStats;

/// Granularities the OS may select (multiples of 8 bytes, as the
/// tracker supports).
pub const GRANULARITY_LADDER: [u64; 5] = [8, 16, 32, 64, 128];

/// OS policy that adapts tracking granularity to the observed dirty
/// density.
///
/// Density is `dirty bytes / (dirty granules × granularity)` — i.e.
/// how full the copied granules actually were. Dense intervals
/// (Stream-like) waste bitmap-processing effort at fine granularity,
/// so the policy coarsens; sparse intervals refine.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GranularityAdapter {
    /// Current ladder index.
    index: usize,
    /// Coarsen when the mean set-bit run exceeds this many granules.
    pub coarsen_run_threshold: f64,
    /// Refine when the mean set-bit run falls below this.
    pub refine_run_threshold: f64,
}

impl Default for GranularityAdapter {
    fn default() -> Self {
        Self {
            index: 0,
            coarsen_run_threshold: 16.0,
            refine_run_threshold: 3.0,
        }
    }
}

impl GranularityAdapter {
    /// Creates an adapter starting at the given granularity.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is not on the ladder.
    pub fn starting_at(granularity: u64) -> Self {
        let index = GRANULARITY_LADDER
            .iter()
            .position(|&g| g == granularity)
            .expect("granularity must be one of 8/16/32/64/128");
        Self {
            index,
            ..Self::default()
        }
    }

    /// Current granularity in bytes.
    pub fn granularity(&self) -> u64 {
        GRANULARITY_LADDER[self.index]
    }

    /// Feeds one checkpoint's observation: the number of copy runs and
    /// the bytes they covered. Returns the granularity for the next
    /// interval.
    pub fn observe(&mut self, runs: u64, bytes: u64) -> u64 {
        if runs == 0 {
            return self.granularity();
        }
        let granules_per_run = bytes as f64 / self.granularity() as f64 / runs as f64;
        if granules_per_run > self.coarsen_run_threshold
            && self.index + 1 < GRANULARITY_LADDER.len()
        {
            self.index += 1;
        } else if granules_per_run < self.refine_run_threshold && self.index > 0 {
            self.index -= 1;
        }
        self.granularity()
    }
}

/// OS policy that hill-climbs the HWM and LWM to minimise bitmap
/// traffic, using the per-interval delta of the tracker's
/// loads+stores counters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WatermarkTuner {
    /// Current high-water-mark.
    pub hwm: u32,
    /// Current low-water-mark.
    pub lwm: u32,
    /// Traffic observed in the previous interval.
    last_traffic: Option<u64>,
    /// Direction of the last HWM move (+1 / -1).
    direction: i32,
    /// Cumulative counter snapshot at the last observation.
    last_snapshot: u64,
    /// Alternate between tuning HWM (even intervals) and LWM (odd).
    step: u64,
}

impl Default for WatermarkTuner {
    fn default() -> Self {
        Self {
            hwm: 24,
            lwm: 8,
            last_traffic: None,
            direction: 1,
            last_snapshot: 0,
            step: 0,
        }
    }
}

impl WatermarkTuner {
    /// Creates a tuner starting from the given watermarks.
    ///
    /// # Panics
    ///
    /// Panics if `lwm > hwm`.
    pub fn new(hwm: u32, lwm: u32) -> Self {
        assert!(lwm <= hwm, "LWM must not exceed HWM");
        Self {
            hwm,
            lwm,
            ..Self::default()
        }
    }

    /// HWM step size per adjustment.
    const HWM_STEP: u32 = 4;
    /// LWM step size per adjustment.
    const LWM_STEP: u32 = 2;

    /// Feeds the tracker's cumulative lookup stats after a checkpoint;
    /// returns the `(hwm, lwm)` to program for the next interval.
    pub fn observe(&mut self, stats: &LookupStats) -> (u32, u32) {
        let cumulative = stats.bitmap_loads + stats.bitmap_stores;
        let traffic = cumulative - self.last_snapshot;
        self.last_snapshot = cumulative;

        if let Some(last) = self.last_traffic {
            // If traffic got worse, reverse direction.
            if traffic > last {
                self.direction = -self.direction;
            }
            if self.step.is_multiple_of(2) {
                let delta = Self::HWM_STEP as i32 * self.direction;
                let hwm = (self.hwm as i32 + delta).clamp(4, 32) as u32;
                self.hwm = hwm.max(self.lwm);
            } else {
                let delta = Self::LWM_STEP as i32 * self.direction;
                let lwm = (self.lwm as i32 + delta).clamp(1, 16) as u32;
                self.lwm = lwm.min(self.hwm);
            }
        }
        self.last_traffic = Some(traffic);
        self.step += 1;
        (self.hwm, self.lwm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_coarsens_on_dense_runs() {
        let mut a = GranularityAdapter::default();
        assert_eq!(a.granularity(), 8);
        // 4 runs covering 4096 bytes at 8B => 128 granules/run: dense.
        assert_eq!(a.observe(4, 4096), 16);
        assert_eq!(a.observe(4, 8192), 32);
    }

    #[test]
    fn adapter_refines_on_sparse_runs() {
        let mut a = GranularityAdapter::starting_at(128);
        // 100 runs covering 12800 bytes at 128B = 1 granule/run.
        assert_eq!(a.observe(100, 12_800), 64);
        assert_eq!(a.observe(100, 6_400), 32);
    }

    #[test]
    fn adapter_saturates_at_ladder_ends() {
        let mut a = GranularityAdapter::starting_at(128);
        for _ in 0..10 {
            a.observe(1, 1_000_000);
        }
        assert_eq!(a.granularity(), 128);
        let mut a = GranularityAdapter::default();
        for _ in 0..10 {
            a.observe(100, 800);
        }
        assert_eq!(a.granularity(), 8);
    }

    #[test]
    fn adapter_holds_steady_in_the_middle_band() {
        let mut a = GranularityAdapter::starting_at(32);
        // 8 granules per run: between the thresholds.
        assert_eq!(a.observe(10, 10 * 8 * 32), 32);
    }

    #[test]
    fn empty_interval_changes_nothing() {
        let mut a = GranularityAdapter::starting_at(32);
        assert_eq!(a.observe(0, 0), 32);
    }

    #[test]
    #[should_panic(expected = "granularity must be one of")]
    fn off_ladder_start_rejected() {
        GranularityAdapter::starting_at(24);
    }

    #[test]
    fn tuner_reverses_when_traffic_worsens() {
        let mut t = WatermarkTuner::default();
        let mut stats = LookupStats::default();
        let hwm0 = t.hwm;
        // Interval 1 (step 0): baseline, no tuning yet.
        stats.bitmap_loads = 100;
        t.observe(&stats);
        // Interval 2 (step 1, LWM turn): worse traffic flips direction.
        stats.bitmap_loads = 400;
        t.observe(&stats);
        // Interval 3 (step 2, HWM turn): still worsening, HWM moves
        // against the original direction.
        stats.bitmap_loads = 1000;
        let (hwm1, _) = t.observe(&stats);
        assert!(hwm1 != hwm0, "HWM was adjusted: {hwm1} vs {hwm0}");
    }

    #[test]
    fn tuner_keeps_invariants() {
        let mut t = WatermarkTuner::default();
        let mut stats = LookupStats::default();
        for i in 0..50u64 {
            stats.bitmap_loads += (i * 37) % 97;
            stats.bitmap_stores += (i * 13) % 53;
            let (hwm, lwm) = t.observe(&stats);
            assert!(lwm <= hwm, "LWM {lwm} <= HWM {hwm}");
            assert!((4..=32).contains(&hwm));
            assert!((1..=16).contains(&lwm));
        }
    }

    #[test]
    fn tuner_first_observation_keeps_defaults() {
        let mut t = WatermarkTuner::default();
        let stats = LookupStats::default();
        assert_eq!(t.observe(&stats), (24, 8));
    }
}
