//! Deterministic crash-point fault injection for the whole checkpoint
//! pipeline.
//!
//! Persistent-stack systems validate recovery by crashing at *every*
//! step boundary, not just the ones a designer thought of (Aksenov et
//! al., *Execution of NVRAM Programs with Persistent Stack*; the
//! memento framework's `fault-injection` tests do the same). This
//! module is that discipline for the Prosper reproduction:
//!
//! 1. a **recording run** drives a deterministic multi-thread
//!    workload — context switches, tracked stores, bitmap inspection,
//!    whole-process two-phase commits — through a
//!    [`FaultInjector`] in [`CrashPlan::Record`] mode, enumerating
//!    every [`CrashSite`] boundary the run crosses;
//! 2. the **exhaustive sweep** re-runs the identical workload once
//!    per enumerated boundary with [`CrashPlan::AtIndex`], fires a
//!    simulated power failure there, recovers, and asserts the
//!    recovery invariants;
//! 3. after each verified recovery the run **resumes** from the
//!    recovered checkpoint and must finish with a state identical to
//!    an uninterrupted run.
//!
//! The invariants checked after every injected crash:
//!
//! * the recovered sequence equals the last *sealed* commit — one
//!   more than the last completed commit when the crash hit after the
//!   seal (redo), exactly the last completed commit otherwise
//!   (discard);
//! * every thread's stack, every thread's register slot, and the
//!   process checkpoint store agree on that one sequence (no skew);
//! * the recovered memory image and registers are byte-identical to
//!   the ground-truth snapshot of that checkpoint;
//! * the restarted tracker is quiescent with an empty lookup table —
//!   bitmap and lookup table hold no stale state.

use std::collections::BTreeMap;
use std::sync::Arc;

use prosper_gemos::crash::{CrashInjected, CrashPlan, CrashSite, FaultInjector};
use prosper_gemos::image::MemoryImage;
use prosper_gemos::llalloc::{DurableAllocTree, FrameAlloc};
use prosper_gemos::physmem::Pool;
use prosper_gemos::process::RegisterFile;
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::config::{MachineConfig, MemoryLayout};
use prosper_memsim::machine::Machine;
use prosper_telemetry::{AttributionSnapshot, StallAccountant};

use crate::bitmap::CopyRun;
use crate::multithread::MultiThreadTracker;
use crate::persist::SpineConfig;
use crate::recovery::PersistentProcess;
use crate::tracker::TrackerConfig;

/// Shape of the deterministic workload the crash matrix drives.
#[derive(Clone, Copy, Debug)]
pub struct CrashMatrixConfig {
    /// Software threads (each with its own stack and bitmap area).
    pub threads: u32,
    /// Checkpoint intervals; each ends in a whole-process commit.
    pub intervals: u32,
    /// Stores per thread per interval.
    pub stores_per_interval: u32,
    /// Seed for the deterministic store pattern.
    pub seed: u64,
    /// After a verified recovery, resume the workload from the
    /// recovered checkpoint and require the final state to equal an
    /// uninterrupted run's.
    pub resume_after_recovery: bool,
    /// Append a pipelined two-interval epilogue: two extra store
    /// rounds dirtying disjoint halves of each stack, committed as a
    /// pipelined pair where stage(N+1) overlaps apply(N). Crash
    /// windows inside the overlap ([`CrashSite::MidPipelineStage`])
    /// only exist on this schedule. Off by default so the recorded
    /// PR-3/PR-6 baselines keep their exact site counts.
    pub pipelined_epilogue: bool,
    /// Staged-delta spine mode: commits append delta batches instead
    /// of eagerly applying, governed by this merge policy. Crash
    /// windows at the batch-seal, mid-merge, and merge-retire
    /// boundaries ([`CrashSite::BatchSeal`], [`CrashSite::MidMerge`],
    /// [`CrashSite::MergeRetire`]) only exist on this schedule. `None`
    /// (the default) keeps the eager-apply schedule and its exact
    /// recorded site counts.
    pub spine: Option<SpineConfig>,
    /// Append an allocator epilogue: deterministic rounds of lock-free
    /// NVM frame allocation (each worker's first allocation crosses
    /// its reservation-steal boundary), interleaved frees, and staged
    /// persists of the NVM allocation tree. Crash windows at
    /// [`CrashSite::AllocReservationSteal`] and
    /// [`CrashSite::AllocSubtreePersist`] only exist on this schedule.
    /// Off by default so recorded baselines keep their exact site
    /// counts.
    pub alloc_epilogue: bool,
}

impl Default for CrashMatrixConfig {
    fn default() -> Self {
        Self {
            threads: 2,
            intervals: 3,
            stores_per_interval: 12,
            seed: 0x9E37_79B9,
            resume_after_recovery: true,
            pipelined_epilogue: false,
            spine: None,
            alloc_epilogue: false,
        }
    }
}

/// One crash point that failed verification.
#[derive(Clone, Debug)]
pub struct CrashFailure {
    /// Boundary index in the enumerated schedule.
    pub index: u64,
    /// The crash site at that boundary.
    pub site: CrashSite,
    /// What invariant broke.
    pub reason: String,
}

/// Outcome of one injected crash that survived verification.
#[derive(Clone, Copy, Debug)]
pub struct CrashOutcome {
    /// The site the crash fired at, if the index was in range.
    pub fired: Option<CrashSite>,
    /// Sequence number of the checkpoint recovery landed on.
    pub recovered_sequence: u64,
}

/// Result of an exhaustive crash-point sweep.
#[derive(Clone, Debug, Default)]
pub struct CrashMatrixReport {
    /// Every boundary the workload crosses, in schedule order.
    pub sites: Vec<CrashSite>,
    /// Crash points whose recovery satisfied every invariant.
    pub survived: u64,
    /// Crash points that broke an invariant.
    pub failures: Vec<CrashFailure>,
}

impl CrashMatrixReport {
    /// `true` when every enumerated crash point was survived.
    pub fn all_survived(&self) -> bool {
        self.failures.is_empty() && self.survived == self.sites.len() as u64
    }

    /// Count of enumerated crash points.
    pub fn total(&self) -> u64 {
        self.sites.len() as u64
    }
}

/// splitmix64-style mixer: the deterministic store pattern is a pure
/// function of `(seed, interval, tid, store index)`, so a resumed run
/// regenerates exactly the stores an uninterrupted run performs.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The store thread `tid` performs as its `j`-th store of interval
/// `interval`: an 8-byte-aligned offset into its stack range plus the
/// eight bytes written there.
fn store_pattern(cfg: &CrashMatrixConfig, interval: u32, tid: u32, j: u32) -> (u64, [u8; 8]) {
    let m = mix(
        cfg.seed,
        u64::from(interval) + 1,
        u64::from(tid) + 1,
        u64::from(j) + 1,
    );
    let offset = (m % (STACK_BYTES - 8)) & !7;
    (offset, mix(m, 1, 2, 3).to_le_bytes())
}

/// Epilogue stores: round 0 dirties only the lower half of each
/// stack, round 1 only the upper half. The rounds must be
/// address-disjoint because the pipelined pair stages round 1 (for
/// sequence N+1) from the same volatile image that round 0's apply
/// (sequence N) copies from — a shared byte would tear checkpoint N's
/// ground truth.
fn epilogue_store_pattern(cfg: &CrashMatrixConfig, round: u32, tid: u32, j: u32) -> (u64, [u8; 8]) {
    let m = mix(
        cfg.seed ^ 0xE147_0E17,
        u64::from(round) + 1,
        u64::from(tid) + 1,
        u64::from(j) + 1,
    );
    let half = STACK_BYTES / 2;
    let offset = ((m % (half - 8)) & !7) + u64::from(round) * half;
    (offset, mix(m, 4, 5, 6).to_le_bytes())
}

const STACK_BYTES: u64 = 0x8000;

fn thread_range(tid: u32) -> VirtRange {
    let top = 0x7000_0000 + (u64::from(tid) + 1) * 0x10_0000;
    VirtRange::new(VirtAddr::new(top - STACK_BYTES), VirtAddr::new(top))
}

fn thread_bitmap_base(tid: u32) -> VirtAddr {
    VirtAddr::new(0x1000_0000 + u64::from(tid) * 0x10_0000)
}

/// Ground truth captured when a commit seals: what recovery of that
/// sequence must reproduce.
#[derive(Clone, Debug)]
struct Snapshot {
    images: Vec<MemoryImage>,
    regs: Vec<RegisterFile>,
}

/// Workers driving the allocator epilogue.
const ALLOC_WORKERS: u32 = 3;

/// Alloc/free/persist rounds in the allocator epilogue.
const ALLOC_ROUNDS: u32 = 2;

/// Hybrid layout for the allocator epilogue: 64 DRAM frames plus
/// three full NVM subtrees, so every persist cycle crosses three
/// subtree-persist boundaries.
fn alloc_layout() -> MemoryLayout {
    MemoryLayout {
        dram_bytes: 64 * 4096,
        nvm_bytes: 3 * 512 * 4096,
    }
}

/// Lock-free allocator state driven by the allocator epilogue, plus
/// the ground truth its crash verification compares against.
#[derive(Debug)]
struct AllocState {
    alloc: FrameAlloc,
    durable: DurableAllocTree,
    /// NVM allocated set at the last *sealed* persist — what recovery
    /// of the durable tree must reproduce exactly.
    sealed_pfns: Vec<u64>,
}

/// Drives the deterministic workload, owning every layer the crash
/// plane cuts through: machine, multiplexed tracker, persistent
/// process, and ground-truth snapshots.
#[derive(Debug)]
struct Driver {
    cfg: CrashMatrixConfig,
    machine: Machine,
    mt: MultiThreadTracker,
    process: PersistentProcess,
    snapshots: BTreeMap<u64, Snapshot>,
    /// Commits whose apply fully finished.
    commits_completed: u64,
    /// Sequence recovery must land on if a crash fired just now:
    /// bumped past `commits_completed` only once a seal is known to
    /// have been written.
    expected_sequence: u64,
    /// Stall accountant wired through quiescence, commit, and
    /// recovery when the run is attributed.
    acct: Option<Arc<StallAccountant>>,
    /// Cycles retired by machine epochs that ended in a power
    /// failure; the live machine's clock restarts from zero.
    prior_epochs_cycles: u64,
    /// Parallel commit workers for attributed clean runs; 0 keeps the
    /// serial crash-window commit path (required when an injector may
    /// fire, since crash sites live on that path).
    workers: usize,
    /// Allocator state once the allocator epilogue has started.
    alloc: Option<AllocState>,
}

fn fresh_tracker(threads: u32) -> MultiThreadTracker {
    let mut mt = MultiThreadTracker::new(TrackerConfig::default());
    for tid in 0..threads {
        mt.register_thread(tid, thread_range(tid), thread_bitmap_base(tid));
    }
    mt
}

impl Driver {
    fn new(cfg: CrashMatrixConfig) -> Self {
        assert!(cfg.threads > 0, "crash matrix needs at least one thread");
        let ranges: Vec<VirtRange> = (0..cfg.threads).map(thread_range).collect();
        Self {
            cfg,
            machine: Machine::new(MachineConfig::setup_i()),
            mt: fresh_tracker(cfg.threads),
            process: match cfg.spine {
                Some(spine) => PersistentProcess::new_with_spine(&ranges, spine),
                None => PersistentProcess::new(&ranges),
            },
            snapshots: BTreeMap::new(),
            commits_completed: 0,
            expected_sequence: 0,
            acct: None,
            prior_epochs_cycles: 0,
            workers: 0,
            alloc: None,
        }
    }

    /// Total simulated cycles across every machine epoch of the run.
    fn total_cycles(&self) -> u64 {
        self.prior_epochs_cycles + self.machine.now()
    }

    /// Wires a stall accountant through every layer the workload
    /// stalls in: tracker quiescence, the commit path, and recovery.
    /// `workers > 0` routes clean commits through the parallel
    /// `commit_attributed` path with that worker count; `workers == 0`
    /// keeps the serial crash-window path (mandatory when the
    /// injector may fire).
    fn set_attribution(&mut self, acct: Arc<StallAccountant>, workers: usize) {
        self.mt.set_attribution(Arc::clone(&acct));
        self.acct = Some(acct);
        self.workers = workers;
    }

    /// Runs intervals `[from, cfg.intervals)` and then, if configured,
    /// the pipelined epilogue pair; stops at the first injected crash.
    fn run_from(&mut self, from: u32, inj: &mut FaultInjector) -> Result<(), CrashInjected> {
        for interval in from..self.cfg.intervals {
            self.interval(interval, inj)?;
        }
        if self.cfg.pipelined_epilogue {
            self.epilogue(inj)?;
        }
        if self.cfg.alloc_epilogue {
            self.alloc_epilogue(inj)?;
        }
        Ok(())
    }

    /// The allocator epilogue: deterministic rounds in which each
    /// worker allocates a burst of NVM frames (the first allocation
    /// of a worker with no live reservation crosses its
    /// reservation-steal boundary), every other frame is freed back,
    /// and the NVM allocation tree is persisted through the
    /// staged/sealed discipline (crossing one subtree-persist
    /// boundary per subtree). The sealed ground truth advances only
    /// when a persist seals.
    fn alloc_epilogue(&mut self, inj: &mut FaultInjector) -> Result<(), CrashInjected> {
        let state = self.alloc.get_or_insert_with(|| AllocState {
            alloc: FrameAlloc::new(alloc_layout()),
            durable: DurableAllocTree::new(),
            sealed_pfns: Vec::new(),
        });
        for round in 0..ALLOC_ROUNDS {
            for w in 0..ALLOC_WORKERS {
                let burst = 2 + (w + round) % 3;
                let mut got = Vec::new();
                for _ in 0..burst {
                    match state.alloc.alloc_for_with_faults(Pool::Nvm, w, inj)? {
                        Ok(pfn) => got.push(pfn),
                        Err(_) => break,
                    }
                }
                for pfn in got.iter().skip(1).step_by(2) {
                    state
                        .alloc
                        .free(*pfn)
                        .expect("epilogue frees only frames it allocated");
                }
            }
            state
                .alloc
                .persist_nvm_with_faults(&mut state.durable, inj)?;
            state.sealed_pfns = state.alloc.nvm_allocated_pfns();
        }
        Ok(())
    }

    /// One interval: each thread is scheduled in turn and performs its
    /// stores; at the end the OS flushes, inspects each thread's
    /// bitmap, and commits the whole process.
    fn interval(&mut self, interval: u32, inj: &mut FaultInjector) -> Result<(), CrashInjected> {
        for tid in 0..self.cfg.threads {
            self.mt.schedule_with_faults(&mut self.machine, tid, inj)?;
            for j in 0..self.cfg.stores_per_interval {
                let (offset, bytes) = store_pattern(&self.cfg, interval, tid, j);
                let addr = thread_range(tid).start() + offset;
                self.mt.observe_store(&mut self.machine, addr, 8);
                self.process.record_store(tid, addr, &bytes);
            }
            // The register state a checkpoint must capture: the resume
            // position (in `rip`) and a per-thread marker.
            let regs = self.process.regs_mut(tid);
            regs.rip = u64::from(interval) + 1;
            regs.gpr[0] = u64::from(tid) ^ mix(self.cfg.seed, u64::from(interval), 0, 0);
        }

        // End of interval: per-thread bitmap inspection.
        let mut runs_per_thread: BTreeMap<u32, Vec<CopyRun>> = BTreeMap::new();
        for tid in 0..self.cfg.threads {
            // Scheduling the thread restores its MSRs (range, bitmap
            // base) and flushes the previously-resident entries.
            self.mt.schedule_with_faults(&mut self.machine, tid, inj)?;
            self.mt.tracker_mut().flush();
            let geom = self.mt.tracker().geometry();
            let (runs, _) = self
                .mt
                .tracker_mut()
                .bitmap_mut()
                .inspect_and_clear(&geom, thread_range(tid));
            runs_per_thread.insert(tid, runs);
            // Crash window: the bitmap words are cleared but the runs
            // they produced are not yet committed anywhere.
            if inj.observe(CrashSite::MidBitmapClear { tid }) {
                return Err(CrashInjected {
                    site: CrashSite::MidBitmapClear { tid },
                });
            }
        }

        // Whole-process two-phase commit.
        let sequence = self.commits_completed + 1;
        let snapshot = self.snapshot_now();
        let commit_result = if self.workers > 0 {
            // Attributed clean run: parallel commit with the
            // deterministic cost model. Crash sites live on the
            // serial path, so this is only reachable with a disabled
            // injector.
            self.process.commit_attributed(
                &runs_per_thread,
                self.workers,
                None,
                self.acct.as_deref(),
            );
            Ok(())
        } else {
            self.process
                .commit_with_faults_attributed(&runs_per_thread, inj, self.acct.as_deref())
        };
        match commit_result {
            Ok(()) => {
                self.commits_completed = sequence;
                self.expected_sequence = sequence;
                self.snapshots.insert(sequence, snapshot);
                Ok(())
            }
            Err(err) => {
                if err.site.is_post_seal() {
                    // The commit point passed before the crash:
                    // recovery must redo this commit, not discard it.
                    self.expected_sequence = sequence;
                    self.snapshots.insert(sequence, snapshot);
                }
                Err(err)
            }
        }
    }

    /// Ground truth of the process's volatile state right now.
    fn snapshot_now(&self) -> Snapshot {
        Snapshot {
            images: (0..self.cfg.threads)
                .map(|tid| self.process.stack(tid).volatile().clone())
                .collect(),
            regs: (0..self.cfg.threads)
                .map(|tid| *self.process.regs(tid))
                .collect(),
        }
    }

    /// One epilogue round: each thread is scheduled and performs the
    /// round's half-stack stores, then every bitmap is inspected to
    /// produce the round's copy runs — the same crash windows as a
    /// regular interval.
    fn epilogue_round(
        &mut self,
        round: u32,
        inj: &mut FaultInjector,
    ) -> Result<BTreeMap<u32, Vec<CopyRun>>, CrashInjected> {
        let interval = self.cfg.intervals + round;
        for tid in 0..self.cfg.threads {
            self.mt.schedule_with_faults(&mut self.machine, tid, inj)?;
            for j in 0..self.cfg.stores_per_interval {
                let (offset, bytes) = epilogue_store_pattern(&self.cfg, round, tid, j);
                let addr = thread_range(tid).start() + offset;
                self.mt.observe_store(&mut self.machine, addr, 8);
                self.process.record_store(tid, addr, &bytes);
            }
            let regs = self.process.regs_mut(tid);
            regs.rip = u64::from(interval) + 1;
            regs.gpr[0] = u64::from(tid) ^ mix(self.cfg.seed, u64::from(interval), 0, 0);
        }
        let mut runs_per_thread: BTreeMap<u32, Vec<CopyRun>> = BTreeMap::new();
        for tid in 0..self.cfg.threads {
            self.mt.schedule_with_faults(&mut self.machine, tid, inj)?;
            self.mt.tracker_mut().flush();
            let geom = self.mt.tracker().geometry();
            let (runs, _) = self
                .mt
                .tracker_mut()
                .bitmap_mut()
                .inspect_and_clear(&geom, thread_range(tid));
            runs_per_thread.insert(tid, runs);
            if inj.observe(CrashSite::MidBitmapClear { tid }) {
                return Err(CrashInjected {
                    site: CrashSite::MidBitmapClear { tid },
                });
            }
        }
        Ok(runs_per_thread)
    }

    /// The pipelined epilogue: two store rounds committed as a
    /// pipelined pair — stage(N+1) runs inside apply(N)'s drain
    /// window, crossing [`CrashSite::MidPipelineStage`] boundaries.
    ///
    /// Expected-sequence bookkeeping uses the seal-counting rule: a
    /// crash anywhere in the run leaves exactly as many durable
    /// checkpoints as [`CrashSite::PostSeal`] boundaries crossed
    /// (every sealed sequence crosses it exactly once, pair or not),
    /// so recovery must land on that count — sequence N after a crash
    /// inside the overlap window, N+1 only once the second seal is
    /// durable.
    ///
    /// On resume after a recovery that landed on N, only round 1 is
    /// replayed (as a plain commit); a recovery at or before the last
    /// regular interval replays the whole pair.
    fn epilogue(&mut self, inj: &mut FaultInjector) -> Result<(), CrashInjected> {
        let n = u64::from(self.cfg.intervals) + 1;
        let done = self.process.committed_sequence();
        if done > n {
            return Ok(());
        }
        if done == n {
            // Resume path: checkpoint N is durable, redo round 1 only.
            let runs = self.epilogue_round(1, inj)?;
            let snapshot = self.snapshot_now();
            return match self.process.commit_with_faults_attributed(
                &runs,
                inj,
                self.acct.as_deref(),
            ) {
                Ok(()) => {
                    self.commits_completed = n + 1;
                    self.expected_sequence = n + 1;
                    self.snapshots.insert(n + 1, snapshot);
                    Ok(())
                }
                Err(err) => {
                    if err.site.is_post_seal() {
                        self.expected_sequence = n + 1;
                        self.snapshots.insert(n + 1, snapshot);
                    }
                    Err(err)
                }
            };
        }

        let runs_n = self.epilogue_round(0, inj)?;
        // Checkpoint N's image ground truth predates round 1's stores
        // (the rounds are address-disjoint, so round 1 cannot
        // invalidate it) …
        let images_n = self.snapshot_now().images;
        let runs_n1 = self.epilogue_round(1, inj)?;
        // … but both records capture the register file live at the
        // pair commit, i.e. round 1's values.
        let snap_n1 = self.snapshot_now();
        let snap_n = Snapshot {
            images: images_n,
            regs: snap_n1.regs.clone(),
        };
        match self.process.commit_pipelined_pair_with_faults_attributed(
            &runs_n,
            &runs_n1,
            inj,
            self.acct.as_deref(),
        ) {
            Ok(()) => {
                self.commits_completed = n + 1;
                self.expected_sequence = n + 1;
                self.snapshots.insert(n, snap_n);
                self.snapshots.insert(n + 1, snap_n1);
                Ok(())
            }
            Err(err) => {
                let seals = inj
                    .crossed()
                    .iter()
                    .filter(|s| **s == CrashSite::PostSeal)
                    .count() as u64;
                if seals >= n {
                    self.expected_sequence = n;
                    self.snapshots.insert(n, snap_n);
                }
                if seals > n {
                    self.expected_sequence = n + 1;
                    self.snapshots.insert(n + 1, snap_n1);
                }
                Err(err)
            }
        }
    }

    /// Simulates the power failure and restart, recovers, and checks
    /// every invariant. Returns the recovered sequence.
    fn verify_after_crash(&mut self) -> Result<u64, String> {
        // Power failure: volatile process state and all tracker
        // hardware state vanish; the machine restarts cold.
        self.process.crash();
        self.prior_epochs_cycles += self.machine.now();
        self.machine = Machine::new(MachineConfig::setup_i());
        self.mt = fresh_tracker(self.cfg.threads);
        if let Some(acct) = &self.acct {
            self.mt.set_attribution(Arc::clone(acct));
        }
        if !self.mt.tracker().quiescent() || self.mt.tracker().resident_entries() != 0 {
            return Err("restarted tracker is not quiescent/empty".into());
        }

        // Allocator invariants, when the crash interrupted the
        // allocator epilogue: the volatile tree is gone; recovery of
        // the durable tree must reproduce exactly the last sealed
        // allocated set (unsealed staging discarded, sealed staging
        // replayed), with frame accounting conserved.
        if let Some(state) = self.alloc.take() {
            let mut durable = state.durable;
            let recovered = FrameAlloc::recover(alloc_layout(), &mut durable);
            if recovered.nvm_allocated_pfns() != state.sealed_pfns {
                return Err(format!(
                    "allocator recovery diverges from last sealed snapshot \
                     ({} vs {} allocated NVM frames)",
                    recovered.nvm_allocated_pfns().len(),
                    state.sealed_pfns.len()
                ));
            }
            let layout = alloc_layout();
            let nvm_frames = layout.nvm_bytes / 4096;
            if recovered.available_frames(Pool::Nvm) + state.sealed_pfns.len() as u64 != nvm_frames
            {
                return Err("allocator recovery broke frame conservation".into());
            }
            if recovered.available_frames(Pool::Dram) != layout.dram_bytes / 4096 {
                return Err("DRAM pool must restart all-free after power failure".into());
            }
            self.alloc = Some(AllocState {
                alloc: recovered,
                durable,
                sealed_pfns: state.sealed_pfns,
            });
        }

        let expected = self.expected_sequence;
        match self.process.recover_attributed(self.acct.as_deref()) {
            Ok(rec) => {
                if expected == 0 {
                    return Err(format!(
                        "recovered sequence {} before any commit sealed",
                        rec.sequence
                    ));
                }
                if rec.sequence != expected {
                    return Err(format!(
                        "recovered sequence {} but expected {expected}",
                        rec.sequence
                    ));
                }
                let coherent = self
                    .process
                    .verify_coherent()
                    .map_err(|skew| skew.to_string())?;
                if coherent != expected {
                    return Err(format!(
                        "coherent at sequence {coherent}, expected {expected}"
                    ));
                }
                let truth = &self.snapshots[&expected];
                for tid in 0..self.cfg.threads {
                    let range = thread_range(tid);
                    let stack = self.process.stack(tid);
                    if let Some(addr) =
                        truth.images[tid as usize].first_mismatch(stack.volatile(), range)
                    {
                        return Err(format!(
                            "thread {tid} image diverges from checkpoint {expected} at {addr}"
                        ));
                    }
                    if rec.regs[tid as usize] != truth.regs[tid as usize] {
                        return Err(format!(
                            "thread {tid} registers diverge from checkpoint {expected}"
                        ));
                    }
                }
                Ok(rec.sequence)
            }
            Err(_) if expected == 0 => {
                // No commit ever sealed: an unrecoverable process is
                // the correct outcome, and it must restart cleanly.
                for tid in 0..self.cfg.threads {
                    if self.process.stack(tid).committed_sequence() != 0 {
                        return Err(format!(
                            "thread {tid} stack committed without a process commit"
                        ));
                    }
                }
                let ranges: Vec<VirtRange> = (0..self.cfg.threads).map(thread_range).collect();
                self.process = match self.cfg.spine {
                    Some(spine) => PersistentProcess::new_with_spine(&ranges, spine),
                    None => PersistentProcess::new(&ranges),
                };
                Ok(0)
            }
            Err(e) => Err(format!(
                "recovery failed ({e}) though checkpoint {expected} sealed"
            )),
        }
    }

    /// Resumes from the recovered checkpoint (the committed `rip`
    /// holds the interval to restart from) and finishes the workload;
    /// the final state must equal an uninterrupted run's.
    fn resume_and_finish(&mut self, recovered_sequence: u64) -> Result<(), String> {
        let resume_from = recovered_sequence as u32;
        let mut inj = FaultInjector::disabled();
        self.run_from(resume_from, &mut inj)
            .map_err(|_| "disabled injector fired".to_string())?;
        let reference = reference_final_state(&self.cfg);
        for tid in 0..self.cfg.threads {
            let range = thread_range(tid);
            if let Some(addr) = reference.images[tid as usize]
                .first_mismatch(self.process.stack(tid).volatile(), range)
            {
                return Err(format!(
                    "resumed run diverges from uninterrupted run: thread {tid} at {addr}"
                ));
            }
        }
        self.process
            .verify_coherent()
            .map_err(|skew| skew.to_string())?;
        Ok(())
    }
}

/// The final memory state of an uninterrupted run, computed directly
/// from the pure store pattern.
fn reference_final_state(cfg: &CrashMatrixConfig) -> Snapshot {
    let mut images = vec![MemoryImage::new(); cfg.threads as usize];
    let mut regs = vec![RegisterFile::default(); cfg.threads as usize];
    for interval in 0..cfg.intervals {
        for tid in 0..cfg.threads {
            for j in 0..cfg.stores_per_interval {
                let (offset, bytes) = store_pattern(cfg, interval, tid, j);
                images[tid as usize].write(thread_range(tid).start() + offset, &bytes);
            }
            regs[tid as usize].rip = u64::from(interval) + 1;
        }
    }
    if cfg.pipelined_epilogue {
        for round in 0..2 {
            for tid in 0..cfg.threads {
                for j in 0..cfg.stores_per_interval {
                    let (offset, bytes) = epilogue_store_pattern(cfg, round, tid, j);
                    images[tid as usize].write(thread_range(tid).start() + offset, &bytes);
                }
                regs[tid as usize].rip = u64::from(cfg.intervals + round) + 1;
            }
        }
    }
    Snapshot { images, regs }
}

/// Enumerates every crash-point boundary the workload crosses, in
/// deterministic schedule order, via one recording run.
pub fn enumerate_crash_sites(cfg: &CrashMatrixConfig) -> Vec<CrashSite> {
    let mut driver = Driver::new(*cfg);
    let mut inj = FaultInjector::new(CrashPlan::Record);
    driver
        .run_from(0, &mut inj)
        .expect("a recording injector never fires");
    inj.crossed().to_vec()
}

/// Runs the workload with a crash injected at boundary `index`,
/// recovers, verifies every invariant, and (per the config) resumes
/// to completion.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn run_with_crash_at(cfg: &CrashMatrixConfig, index: u64) -> Result<CrashOutcome, String> {
    let mut driver = Driver::new(*cfg);
    let mut inj = FaultInjector::at_index(index);
    match driver.run_from(0, &mut inj) {
        Ok(()) => Ok(CrashOutcome {
            fired: None,
            recovered_sequence: driver.commits_completed,
        }),
        Err(crash) => {
            let recovered = driver.verify_after_crash()?;
            if cfg.resume_after_recovery {
                driver.resume_and_finish(recovered)?;
            }
            Ok(CrashOutcome {
                fired: Some(crash.site),
                recovered_sequence: recovered,
            })
        }
    }
}

/// An attributed run: the cause-tagged stall snapshot plus the
/// simulated wall time of the run, for computing useful —
/// non-stalled — time in checkpoint-tax reports.
#[derive(Clone, Debug)]
pub struct AttributedRun {
    /// The cause-tagged stall ledger; always conserves.
    pub snapshot: AttributionSnapshot,
    /// Simulated wall ns of the run: machine cycles retired across
    /// every epoch **plus** the modelled commit/recovery stall time,
    /// which advances only the accountant's virtual clock (quiesce
    /// is the one cause mirrored on the machine clock). Guarantees
    /// every thread's stall fits inside the wall:
    /// `stall(tid) <= total_cycles`.
    pub total_cycles: u64,
}

/// Freezes the accountant into an [`AttributedRun`]. Off-machine
/// time = everything the virtual clock advanced by except the
/// quiesce advances, which mirror machine cycles already counted in
/// `Driver::total_cycles`.
fn freeze_attributed(acct: &StallAccountant, driver: &Driver) -> AttributedRun {
    let snapshot = acct.snapshot();
    let modelled = acct
        .now_ns()
        .saturating_sub(snapshot.cause_total_ns(prosper_telemetry::StallCause::Quiesce));
    AttributedRun {
        total_cycles: driver.total_cycles() + modelled,
        snapshot,
    }
}

/// Runs the uninterrupted workload with a virtual-clock stall
/// accountant wired through tracker quiescence and the parallel
/// commit path (`workers` commit workers), and returns the
/// cause-tagged attribution snapshot.
///
/// The virtual clock advances only by the deterministic commit cost
/// model and quiescence cycle counts, so two calls with the same
/// config and worker count yield identical snapshots — and the
/// snapshot always satisfies [`AttributionSnapshot::verify_conservation`].
pub fn run_attributed(cfg: &CrashMatrixConfig, workers: usize) -> AttributedRun {
    assert!(
        workers > 0,
        "attributed clean runs need at least one commit worker"
    );
    let acct = Arc::new(StallAccountant::new_virtual());
    let mut driver = Driver::new(*cfg);
    driver.set_attribution(Arc::clone(&acct), workers);
    let mut inj = FaultInjector::disabled();
    driver
        .run_from(0, &mut inj)
        .expect("a disabled injector never fires");
    freeze_attributed(&acct, &driver)
}

/// Runs the workload with a crash injected at boundary `index` and a
/// stall accountant attached, recovers (attributing the replay to
/// [`prosper_telemetry::StallCause::Recovery`]), verifies the
/// recovery invariants, and returns the outcome together with the
/// attribution snapshot covering the torn commit, the crash, and the
/// recovery.
///
/// # Errors
///
/// Returns a description of the first violated recovery invariant.
pub fn run_crash_attributed(
    cfg: &CrashMatrixConfig,
    index: u64,
) -> Result<(CrashOutcome, AttributedRun), String> {
    let acct = Arc::new(StallAccountant::new_virtual());
    let mut driver = Driver::new(*cfg);
    // workers == 0: crash sites live on the serial commit path.
    driver.set_attribution(Arc::clone(&acct), 0);
    let mut inj = FaultInjector::at_index(index);
    let outcome = match driver.run_from(0, &mut inj) {
        Ok(()) => CrashOutcome {
            fired: None,
            recovered_sequence: driver.commits_completed,
        },
        Err(crash) => {
            let recovered = driver.verify_after_crash()?;
            if cfg.resume_after_recovery {
                driver.resume_and_finish(recovered)?;
            }
            CrashOutcome {
                fired: Some(crash.site),
                recovered_sequence: recovered,
            }
        }
    };
    Ok((outcome, freeze_attributed(&acct, &driver)))
}

/// The exhaustive sweep: enumerates every crash point of the workload
/// and injects a crash at each one, collecting survivals and
/// failures.
pub fn run_crash_matrix(cfg: &CrashMatrixConfig) -> CrashMatrixReport {
    let sites = enumerate_crash_sites(cfg);
    let mut report = CrashMatrixReport {
        sites: sites.clone(),
        ..Default::default()
    };
    for (index, site) in sites.iter().enumerate() {
        match run_with_crash_at(cfg, index as u64) {
            Ok(outcome) => {
                debug_assert_eq!(
                    outcome.fired,
                    Some(*site),
                    "deterministic schedule: index {index} fired a different site"
                );
                report.survived += 1;
            }
            Err(reason) => report.failures.push(CrashFailure {
                index: index as u64,
                site: *site,
                reason,
            }),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_deterministic_and_covers_taxonomy() {
        let cfg = CrashMatrixConfig {
            pipelined_epilogue: true,
            ..Default::default()
        };
        let a = enumerate_crash_sites(&cfg);
        let b = enumerate_crash_sites(&cfg);
        assert_eq!(a, b, "same config, same schedule");
        assert!(a.len() > 40, "multi-thread run crosses many boundaries");
        // The taxonomy is exercised end to end.
        assert!(a
            .iter()
            .any(|s| matches!(s, CrashSite::MidPipelineStage { .. })));
        assert!(a.contains(&CrashSite::PreStage));
        assert!(a.iter().any(|s| matches!(s, CrashSite::MidStage { .. })));
        assert!(a.contains(&CrashSite::PreSeal));
        assert!(a.contains(&CrashSite::PostSeal));
        assert!(a.iter().any(|s| matches!(s, CrashSite::MidApply { .. })));
        assert!(a
            .iter()
            .any(|s| matches!(s, CrashSite::PostApplyThread { .. })));
        assert!(a.contains(&CrashSite::PostApplyPreRegisters));
        assert!(a
            .iter()
            .any(|s| matches!(s, CrashSite::MidRegisterApply { .. })));
        assert!(a.contains(&CrashSite::PostCommit));
        assert!(a
            .iter()
            .any(|s| matches!(s, CrashSite::MidBitmapClear { .. })));
        assert!(a.contains(&CrashSite::MidSwitchSave));
        assert!(a.contains(&CrashSite::MidSwitchRestore));
    }

    #[test]
    fn single_injected_crash_recovers_and_resumes() {
        let cfg = CrashMatrixConfig::default();
        let sites = enumerate_crash_sites(&cfg);
        // A post-seal site mid-run: recovery must redo the commit.
        let (index, _) = sites
            .iter()
            .enumerate()
            .find(|(_, s)| matches!(s, CrashSite::MidApply { .. }))
            .expect("schedule contains a mid-apply boundary");
        let outcome = run_with_crash_at(&cfg, index as u64).expect("recovery survives");
        assert!(outcome.recovered_sequence >= 1);
        assert!(matches!(outcome.fired, Some(CrashSite::MidApply { .. })));
    }

    #[test]
    fn out_of_range_index_completes_without_crash() {
        let cfg = CrashMatrixConfig {
            intervals: 2,
            ..Default::default()
        };
        let sites = enumerate_crash_sites(&cfg);
        let outcome = run_with_crash_at(&cfg, sites.len() as u64 + 100).unwrap();
        assert_eq!(outcome.fired, None);
        assert_eq!(outcome.recovered_sequence, 2, "all commits completed");
    }

    #[test]
    fn exhaustive_sweep_survives_every_crash_point() {
        // The acceptance-criterion sweep, on a reduced config so it
        // stays fast as a unit test; the bench binary runs bigger ones.
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 2,
            stores_per_interval: 6,
            ..Default::default()
        };
        let report = run_crash_matrix(&cfg);
        assert!(
            report.all_survived(),
            "{} of {} crash points failed, first: {:?}",
            report.failures.len(),
            report.total(),
            report.failures.first()
        );
    }

    #[test]
    fn pipelined_epilogue_sweep_survives_every_crash_point() {
        // Exhaustive sweep over a schedule ending in the pipelined
        // pair: every overlap-window crash must recover onto exactly
        // sequence N or N+1 (decided by the seal count) and resume to
        // the uninterrupted final state.
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 1,
            stores_per_interval: 5,
            pipelined_epilogue: true,
            ..Default::default()
        };
        let report = run_crash_matrix(&cfg);
        assert!(
            report
                .sites
                .iter()
                .any(|s| matches!(s, CrashSite::MidPipelineStage { .. })),
            "the pair schedule must cross the overlap window"
        );
        assert!(
            report.all_survived(),
            "{} of {} crash points failed, first: {:?}",
            report.failures.len(),
            report.total(),
            report.failures.first()
        );
    }

    #[test]
    fn overlap_crashes_conserve_and_land_on_n_or_n_plus_one() {
        // Attributed sweep restricted to the overlap window: each
        // MidPipelineStage crash must leave checkpoint N durable (the
        // second seal hasn't happened yet) and a conserving ledger.
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 1,
            stores_per_interval: 5,
            pipelined_epilogue: true,
            ..Default::default()
        };
        let sites = enumerate_crash_sites(&cfg);
        let n = u64::from(cfg.intervals) + 1;
        let mut overlap = 0;
        for (index, site) in sites.iter().enumerate() {
            if !matches!(site, CrashSite::MidPipelineStage { .. }) {
                continue;
            }
            overlap += 1;
            let (outcome, run) = run_crash_attributed(&cfg, index as u64)
                .unwrap_or_else(|e| panic!("overlap crash at {index}: {e}"));
            assert_eq!(outcome.fired, Some(*site));
            assert_eq!(
                outcome.recovered_sequence, n,
                "a crash inside apply(N)'s drain recovers onto N, never N+1"
            );
            run.snapshot
                .verify_conservation()
                .unwrap_or_else(|e| panic!("overlap crash at {index}: {e}"));
        }
        assert!(overlap >= 2, "both threads stage ahead in the overlap");
    }

    #[test]
    fn single_thread_matrix_also_survives() {
        let cfg = CrashMatrixConfig {
            threads: 1,
            intervals: 2,
            stores_per_interval: 5,
            ..Default::default()
        };
        let report = run_crash_matrix(&cfg);
        assert!(report.all_survived(), "{:?}", report.failures.first());
    }

    #[test]
    fn spine_schedule_crosses_the_new_sites() {
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 3,
            stores_per_interval: 5,
            spine: Some(SpineConfig::merge_always()),
            ..Default::default()
        };
        let a = enumerate_crash_sites(&cfg);
        let b = enumerate_crash_sites(&cfg);
        assert_eq!(a, b, "same config, same schedule");
        assert!(a.iter().any(|s| matches!(s, CrashSite::BatchSeal { .. })));
        assert!(a.iter().any(|s| matches!(s, CrashSite::MidMerge { .. })));
        assert!(a.iter().any(|s| matches!(s, CrashSite::MergeRetire { .. })));
        assert!(
            !a.iter().any(|s| matches!(s, CrashSite::MidApply { .. })),
            "spine mode has no apply copy on the commit path"
        );
    }

    #[test]
    fn spine_sweep_survives_every_crash_point() {
        // The tentpole acceptance sweep: every batch-seal, mid-merge,
        // and merge-retire boundary must recover onto the committed
        // sequence with a byte-identical image and then resume to the
        // uninterrupted final state.
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 3,
            stores_per_interval: 5,
            spine: Some(SpineConfig::merge_always()),
            ..Default::default()
        };
        let report = run_crash_matrix(&cfg);
        assert!(
            report.all_survived(),
            "{} of {} spine crash points failed, first: {:?}",
            report.failures.len(),
            report.total(),
            report.failures.first()
        );
    }

    #[test]
    fn spine_lazy_policy_sweep_survives_with_deep_spine() {
        // A lazy policy defers every merge past the run's end, so the
        // crash matrix exercises recovery folding a multi-batch spine.
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 3,
            stores_per_interval: 5,
            spine: Some(SpineConfig::lazy(64)),
            ..Default::default()
        };
        let sites = enumerate_crash_sites(&cfg);
        assert!(
            !sites
                .iter()
                .any(|s| matches!(s, CrashSite::MidMerge { .. })),
            "lazy(64) never merges inside this short run"
        );
        let report = run_crash_matrix(&cfg);
        assert!(report.all_survived(), "{:?}", report.failures.first());
    }

    #[test]
    fn spine_mid_merge_crashes_conserve_and_land_on_committed() {
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 3,
            stores_per_interval: 5,
            spine: Some(SpineConfig::merge_always()),
            ..Default::default()
        };
        let sites = enumerate_crash_sites(&cfg);
        let mut merges = 0;
        for (index, site) in sites.iter().enumerate() {
            if !matches!(
                site,
                CrashSite::MidMerge { .. } | CrashSite::MergeRetire { .. }
            ) {
                continue;
            }
            merges += 1;
            let (outcome, run) = run_crash_attributed(&cfg, index as u64)
                .unwrap_or_else(|e| panic!("merge crash at {index}: {e}"));
            assert_eq!(outcome.fired, Some(*site));
            assert!(
                outcome.recovered_sequence >= 2,
                "merges only run once the spine holds two batches"
            );
            run.snapshot
                .verify_conservation()
                .unwrap_or_else(|e| panic!("merge crash at {index}: {e}"));
            assert!(
                run.snapshot
                    .segments
                    .iter()
                    .any(|s| s.cause == prosper_telemetry::StallCause::Merge),
                "a torn merge must still carry Merge-cause segments"
            );
        }
        assert!(merges >= 3, "the schedule crosses several merge windows");
    }

    #[test]
    fn alloc_epilogue_schedule_crosses_the_allocator_sites() {
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 1,
            stores_per_interval: 4,
            alloc_epilogue: true,
            ..Default::default()
        };
        let a = enumerate_crash_sites(&cfg);
        let b = enumerate_crash_sites(&cfg);
        assert_eq!(a, b, "same config, same schedule");
        let steals = a
            .iter()
            .filter(|s| matches!(s, CrashSite::AllocReservationSteal { .. }))
            .count();
        let persists = a
            .iter()
            .filter(|s| matches!(s, CrashSite::AllocSubtreePersist { .. }))
            .count();
        assert_eq!(
            steals, ALLOC_WORKERS as usize,
            "each worker's first allocation steals a reservation"
        );
        assert_eq!(
            persists,
            ALLOC_ROUNDS as usize * 3,
            "each persist round stages three subtrees"
        );
    }

    #[test]
    fn alloc_epilogue_sweep_survives_every_crash_point() {
        let cfg = CrashMatrixConfig {
            threads: 2,
            intervals: 1,
            stores_per_interval: 4,
            alloc_epilogue: true,
            ..Default::default()
        };
        let report = run_crash_matrix(&cfg);
        assert!(
            report
                .sites
                .iter()
                .any(|s| matches!(s, CrashSite::AllocSubtreePersist { .. })),
            "the sweep must include allocator boundaries"
        );
        assert!(
            report.all_survived(),
            "{} of {} allocator crash points failed, first: {:?}",
            report.failures.len(),
            report.total(),
            report.failures.first()
        );
    }

    #[test]
    fn mid_persist_crash_recovers_previous_sealed_allocations() {
        let cfg = CrashMatrixConfig {
            threads: 1,
            intervals: 1,
            stores_per_interval: 4,
            alloc_epilogue: true,
            ..Default::default()
        };
        let sites = enumerate_crash_sites(&cfg);
        // The *last* subtree-persist boundary: round 1's staging is
        // underway, so recovery must discard it and land on round 0's
        // sealed allocated set.
        let (index, _) = sites
            .iter()
            .enumerate()
            .rfind(|(_, s)| matches!(s, CrashSite::AllocSubtreePersist { .. }))
            .expect("schedule crosses subtree-persist boundaries");
        let outcome = run_with_crash_at(&cfg, index as u64).expect("recovery survives");
        assert!(matches!(
            outcome.fired,
            Some(CrashSite::AllocSubtreePersist { .. })
        ));
    }

    #[test]
    fn store_pattern_is_pure_and_aligned() {
        let cfg = CrashMatrixConfig::default();
        for (i, t, j) in [(0, 0, 0), (1, 1, 3), (2, 0, 11)] {
            let (off1, val1) = store_pattern(&cfg, i, t, j);
            let (off2, val2) = store_pattern(&cfg, i, t, j);
            assert_eq!((off1, val1), (off2, val2));
            assert_eq!(off1 % 8, 0);
            assert!(off1 + 8 <= STACK_BYTES);
        }
    }
}
