//! The custom per-core model-specific registers (MSRs) through which
//! the Prosper OS component programs and interrogates the tracker
//! hardware (Section III-D).
//!
//! Four configuration MSRs carry the stack address range (two MSRs),
//! the tracking granularity, and the bitmap base address; a control
//! MSR starts/stops tracking and requests flushes; a status MSR
//! exposes the outstanding load/store counters (for the quiescence
//! handshake) and the active-region watermark.

use prosper_memsim::addr::{VirtAddr, VirtRange};
use serde::{Deserialize, Serialize};

/// Cycles charged per MSR write (WRMSR is serialising; tens of cycles
/// on real hardware).
pub const MSR_WRITE_CYCLES: u64 = 50;

/// Cycles charged per MSR read (RDMSR).
pub const MSR_READ_CYCLES: u64 = 30;

/// Identifier of each custom MSR.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MsrId {
    /// Inclusive low bound of the tracked (stack) range.
    StackRangeLo,
    /// Exclusive high bound of the tracked (stack) range.
    StackRangeHi,
    /// Tracking granularity in bytes (multiple of 8).
    Granularity,
    /// Base virtual address of the dirty-bitmap area.
    BitmapBase,
    /// Control: bit 0 = tracking enabled, bit 1 = flush requested.
    Control,
    /// Status (read-only from software): outstanding operations and
    /// watermark validity.
    Status,
}

/// Control-register bit: tracking enabled.
pub const CTRL_ENABLE: u64 = 1 << 0;
/// Control-register bit: flush of the lookup table requested.
pub const CTRL_FLUSH: u64 = 1 << 1;

/// The per-core MSR bank.
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct MsrBank {
    /// Tracked range low bound.
    pub stack_lo: u64,
    /// Tracked range high bound (exclusive).
    pub stack_hi: u64,
    /// Granularity in bytes.
    pub granularity: u64,
    /// Bitmap base virtual address.
    pub bitmap_base: u64,
    /// Control bits.
    pub control: u64,
    /// Outstanding tracker-issued loads (quiescence counter).
    pub outstanding_loads: u64,
    /// Outstanding tracker-issued stores (quiescence counter).
    pub outstanding_stores: u64,
    /// Lowest tracked address observed this interval (the maximum
    /// active stack region shared with the OS at interval end).
    pub min_addr_watermark: u64,
}

impl MsrBank {
    /// Writes a configuration/control MSR.
    ///
    /// # Panics
    ///
    /// Panics on writes to the read-only status MSR or on an invalid
    /// granularity (zero or not a multiple of 8).
    pub fn write(&mut self, id: MsrId, value: u64) {
        match id {
            MsrId::StackRangeLo => self.stack_lo = value,
            MsrId::StackRangeHi => self.stack_hi = value,
            MsrId::Granularity => {
                assert!(
                    value >= 8 && value.is_multiple_of(8),
                    "granularity must be a non-zero multiple of 8 bytes, got {value}"
                );
                self.granularity = value;
            }
            MsrId::BitmapBase => self.bitmap_base = value,
            MsrId::Control => self.control = value,
            MsrId::Status => panic!("status MSR is read-only"),
        }
    }

    /// Reads an MSR.
    pub fn read(&self, id: MsrId) -> u64 {
        match id {
            MsrId::StackRangeLo => self.stack_lo,
            MsrId::StackRangeHi => self.stack_hi,
            MsrId::Granularity => self.granularity,
            MsrId::BitmapBase => self.bitmap_base,
            MsrId::Control => self.control,
            MsrId::Status => {
                // Pack the counters: loads in bits 0..24, stores in
                // 24..48, watermark-valid in bit 63.
                (self.outstanding_loads & 0xff_ffff) | ((self.outstanding_stores & 0xff_ffff) << 24)
            }
        }
    }

    /// The programmed tracked range.
    pub fn tracked_range(&self) -> VirtRange {
        VirtRange::new(VirtAddr::new(self.stack_lo), VirtAddr::new(self.stack_hi))
    }

    /// `true` while tracking is enabled.
    pub fn tracking_enabled(&self) -> bool {
        self.control & CTRL_ENABLE != 0
    }

    /// `true` while a flush is pending.
    pub fn flush_requested(&self) -> bool {
        self.control & CTRL_FLUSH != 0
    }

    /// `true` when no tracker-issued operations are in flight — the
    /// condition the OS polls for in step two of the quiescence
    /// protocol.
    pub fn quiescent(&self) -> bool {
        self.outstanding_loads == 0 && self.outstanding_stores == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_back() {
        let mut b = MsrBank::default();
        b.write(MsrId::StackRangeLo, 0x1000);
        b.write(MsrId::StackRangeHi, 0x9000);
        b.write(MsrId::Granularity, 16);
        b.write(MsrId::BitmapBase, 0xb000_0000);
        b.write(MsrId::Control, CTRL_ENABLE);
        assert_eq!(b.read(MsrId::StackRangeLo), 0x1000);
        assert_eq!(b.read(MsrId::Granularity), 16);
        assert_eq!(b.tracked_range().len(), 0x8000);
        assert!(b.tracking_enabled());
        assert!(!b.flush_requested());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_granularity_rejected() {
        MsrBank::default().write(MsrId::Granularity, 12);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn status_write_rejected() {
        MsrBank::default().write(MsrId::Status, 1);
    }

    #[test]
    fn quiescence_reflects_counters() {
        let mut b = MsrBank::default();
        assert!(b.quiescent());
        b.outstanding_loads = 2;
        assert!(!b.quiescent());
        assert_eq!(b.read(MsrId::Status) & 0xff_ffff, 2);
        b.outstanding_loads = 0;
        b.outstanding_stores = 1;
        assert!(!b.quiescent());
        assert_eq!((b.read(MsrId::Status) >> 24) & 0xff_ffff, 1);
    }

    #[test]
    fn control_flags() {
        let mut b = MsrBank::default();
        b.write(MsrId::Control, CTRL_ENABLE | CTRL_FLUSH);
        assert!(b.tracking_enabled() && b.flush_requested());
    }
}
