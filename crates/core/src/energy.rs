//! Energy and area accounting for the tracker's lookup table
//! (Section V, "Energy and area overhead").
//!
//! The paper models the 16-entry lookup table (two read ports, one
//! write port) with CACTI-P at 7 nm FinFET and reports per-access
//! dynamic energies, bank leakage power, and area. We take those
//! published constants and multiply by the access counts the tracker
//! actually performs, exactly as the paper does.

use serde::{Deserialize, Serialize};

use crate::lookup::LookupStats;

/// CACTI-P constants published in the paper (7 nm FinFET, 16 entries,
/// 2R1W).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Dynamic read energy per access, nanojoules.
    pub read_nj: f64,
    /// Dynamic write energy per access, nanojoules.
    pub write_nj: f64,
    /// Leakage power of a bank, milliwatts.
    pub leakage_mw: f64,
    /// Area, square millimetres.
    pub area_mm2: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_cacti_7nm()
    }
}

impl EnergyModel {
    /// The exact constants reported in the paper.
    pub fn paper_cacti_7nm() -> Self {
        Self {
            read_nj: 0.000_773_194,
            write_nj: 0.000_128_375,
            leakage_mw: 0.010_675_96,
            area_mm2: 0.000_704_786,
        }
    }

    /// Dynamic energy (nJ) for the given lookup activity.
    ///
    /// Every SOI performs one associative search (a read); every
    /// value update or allocation performs a write; flush/eviction
    /// traffic performs one read per drained entry.
    pub fn dynamic_energy_nj(&self, stats: &LookupStats) -> f64 {
        let reads =
            stats.searches + stats.hwm_flushes + stats.lwm_evictions + stats.random_evictions;
        let writes = stats.hits + stats.allocations;
        reads as f64 * self.read_nj + writes as f64 * self.write_nj
    }

    /// Leakage energy (nJ) over a run of `cycles` at `core_hz`.
    pub fn leakage_energy_nj(&self, cycles: u64, core_hz: u64) -> f64 {
        let seconds = cycles as f64 / core_hz as f64;
        // mW * s = mJ; convert to nJ.
        self.leakage_mw * seconds * 1e6
    }

    /// Total energy (nJ) for a run.
    pub fn total_energy_nj(&self, stats: &LookupStats, cycles: u64, core_hz: u64) -> f64 {
        self.dynamic_energy_nj(stats) + self.leakage_energy_nj(cycles, core_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_exact() {
        let m = EnergyModel::paper_cacti_7nm();
        assert_eq!(m.read_nj, 0.000_773_194);
        assert_eq!(m.write_nj, 0.000_128_375);
        assert_eq!(m.leakage_mw, 0.010_675_96);
        assert_eq!(m.area_mm2, 0.000_704_786);
    }

    #[test]
    fn dynamic_energy_scales_with_accesses() {
        let m = EnergyModel::default();
        let mut s = LookupStats {
            searches: 1000,
            hits: 900,
            allocations: 100,
            ..LookupStats::default()
        };
        let e1 = m.dynamic_energy_nj(&s);
        s.searches = 2000;
        let e2 = m.dynamic_energy_nj(&s);
        assert!(e2 > e1);
        // 1000 extra reads at read_nj each.
        assert!((e2 - e1 - 1000.0 * m.read_nj).abs() < 1e-9);
    }

    #[test]
    fn leakage_proportional_to_time() {
        let m = EnergyModel::default();
        let one_second = m.leakage_energy_nj(3_000_000_000, 3_000_000_000);
        // 0.01067596 mW for 1 s = 0.01067596 mJ = 10675.96 nJ.
        assert!((one_second - 10_675.96).abs() < 1e-6);
        assert_eq!(m.leakage_energy_nj(0, 3_000_000_000), 0.0);
    }

    #[test]
    fn total_is_sum() {
        let m = EnergyModel::default();
        let s = LookupStats {
            searches: 10,
            hits: 5,
            allocations: 5,
            ..Default::default()
        };
        let total = m.total_energy_nj(&s, 3000, 3_000_000_000);
        assert!(
            (total - m.dynamic_energy_nj(&s) - m.leakage_energy_nj(3000, 3_000_000_000)).abs()
                < 1e-12
        );
    }
}
