//! Whole-process recovery: registers + per-thread persistent stacks
//! under one commit boundary.
//!
//! The paper's end-to-end solution checkpoints *all* process state
//! (Section III-D: "The GemOS baseline checkpoint mechanism captures
//! all process states (including the stack) in an incremental manner
//! and stores them in the NVM"). [`PersistentProcess`] is that
//! facade: one `commit` captures every thread's registers and stack
//! runs atomically with respect to recovery — after a crash, the
//! recovered registers and memory always belong to the *same*
//! checkpoint.
//!
//! # The two-phase whole-process commit
//!
//! A naive commit that applies each thread's stack checkpoint and then
//! the register checkpoint independently is torn by a mid-commit
//! crash: thread 0's stack recovers at sequence N+1 while thread 1's
//! stack — or the registers — recover at N. The protocol here extends
//! the paper's two-step stack commit (Section III-B, Figure 6) to the
//! whole process:
//!
//! 1. **Stage**: every thread's dirty runs are copied into its NVM
//!    staging buffer, and the register file is staged into a process
//!    commit record — nothing is applied yet.
//! 2. **Seal**: the process commit record is sealed with one durable
//!    write. This is the commit point: a crash before it discards all
//!    staging (recovery sees sequence N), a crash after it redoes the
//!    apply from the staged state (recovery sees N+1). Either way all
//!    threads and the registers land on the *same* sequence.
//! 3. **Apply**: each staging buffer is applied to its persistent
//!    stack, then every thread's register slot is written; finally the
//!    record is retired.
//!
//! Every step boundary is a named [`CrashSite`] observed through a
//! [`FaultInjector`], so the exhaustive crash-point sweep in
//! [`crate::faultinject`] can fire a simulated power failure at each
//! one and assert the invariants above.
//!
//! # Parallel staging and apply
//!
//! Stage and apply touch strictly per-thread state (each thread's
//! staging buffer and persistent stack), so [`PersistentProcess::commit`]
//! fans them out over `std::thread::scope` workers; the **seal stays
//! the single serialization point** — one durable write on the
//! coordinating thread — so crash atomicity is unchanged. Worker
//! assignment is work-stealing: each worker claims the next unclaimed
//! stack from a shared cursor, so uneven per-thread run lists no
//! longer leave workers idle behind a pre-assigned contiguous chunk.
//! Recovery's redo of a sealed record takes the same parallel apply
//! path, which means the exhaustive crash matrix exercises it after
//! every post-seal crash. Deterministic fault injection needs a fixed
//! boundary order, so [`PersistentProcess::commit_with_faults`] keeps
//! the serial schedule with its crash windows; the
//! `parallel_commit_matches_serial` test pins the two paths to the
//! same persistent state.
//!
//! # Adaptive worker selection
//!
//! Spawning scoped workers is not free: BENCH_pr3.json recorded 2
//! workers at 0.85x serial and 8 at 0.59x on small commits, because
//! `commit` blindly fanned out to `available_parallelism`.
//! [`PersistentProcess::commit`] now evaluates the [`commit_cost`]
//! model (the same per-phase model stall attribution charges) at every
//! candidate worker count, including a per-worker spawn overhead, and
//! picks the argmin — falling back to serial whenever the staged bytes
//! sit below the parallelism break-even.
//!
//! # The pipelined burst
//!
//! When several checkpoints commit back to back,
//! [`PersistentProcess::commit_pipelined`] overlaps sequence N's apply
//! drain with sequence N+1's staging. The sharpened protocol invariant
//! is:
//!
//! - **stage(N+1) begins only after seal(N)** — the overlap window
//!   opens at the commit point, never before, and
//! - **seal(N+1) happens only after apply(N) fully drains** — at most
//!   one sealed record ever exists.
//!
//! Per stack the hand-off is fused: a worker finishes applying stack
//! `t`'s sequence-N buffer, retires it, and immediately stages N+1's
//! runs into the same (single) buffer, tagged with its sequence
//! ([`PersistentStack::begin_stage_at`]). A crash inside the overlap
//! window leaves sealed record N pending while some stacks hold
//! staging tagged N+1: redo replays only buffers tagged N and discards
//! the unsealed staged-ahead ones, so recovery lands on exactly N — or
//! N+1 once seal(N+1) is durable. The serial crash-windowed twin
//! ([`PersistentProcess::commit_pipelined_pair_with_faults`]) walks the
//! same schedule with a named [`CrashSite`] at every boundary,
//! including [`CrashSite::MidPipelineStage`] inside the overlap.
//!
//! # Spine mode (staged-delta spine)
//!
//! With a [`SpineConfig`] installed
//! ([`PersistentProcess::new_with_spine`]), phase two changes shape:
//! instead of copying each sealed staging buffer into the persistent
//! image, every stack retires its buffer as an immutable delta batch
//! appended to its spine ([`PersistentStack::seal_to_spine`], an O(1)
//! pointer swing) — the apply copy disappears from the commit critical
//! path. The seal remains the sole durability point and the register
//! tail is unchanged, so crash atomicity is identical to eager mode.
//! A deferred, policy-gated merge ([`PersistentStack::should_merge`])
//! then folds spines newest-wins into the persistent images off the
//! critical path, charged to [`StallCause::Merge`]; recovery folds any
//! surviving spine the same way, so the recovered image is always
//! byte-identical to what eager apply would have produced (the
//! differential proptests pin this). Merge never crosses an unsealed
//! batch: only sealed-and-appended batches are ever folded, and a
//! crash between merge steps is recovered by simply re-merging — each
//! completed prefix of the newest-first fold writes a value-identical
//! subset of the full fold.

use std::collections::BTreeMap;

use prosper_telemetry as telemetry;
use prosper_telemetry::{StallAccountant, StallCause};

use prosper_gemos::crash::{CrashInjected, CrashSite, FaultInjector};
use prosper_gemos::process::RegisterFile;
use prosper_gemos::restore::{NoValidCheckpoint, ProcessCheckpointStore};
use prosper_memsim::addr::VirtRange;

use crate::bitmap::CopyRun;
use crate::persist::{MergeStats, PersistentStack, SpineConfig};

/// The NVM process commit record: the staged register file plus the
/// seal marker whose single durable write is the whole-process commit
/// point.
#[derive(Clone, Debug)]
struct ProcessCommitRecord {
    /// Sequence this commit will carry once sealed.
    sequence: u64,
    /// Registers of every thread as staged in phase one.
    staged_regs: Vec<RegisterFile>,
    /// Written last in phase one; a crash before this leaves the whole
    /// commit discardable.
    sealed: bool,
}

/// One protocol-boundary event recorded by a [`CommitProbe`] during a
/// parallel commit. The event stream is the observable ordering of the
/// stage → seal → apply protocol: `prosper-analysis` checks it against
/// the same happens-before invariants its interleaving explorer
/// enforces on the protocol model (all stages before the seal, the
/// seal before all applies, no overlap across sequence numbers).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommitProbeEvent {
    /// Worker finished staging thread `tid`'s runs for `sequence`.
    StageThread {
        /// Thread whose runs were staged.
        tid: u32,
        /// Sequence the commit will carry.
        sequence: u64,
    },
    /// The coordinator sealed the process commit record — the single
    /// serial commit point.
    Seal {
        /// Sequence the seal committed.
        sequence: u64,
    },
    /// Worker finished applying thread `tid`'s staging buffer.
    ApplyThread {
        /// Thread whose staging buffer was applied.
        tid: u32,
        /// Sequence being applied.
        sequence: u64,
    },
    /// The commit record was retired; the commit is complete.
    Retire {
        /// Sequence that completed.
        sequence: u64,
    },
    /// Deferred spine merge: thread `tid`'s spine was folded into its
    /// persistent image, covering every batch up to and including
    /// `upto`. Merges only ever run between commits — never across an
    /// unsealed batch — which the `prosper-analysis` order checker
    /// enforces on this event.
    MergeThread {
        /// Thread whose spine was folded.
        tid: u32,
        /// Highest committed sequence the fold covered.
        upto: u64,
    },
}

/// Collects [`CommitProbeEvent`]s from the parallel commit path.
///
/// Shared by reference with the scoped stage/apply workers, so the
/// recorded order is the *actual* cross-thread order of protocol
/// boundaries, not a reconstruction.
#[derive(Debug, Default)]
pub struct CommitProbe {
    log: std::sync::Mutex<Vec<CommitProbeEvent>>,
}

impl CommitProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, ev: CommitProbeEvent) {
        if let Ok(mut log) = self.log.lock() {
            log.push(ev);
        }
    }

    /// The events recorded so far, in observation order.
    pub fn events(&self) -> Vec<CommitProbeEvent> {
        self.log.lock().map(|log| log.clone()).unwrap_or_default()
    }
}

/// Deterministic virtual-time cost model for the attributed commit
/// path (see `prosper_telemetry::attribution`).
///
/// Under a virtual-clock [`StallAccountant`] the coordinator advances
/// the clock by these modelled costs — computed from the same
/// contiguous chunk assignment `for_each_stack` uses — so attributed
/// timelines are byte-identical across runs and still sensitive to
/// the worker count. Under a wall-clock accountant `advance` is a
/// no-op and real elapsed time is measured instead. Units are virtual
/// ns; the values are loosely calibrated to the simulator's cycle
/// costs — they only need to be *stable*, not accurate, because the
/// conservation invariant holds under any clock.
pub mod commit_cost {
    /// Fixed per-phase dispatch overhead.
    pub const PHASE_BASE_NS: u64 = 100;
    /// Staging: per staged run.
    pub const STAGE_RUN_NS: u64 = 60;
    /// Staging: per staged byte.
    pub const STAGE_BYTE_NS: u64 = 1;
    /// The single durable seal write.
    pub const SEAL_NS: u64 = 250;
    /// Coordinator bookkeeping per thread: staging one thread's
    /// register file into the process commit record. Charged to the
    /// **seal** phase — it is serialization-point work, not staging
    /// work (PR 7 regression: the stage stopwatch used to absorb it).
    pub const BOOKKEEP_SLOT_NS: u64 = 20;
    /// Spawning one scoped worker. Only the adaptive worker selector
    /// charges this (a parallel phase pays `workers` spawns); it is
    /// what makes fan-out lose to serial below the break-even commit
    /// size, as BENCH_pr3.json measured (w=2 at 0.85x serial).
    pub const WORKER_SPAWN_NS: u64 = 5_000;
    /// Apply: per staged run.
    pub const APPLY_RUN_NS: u64 = 40;
    /// Apply: per staged byte.
    pub const APPLY_BYTE_NS: u64 = 1;
    /// Apply: per register slot (the serial tail).
    pub const REGISTER_SLOT_NS: u64 = 30;
    /// Spine mode: retiring one sealed staging buffer as an immutable
    /// delta batch — a pointer swing plus one durable batch-header
    /// write. This O(1) cost replaces the per-byte apply copy on the
    /// commit critical path; the difference is the headline win the
    /// perf suite's `spine` section measures.
    pub const BATCH_APPEND_NS: u64 = 80;
    /// Spine merge: per deduplicated run written by a fold step.
    pub const MERGE_RUN_NS: u64 = 40;
    /// Spine merge: per deduplicated byte written by a fold step.
    pub const MERGE_BYTE_NS: u64 = 1;
    /// Recovery redo: per staged run replayed.
    pub const RECOVERY_RUN_NS: u64 = 50;
    /// Recovery redo: per staged byte replayed.
    pub const RECOVERY_BYTE_NS: u64 = 1;
    /// Recovery fixed overhead (record scan + register restore).
    pub const RECOVERY_BASE_NS: u64 = 400;
}

/// Records cause-tagged phase boundaries for the serial fault-injected
/// commit. The scribe closes the in-progress phase when a crash window
/// fires, so even a torn commit's stall window is exactly tiled by its
/// segments — attribution survives injected crashes by construction.
struct FaultScribe<'a> {
    acct: &'a StallAccountant,
    tids: Vec<u32>,
    sequence: u64,
    window_start: u64,
    phase_start: u64,
    cause: StallCause,
}

impl<'a> FaultScribe<'a> {
    fn new(acct: &'a StallAccountant, tids: Vec<u32>, sequence: u64) -> Self {
        let now = acct.now_ns();
        FaultScribe {
            acct,
            tids,
            sequence,
            window_start: now,
            phase_start: now,
            cause: StallCause::Stage,
        }
    }

    /// Advances the virtual clock by one unit of modelled work.
    fn work(&self, ns: u64) {
        self.acct.advance(ns);
    }

    /// Closes the current phase at `now` and opens `cause`.
    fn next_phase(&mut self, cause: StallCause) {
        self.close_phase();
        self.cause = cause;
    }

    /// [`Self::next_phase`] for a different sequence — the pipelined
    /// pair commits two sequences under one scribe window.
    fn next_phase_for(&mut self, cause: StallCause, sequence: u64) {
        self.close_phase();
        self.cause = cause;
        self.sequence = sequence;
    }

    fn close_phase(&mut self) {
        let now = self.acct.now_ns();
        for &tid in &self.tids {
            self.acct
                .record_segment(tid, self.cause, self.sequence, self.phase_start, now);
        }
        self.phase_start = now;
    }

    /// Closes the final (possibly crash-interrupted) phase and the
    /// per-thread stall windows.
    fn finish(mut self) {
        self.close_phase();
        for &tid in &self.tids {
            self.acct
                .record_window(tid, self.window_start, self.phase_start);
        }
    }
}

/// One claimable unit of the work-stealing stack fan-out: a worker
/// that takes the `Some` owns that stack for the pass.
type StackTask<'a> = std::sync::Mutex<Option<(u32, &'a mut PersistentStack)>>;

/// A process whose registers and stacks are persisted together.
#[derive(Debug)]
pub struct PersistentProcess {
    registers: ProcessCheckpointStore,
    stacks: BTreeMap<u32, PersistentStack>,
    /// Live register state per thread (what a checkpoint captures).
    live_regs: Vec<RegisterFile>,
    /// NVM: the in-flight commit record, if a commit was interrupted.
    pending: Option<ProcessCommitRecord>,
    /// NVM: sequence number the next commit will use.
    next_sequence: u64,
    /// Staged-delta spine mode: `Some` defers the apply copy behind
    /// per-stack delta batches governed by this merge policy; `None`
    /// is the classic eager apply.
    spine_cfg: Option<SpineConfig>,
}

/// A recovered execution state.
#[derive(Debug)]
pub struct RecoveredState {
    /// Per-thread registers as of the recovered checkpoint.
    pub regs: Vec<RegisterFile>,
    /// Sequence number of the recovered checkpoint.
    pub sequence: u64,
}

/// A sequence-coherence violation found by
/// [`PersistentProcess::verify_coherent`]: two parts of the recovered
/// state belong to different checkpoints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SequenceSkew {
    /// Human-readable description of the skewed component.
    pub detail: String,
}

impl std::fmt::Display for SequenceSkew {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sequence skew: {}", self.detail)
    }
}

impl std::error::Error for SequenceSkew {}

/// Fires the injector at `site`, aborting the interrupted operation
/// exactly as a power failure would: persistent state is left as-is,
/// the in-flight operation never continues.
macro_rules! crash_window {
    ($inj:expr, $site:expr) => {
        if $inj.observe($site) {
            return Err(CrashInjected { site: $site });
        }
    };
}

impl PersistentProcess {
    /// Creates a persistent process with `threads` threads whose
    /// stacks occupy the given ranges.
    ///
    /// # Panics
    ///
    /// Panics if `stack_ranges` is empty.
    pub fn new(stack_ranges: &[VirtRange]) -> Self {
        assert!(
            !stack_ranges.is_empty(),
            "process needs at least one thread"
        );
        Self {
            registers: ProcessCheckpointStore::new(stack_ranges.len()),
            stacks: stack_ranges
                .iter()
                .enumerate()
                .map(|(tid, r)| (tid as u32, PersistentStack::new(tid as u32, *r)))
                .collect(),
            live_regs: vec![RegisterFile::default(); stack_ranges.len()],
            pending: None,
            next_sequence: 1,
            spine_cfg: None,
        }
    }

    /// [`Self::new`] in staged-delta spine mode: commits append delta
    /// batches instead of eagerly applying, governed by `cfg`'s merge
    /// policy (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `stack_ranges` is empty.
    pub fn new_with_spine(stack_ranges: &[VirtRange], cfg: SpineConfig) -> Self {
        let mut p = Self::new(stack_ranges);
        p.spine_cfg = Some(cfg);
        p
    }

    /// The installed spine merge policy (`None` in eager-apply mode).
    pub fn spine_config(&self) -> Option<SpineConfig> {
        self.spine_cfg
    }

    /// Installs or removes the spine merge policy. Switching modes is
    /// only safe between commits; any batches already on a spine stay
    /// there and are folded by the next merge or recovery.
    pub fn set_spine_config(&mut self, cfg: Option<SpineConfig>) {
        self.spine_cfg = cfg;
    }

    /// Total delta batches currently on all stacks' spines.
    pub fn spine_batches(&self) -> usize {
        self.stacks
            .values()
            .map(PersistentStack::spine_batches)
            .sum()
    }

    /// Total payload bytes currently on all stacks' spines.
    pub fn spine_bytes(&self) -> u64 {
        self.stacks.values().map(PersistentStack::spine_bytes).sum()
    }

    /// Folds every stack's spine into its persistent image regardless
    /// of the merge policy and returns the aggregate stats — the
    /// steady-state drain the perf suite uses to measure total NVM
    /// write volume, and a way to force quiescence before inspecting
    /// persistent images directly.
    pub fn merge_all_spines(&mut self) -> MergeStats {
        let mut total = MergeStats::default();
        for stack in self.stacks.values_mut() {
            let stats = stack.merge_spine();
            total.batches_folded += stats.batches_folded;
            total.input_bytes += stats.input_bytes;
            total.written_bytes += stats.written_bytes;
        }
        total
    }

    /// Mutable access to thread `tid`'s live registers.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    pub fn regs_mut(&mut self, tid: u32) -> &mut RegisterFile {
        &mut self.live_regs[tid as usize]
    }

    /// Records a store into thread `tid`'s stack data plane.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist or the store leaves its
    /// stack range.
    pub fn record_store(&mut self, tid: u32, addr: prosper_memsim::addr::VirtAddr, bytes: &[u8]) {
        self.stacks
            .get_mut(&tid)
            .unwrap_or_else(|| panic!("thread {tid} not registered"))
            .record_store(addr, bytes);
    }

    /// The persistent stack of thread `tid`.
    pub fn stack(&self, tid: u32) -> &PersistentStack {
        &self.stacks[&tid]
    }

    /// Thread `tid`'s live registers.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    pub fn regs(&self, tid: u32) -> &RegisterFile {
        &self.live_regs[tid as usize]
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.live_regs.len()
    }

    /// Sequence of the last fully-committed whole-process checkpoint.
    pub fn committed_sequence(&self) -> u64 {
        self.registers.committed_sequence
    }

    /// Worker-count *cap* for the parallel commit phases: one per
    /// thread, up to the machine's parallelism. The adaptive selector
    /// picks the actual count within this cap.
    fn default_workers(threads: usize) -> usize {
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(threads)
            .max(1)
    }

    /// Modelled wall cost of one whole-process commit at `workers`,
    /// from the [`commit_cost`] model: both parallel phases under the
    /// work-stealing assignment, the serial seal (with its coordinator
    /// bookkeeping), the serial register tail — and, for `workers > 1`,
    /// the spawn overhead of the scoped workers, which is what tiny
    /// commits cannot amortize.
    fn modeled_commit_ns(
        tids: &[u32],
        workers: usize,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        spine: bool,
    ) -> u64 {
        let cost = |tid: u32, per_run: u64, per_byte: u64| {
            runs_per_thread
                .get(&tid)
                .map_or(0, |runs| Self::runs_cost(runs, per_run, per_byte))
        };
        // Spine mode replaces the per-byte apply copy with an O(1)
        // batch append per stack, so its phase-two term is flat.
        let phase_two = if spine {
            Self::stolen_phase_cost(tids, workers, |_| commit_cost::BATCH_APPEND_NS)
        } else {
            Self::stolen_phase_cost(tids, workers, |tid| {
                cost(tid, commit_cost::APPLY_RUN_NS, commit_cost::APPLY_BYTE_NS)
            })
        };
        2 * Self::spawn_cost(workers)
            + Self::stolen_phase_cost(tids, workers, |tid| {
                cost(tid, commit_cost::STAGE_RUN_NS, commit_cost::STAGE_BYTE_NS)
            })
            + commit_cost::SEAL_NS
            + tids.len() as u64 * commit_cost::BOOKKEEP_SLOT_NS
            + phase_two
            + tids.len() as u64 * commit_cost::REGISTER_SLOT_NS
    }

    /// Spawn overhead of one parallel pass: serial execution spawns
    /// nothing.
    fn spawn_cost(workers: usize) -> u64 {
        if workers > 1 {
            workers as u64 * commit_cost::WORKER_SPAWN_NS
        } else {
            0
        }
    }

    /// The worker count in `1..=cap` with the lowest modelled cost;
    /// ties go to the smallest count (serial wins a dead heat).
    fn argmin_workers(cap: usize, cost: impl Fn(usize) -> u64) -> usize {
        (1..=cap.max(1)).min_by_key(|&w| (cost(w), w)).unwrap_or(1)
    }

    /// Adaptive worker selection for [`Self::commit`]: evaluates the
    /// modelled commit cost at every worker count up to the
    /// machine-parallelism cap and returns the argmin. Commits whose
    /// staged bytes sit below the parallelism break-even come out
    /// serial — the fix for BENCH_pr3.json's w=2 → 0.85x regression,
    /// where `commit` fanned out unconditionally.
    fn select_workers(&self, runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>) -> usize {
        let tids: Vec<u32> = self.stacks.keys().copied().collect();
        let cap = Self::default_workers(tids.len());
        let spine = self.spine_cfg.is_some();
        Self::argmin_workers(cap, |w| {
            Self::modeled_commit_ns(&tids, w, runs_per_thread, spine)
        })
    }

    /// Commits one whole-process checkpoint: every thread's stack runs
    /// (from its tracker's bitmap inspection) plus every thread's
    /// registers, under the two-phase stage/seal/apply protocol, with
    /// staging and apply fanned out across scoped workers (see the
    /// module docs). The worker count is chosen adaptively from the
    /// per-phase cost model; commits below the parallelism break-even
    /// run serial.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit(&mut self, runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>) {
        self.commit_with_workers(runs_per_thread, self.select_workers(runs_per_thread));
    }

    /// [`Self::commit`] with an explicit worker count (the perf suite
    /// sweeps this to measure commit scaling).
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_with_workers(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        workers: usize,
    ) {
        self.commit_with_workers_probed(runs_per_thread, workers, None);
    }

    /// [`Self::commit_with_workers`] with a [`CommitProbe`] observing
    /// every protocol boundary the workers and the coordinator cross —
    /// the instrumentation hook the `prosper-analysis` conformance
    /// suite drives to check the *real* parallel path against the
    /// protocol-order invariants.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_with_workers_probed(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        workers: usize,
        probe: Option<&CommitProbe>,
    ) {
        self.commit_attributed(runs_per_thread, workers, probe, None);
    }

    /// [`Self::commit_with_workers_probed`] plus causal stall
    /// attribution: each phase boundary the coordinator crosses is
    /// charged to every thread as a cause-tagged [`StallSegment`]
    /// (during a whole-process commit *every* thread is stalled, so
    /// the per-thread segments share the coordinator's boundaries),
    /// and one [`StallWindow`] per thread brackets the whole commit.
    /// The segments tile the window by construction — the telescoping
    /// sum `(t1-t0)+(t2-t1)+(t3-t2) = t3-t0` — which the conservation
    /// tests verify end-to-end. Under a virtual-clock accountant the
    /// coordinator advances time from the [`commit_cost`] model over
    /// the same chunk assignment the workers use; the workers never
    /// touch the clock, so attributed timelines stay deterministic at
    /// any worker count.
    ///
    /// [`StallSegment`]: prosper_telemetry::StallSegment
    /// [`StallWindow`]: prosper_telemetry::StallWindow
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_attributed(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        workers: usize,
        probe: Option<&CommitProbe>,
        acct: Option<&StallAccountant>,
    ) {
        for tid in self.stacks.keys() {
            assert!(
                runs_per_thread.contains_key(tid),
                "no runs supplied for thread {tid}"
            );
        }
        let sequence = self.next_sequence;
        let tids: Vec<u32> = self.stacks.keys().copied().collect();
        let t0 = acct.map(StallAccountant::now_ns);
        // Phase one (parallel): stage every thread's runs into its own
        // NVM staging buffer — strictly per-thread state. The stage
        // stopwatch brackets *only* this staging work: staging the
        // register file into the commit record is coordinator
        // bookkeeping charged to the seal phase below (PR 7 satellite
        // regression — it used to inflate `stage_ns` and the ledger's
        // Stage segments).
        let stage_watch = telemetry::Stopwatch::start();
        Self::for_each_stack(&mut self.stacks, workers, |tid, stack| {
            stack.begin_stage_at(sequence);
            for run in &runs_per_thread[&tid] {
                stack.stage_run(run);
            }
            if let Some(p) = probe {
                p.record(CommitProbeEvent::StageThread { tid, sequence });
            }
        });
        let stage_ns = stage_watch.elapsed_ns();
        let t1 = acct.map(|a| {
            a.advance(Self::stolen_phase_cost(&tids, workers, |tid| {
                Self::runs_cost(
                    &runs_per_thread[&tid],
                    commit_cost::STAGE_RUN_NS,
                    commit_cost::STAGE_BYTE_NS,
                )
            }));
            a.now_ns()
        });
        // Seal phase: the register file is staged into the commit
        // record (coordinator bookkeeping), then the single durable
        // write — the single serialization point — commits the
        // checkpoint.
        let seal_watch = telemetry::Stopwatch::start();
        let mut record = ProcessCommitRecord {
            sequence,
            staged_regs: self.live_regs.clone(),
            sealed: false,
        };
        self.pending = Some(record.clone());
        record.sealed = true;
        self.pending = Some(record.clone());
        if let Some(p) = probe {
            p.record(CommitProbeEvent::Seal { sequence });
        }
        let seal_ns = seal_watch.elapsed_ns();
        let t2 = acct.map(|a| {
            a.advance(commit_cost::SEAL_NS + tids.len() as u64 * commit_cost::BOOKKEEP_SLOT_NS);
            a.now_ns()
        });
        // Phase two. Spine mode retires each stack's sealed staging
        // buffer as an immutable delta batch — no apply copy — then
        // runs the deferred, policy-gated merge off the critical path;
        // eager mode takes the classic parallel apply.
        let apply_watch = telemetry::Stopwatch::start();
        let mut merged: Option<(u64, MergeStats)> = None;
        let (apply_ns, merge_ns, t3, t4) = if let Some(cfg) = self.spine_cfg {
            Self::for_each_stack(&mut self.stacks, workers, |tid, stack| {
                stack.seal_to_spine(sequence);
                if let Some(p) = probe {
                    p.record(CommitProbeEvent::ApplyThread { tid, sequence });
                }
            });
            for (tid, regs) in record.staged_regs.iter().enumerate() {
                self.registers.apply_thread_at(tid, *regs, sequence);
            }
            self.registers.set_committed_sequence(sequence);
            self.pending = None;
            self.next_sequence = sequence + 1;
            if let Some(p) = probe {
                p.record(CommitProbeEvent::Retire { sequence });
            }
            let apply_ns = apply_watch.elapsed_ns();
            let t3 = acct.map(|a| {
                a.advance(
                    Self::stolen_phase_cost(&tids, workers, |_| commit_cost::BATCH_APPEND_NS)
                        + tids.len() as u64 * commit_cost::REGISTER_SLOT_NS,
                );
                a.now_ns()
            });
            let merge_watch = telemetry::Stopwatch::start();
            let mut stats = MergeStats::default();
            let mut merges = 0u64;
            let mut merge_model_ns = 0u64;
            for (tid, stack) in &mut self.stacks {
                if !stack.should_merge(&cfg) {
                    continue;
                }
                let s = stack.merge_spine();
                merges += 1;
                merge_model_ns += s.batches_folded * commit_cost::MERGE_RUN_NS
                    + s.written_bytes * commit_cost::MERGE_BYTE_NS;
                stats.batches_folded += s.batches_folded;
                stats.input_bytes += s.input_bytes;
                stats.written_bytes += s.written_bytes;
                if let Some(p) = probe {
                    p.record(CommitProbeEvent::MergeThread {
                        tid: *tid,
                        upto: sequence,
                    });
                }
            }
            let merge_ns = merge_watch.elapsed_ns();
            let t4 = acct.map(|a| {
                if merges > 0 {
                    a.advance(commit_cost::PHASE_BASE_NS + merge_model_ns);
                }
                a.now_ns()
            });
            merged = Some((merges, stats));
            (apply_ns, merge_ns, t3, t4)
        } else {
            self.apply_record_parallel(&record, workers, probe);
            let apply_ns = apply_watch.elapsed_ns();
            let t3 = acct.map(|a| {
                a.advance(
                    Self::stolen_phase_cost(&tids, workers, |tid| {
                        Self::runs_cost(
                            &runs_per_thread[&tid],
                            commit_cost::APPLY_RUN_NS,
                            commit_cost::APPLY_BYTE_NS,
                        )
                    }) + tids.len() as u64 * commit_cost::REGISTER_SLOT_NS,
                );
                a.now_ns()
            });
            (apply_ns, 0, t3, t3)
        };
        if let (Some(a), Some(t0), Some(t1), Some(t2), Some(t3), Some(t4)) =
            (acct, t0, t1, t2, t3, t4)
        {
            for &tid in &tids {
                a.record_segment(tid, StallCause::Stage, sequence, t0, t1);
                a.record_segment(tid, StallCause::Seal, sequence, t1, t2);
                a.record_segment(tid, StallCause::Apply, sequence, t2, t3);
                if t4 > t3 {
                    a.record_segment(tid, StallCause::Merge, sequence, t3, t4);
                }
                a.record_window(tid, t0, t4);
            }
        }
        if telemetry::enabled() {
            let spine_total = self.spine_batches() as i64;
            telemetry::with(|t| {
                let r = t.registry();
                r.gauge("prosper.commit.workers").set(workers as i64);
                r.histogram("prosper.commit.phase.stage_ns")
                    .record(stage_ns);
                r.histogram("prosper.commit.phase.seal_ns").record(seal_ns);
                r.histogram("prosper.commit.phase.apply_ns")
                    .record(apply_ns);
                if let Some((merges, stats)) = merged {
                    r.histogram("prosper.commit.phase.merge_ns")
                        .record(merge_ns);
                    r.gauge("prosper.spine.batches").set(spine_total);
                    if merges > 0 {
                        r.counter("prosper.spine.merges").add(merges);
                        r.counter("prosper.spine.merged_bytes")
                            .add(stats.written_bytes);
                    }
                }
            });
        }
    }

    /// Commits a back-to-back burst of whole-process checkpoints
    /// through the pipelined protocol: while sequence N's apply
    /// drains, sequence N+1's runs stage ahead on the stacks whose
    /// apply already retired (see the module docs for the sharpened
    /// invariant). The worker count is chosen adaptively from the
    /// modelled burst cost.
    ///
    /// # Panics
    ///
    /// Panics if any batch misses a registered thread.
    pub fn commit_pipelined(&mut self, batches: &[BTreeMap<u32, Vec<CopyRun>>]) {
        let workers = self.select_pipelined_workers(batches);
        self.commit_pipelined_attributed(batches, workers, None, None);
    }

    /// [`Self::commit_pipelined`] with an explicit worker count (the
    /// perf suite sweeps this to measure pipelined commit scaling).
    ///
    /// # Panics
    ///
    /// Panics if any batch misses a registered thread.
    pub fn commit_pipelined_with_workers(
        &mut self,
        batches: &[BTreeMap<u32, Vec<CopyRun>>],
        workers: usize,
    ) {
        self.commit_pipelined_attributed(batches, workers, None, None);
    }

    /// The worker count the adaptive selector picks for a pipelined
    /// burst of `batches` — exposed so the perf suite can report the
    /// selected configuration alongside the measured scaling.
    #[must_use]
    pub fn planned_pipelined_workers(&self, batches: &[BTreeMap<u32, Vec<CopyRun>>]) -> usize {
        self.select_pipelined_workers(batches)
    }

    /// Adaptive worker selection for a pipelined burst: argmin of the
    /// modelled burst cost over the machine-parallelism cap.
    fn select_pipelined_workers(&self, batches: &[BTreeMap<u32, Vec<CopyRun>>]) -> usize {
        let tids: Vec<u32> = self.stacks.keys().copied().collect();
        let cap = Self::default_workers(tids.len());
        Self::argmin_workers(cap, |w| Self::modeled_pipelined_ns(&tids, w, batches))
    }

    /// Modelled wall cost of a pipelined burst at `workers`: the head
    /// stage, then per sequence the serial seal (plus bookkeeping) and
    /// the fused apply+stage-ahead pass, plus the register tail —
    /// with one spawn charge per parallel pass.
    fn modeled_pipelined_ns(
        tids: &[u32],
        workers: usize,
        batches: &[BTreeMap<u32, Vec<CopyRun>>],
    ) -> u64 {
        let cost = |batch: &BTreeMap<u32, Vec<CopyRun>>, tid: u32, per_run: u64, per_byte: u64| {
            batch
                .get(&tid)
                .map_or(0, |runs| Self::runs_cost(runs, per_run, per_byte))
        };
        let Some(head) = batches.first() else {
            return 0;
        };
        let mut total = Self::spawn_cost(workers)
            + Self::stolen_phase_cost(tids, workers, |tid| {
                cost(
                    head,
                    tid,
                    commit_cost::STAGE_RUN_NS,
                    commit_cost::STAGE_BYTE_NS,
                )
            });
        for (i, batch) in batches.iter().enumerate() {
            let next = batches.get(i + 1);
            total += commit_cost::SEAL_NS
                + tids.len() as u64 * commit_cost::BOOKKEEP_SLOT_NS
                + Self::spawn_cost(workers)
                + Self::stolen_phase_cost(tids, workers, |tid| {
                    cost(
                        batch,
                        tid,
                        commit_cost::APPLY_RUN_NS,
                        commit_cost::APPLY_BYTE_NS,
                    ) + next.map_or(0, |n| {
                        cost(
                            n,
                            tid,
                            commit_cost::STAGE_RUN_NS,
                            commit_cost::STAGE_BYTE_NS,
                        )
                    })
                })
                + tids.len() as u64 * commit_cost::REGISTER_SLOT_NS;
        }
        total
    }

    /// [`Self::commit_pipelined_with_workers`] with a [`CommitProbe`]
    /// observing every protocol boundary and optional stall
    /// attribution.
    ///
    /// Probe streams from this path carry the legal cross-sequence
    /// overlap — `StageThread` events for N+1 between seal(N) and
    /// retire(N) — which the sharpened `prosper-analysis` commit-order
    /// checker validates (stage(N+1) never before seal(N); seal(N+1)
    /// never before apply(N) drains).
    ///
    /// Attribution: the overlap window's staged-ahead work hides
    /// behind sequence N's apply drain, so it is charged to N's
    /// `Apply` segment — that *is* the checkpoint-tax win being
    /// measured. Each sequence's window is tiled by its segments as
    /// ever (Stage only for the burst head; Seal; Apply), so the
    /// conservation invariant holds unchanged.
    ///
    /// # Panics
    ///
    /// Panics if any batch misses a registered thread.
    pub fn commit_pipelined_attributed(
        &mut self,
        batches: &[BTreeMap<u32, Vec<CopyRun>>],
        workers: usize,
        probe: Option<&CommitProbe>,
        acct: Option<&StallAccountant>,
    ) {
        if batches.is_empty() {
            return;
        }
        for batch in batches {
            for tid in self.stacks.keys() {
                assert!(batch.contains_key(tid), "no runs supplied for thread {tid}");
            }
        }
        if self.spine_cfg.is_some() {
            // Spine mode has no apply drain to hide the next stage
            // behind — the burst degenerates to back-to-back spine
            // commits, each already free of the apply copy.
            let burst_watch = telemetry::Stopwatch::start();
            for batch in batches {
                self.commit_attributed(batch, workers, probe, acct);
            }
            let burst_ns = burst_watch.elapsed_ns();
            if telemetry::enabled() {
                telemetry::with(|t| {
                    t.registry()
                        .histogram("prosper.commit.pipeline.burst_ns")
                        .record(burst_ns);
                });
            }
            return;
        }
        let tids: Vec<u32> = self.stacks.keys().copied().collect();
        let first = self.next_sequence;
        let burst_watch = telemetry::Stopwatch::start();
        // Head stage: the burst's first batch has no prior apply to
        // hide behind.
        let mut window_start = acct.map(StallAccountant::now_ns);
        Self::for_each_stack(&mut self.stacks, workers, |tid, stack| {
            stack.begin_stage_at(first);
            for run in &batches[0][&tid] {
                stack.stage_run(run);
            }
            if let Some(p) = probe {
                p.record(CommitProbeEvent::StageThread {
                    tid,
                    sequence: first,
                });
            }
        });
        let mut head_stage_end = acct.map(|a| {
            a.advance(Self::stolen_phase_cost(&tids, workers, |tid| {
                Self::runs_cost(
                    &batches[0][&tid],
                    commit_cost::STAGE_RUN_NS,
                    commit_cost::STAGE_BYTE_NS,
                )
            }));
            a.now_ns()
        });
        for (i, batch) in batches.iter().enumerate() {
            let sequence = first + i as u64;
            // Seal(sequence): stage(sequence) is complete and — for
            // i > 0 — apply(sequence-1) fully drained in the previous
            // fused pass. Bookkeeping + one durable write.
            let mut record = ProcessCommitRecord {
                sequence,
                staged_regs: self.live_regs.clone(),
                sealed: false,
            };
            self.pending = Some(record.clone());
            record.sealed = true;
            self.pending = Some(record.clone());
            if let Some(p) = probe {
                p.record(CommitProbeEvent::Seal { sequence });
            }
            let seal_end = acct.map(|a| {
                a.advance(commit_cost::SEAL_NS + tids.len() as u64 * commit_cost::BOOKKEEP_SLOT_NS);
                a.now_ns()
            });
            // The overlap window: apply(sequence) drains while the
            // next batch stages ahead, fused per stack — a stack
            // stages ahead only once its own apply retired, so the
            // single staging buffer per stack is never torn between
            // sequences.
            let next = batches.get(i + 1);
            let next_seq = sequence + 1;
            Self::for_each_stack(&mut self.stacks, workers, |tid, stack| {
                for k in 0..stack.staged_runs() {
                    stack.apply_run(k);
                }
                stack.finish_apply(sequence);
                if let Some(p) = probe {
                    p.record(CommitProbeEvent::ApplyThread { tid, sequence });
                }
                if let Some(next) = next {
                    stack.begin_stage_at(next_seq);
                    for run in &next[&tid] {
                        stack.stage_run(run);
                    }
                    if let Some(p) = probe {
                        p.record(CommitProbeEvent::StageThread {
                            tid,
                            sequence: next_seq,
                        });
                    }
                }
            });
            // Serial tail: register slots, then retire the record.
            for (tid, regs) in record.staged_regs.iter().enumerate() {
                self.registers.apply_thread_at(tid, *regs, sequence);
            }
            self.registers.set_committed_sequence(sequence);
            self.pending = None;
            self.next_sequence = next_seq;
            if let Some(p) = probe {
                p.record(CommitProbeEvent::Retire { sequence });
            }
            let retire_end = acct.map(|a| {
                a.advance(
                    Self::stolen_phase_cost(&tids, workers, |tid| {
                        Self::runs_cost(
                            &batch[&tid],
                            commit_cost::APPLY_RUN_NS,
                            commit_cost::APPLY_BYTE_NS,
                        ) + next.map_or(0, |n| {
                            Self::runs_cost(
                                &n[&tid],
                                commit_cost::STAGE_RUN_NS,
                                commit_cost::STAGE_BYTE_NS,
                            )
                        })
                    }) + tids.len() as u64 * commit_cost::REGISTER_SLOT_NS,
                );
                a.now_ns()
            });
            if let (Some(a), Some(ws), Some(se), Some(re)) =
                (acct, window_start, seal_end, retire_end)
            {
                for &tid in &tids {
                    match head_stage_end {
                        Some(st) => {
                            a.record_segment(tid, StallCause::Stage, sequence, ws, st);
                            a.record_segment(tid, StallCause::Seal, sequence, st, se);
                        }
                        None => a.record_segment(tid, StallCause::Seal, sequence, ws, se),
                    }
                    a.record_segment(tid, StallCause::Apply, sequence, se, re);
                    a.record_window(tid, ws, re);
                }
            }
            head_stage_end = None;
            window_start = retire_end;
        }
        let burst_ns = burst_watch.elapsed_ns();
        if telemetry::enabled() {
            telemetry::with(|t| {
                let r = t.registry();
                r.gauge("prosper.commit.workers").set(workers as i64);
                r.histogram("prosper.commit.pipeline.burst_ns")
                    .record(burst_ns);
            });
        }
    }

    /// Serial, crash-windowed twin of one pipelined hand-off: commits
    /// sequence N and then N+1, staging N+1's runs inside N's apply
    /// drain exactly as the pipelined burst does, with a named
    /// [`CrashSite`] at every boundary — including
    /// [`CrashSite::MidPipelineStage`] inside the overlap window. The
    /// exhaustive crash matrix drives this path to prove recovery
    /// lands on exactly N or N+1 from any point of the overlap.
    ///
    /// After a crash, the number of `PostSeal` boundaries in the
    /// injector's crossed-site log equals the number of durable seals
    /// — exactly how far past the pre-burst sequence recovery must
    /// land.
    ///
    /// # Errors
    ///
    /// Returns [`CrashInjected`] if the injector fired.
    ///
    /// # Panics
    ///
    /// Panics if either batch misses a registered thread.
    pub fn commit_pipelined_pair_with_faults(
        &mut self,
        runs_n: &BTreeMap<u32, Vec<CopyRun>>,
        runs_n1: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
    ) -> Result<(), CrashInjected> {
        self.commit_pipelined_pair_with_faults_attributed(runs_n, runs_n1, inj, None)
    }

    /// [`Self::commit_pipelined_pair_with_faults`] with stall
    /// attribution: one scribe window spans both sequences; the
    /// staged-ahead work inside the overlap is charged to sequence N's
    /// `Apply` phase (it hides behind the drain), and the scribe
    /// closes the open phase at the crash instant so torn pipelined
    /// commits conserve exactly, as the overlap-window crash tests
    /// assert.
    ///
    /// # Errors
    ///
    /// Returns [`CrashInjected`] if the injector fired.
    ///
    /// # Panics
    ///
    /// Panics if either batch misses a registered thread.
    pub fn commit_pipelined_pair_with_faults_attributed(
        &mut self,
        runs_n: &BTreeMap<u32, Vec<CopyRun>>,
        runs_n1: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
        acct: Option<&StallAccountant>,
    ) -> Result<(), CrashInjected> {
        if self.spine_cfg.is_some() {
            // Spine mode has no apply drain to hide stage(N+1) behind
            // (see `commit_pipelined`): the pair degenerates to two
            // back-to-back spine commits, each already free of the
            // apply copy. The seal-counting recovery rule is
            // unchanged — one `PostSeal` crossing per durable
            // sequence.
            self.commit_with_faults_attributed(runs_n, inj, acct)?;
            return self.commit_with_faults_attributed(runs_n1, inj, acct);
        }
        let mut scribe = acct.map(|a| {
            FaultScribe::new(a, self.stacks.keys().copied().collect(), self.next_sequence)
        });
        let result = self.pipelined_pair_inner(runs_n, runs_n1, inj, scribe.as_mut());
        if let Some(s) = scribe {
            s.finish();
        }
        result
    }

    fn pipelined_pair_inner(
        &mut self,
        runs_n: &BTreeMap<u32, Vec<CopyRun>>,
        runs_n1: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
        mut scribe: Option<&mut FaultScribe<'_>>,
    ) -> Result<(), CrashInjected> {
        for tid in self.stacks.keys() {
            assert!(
                runs_n.contains_key(tid) && runs_n1.contains_key(tid),
                "no runs supplied for thread {tid}"
            );
        }
        let sequence = self.next_sequence;
        let next_seq = sequence + 1;
        crash_window!(inj, CrashSite::PreStage);
        // Stage N (nothing to overlap with yet).
        for (tid, stack) in &mut self.stacks {
            stack.begin_stage_at(sequence);
            for (k, run) in runs_n[tid].iter().enumerate() {
                stack.stage_run(run);
                if let Some(s) = scribe.as_deref_mut() {
                    s.work(commit_cost::STAGE_RUN_NS + run.len * commit_cost::STAGE_BYTE_NS);
                }
                crash_window!(
                    inj,
                    CrashSite::MidStage {
                        tid: *tid,
                        runs_staged: k as u32 + 1,
                    }
                );
            }
        }
        let mut record = ProcessCommitRecord {
            sequence,
            staged_regs: self.live_regs.clone(),
            sealed: false,
        };
        self.pending = Some(record.clone());
        crash_window!(inj, CrashSite::PreSeal);
        if let Some(s) = scribe.as_deref_mut() {
            s.next_phase(StallCause::Seal);
            s.work(self.live_regs.len() as u64 * commit_cost::BOOKKEEP_SLOT_NS);
        }
        // Seal(N): the overlap window may open past this point.
        record.sealed = true;
        self.pending = Some(record.clone());
        if let Some(s) = scribe.as_deref_mut() {
            s.work(commit_cost::SEAL_NS);
        }
        crash_window!(inj, CrashSite::PostSeal);
        if let Some(s) = scribe.as_deref_mut() {
            s.next_phase(StallCause::Apply);
        }
        // The overlap window: drain apply(N) stack by stack; each
        // stack stages N+1's runs the moment its own apply retires,
        // while later stacks' applies are still pending — the state a
        // MidPipelineStage crash interrupts.
        for (tid, stack) in &mut self.stacks {
            for k in 0..stack.staged_runs() {
                stack.apply_run(k);
                if let Some(s) = scribe.as_deref_mut() {
                    s.work(
                        commit_cost::APPLY_RUN_NS
                            + stack.staged_run_len(k) * commit_cost::APPLY_BYTE_NS,
                    );
                }
                crash_window!(
                    inj,
                    CrashSite::MidApply {
                        tid: *tid,
                        runs_applied: k as u32 + 1,
                    }
                );
            }
            stack.finish_apply(sequence);
            crash_window!(inj, CrashSite::PostApplyThread { tid: *tid });
            stack.begin_stage_at(next_seq);
            for (k, run) in runs_n1[tid].iter().enumerate() {
                stack.stage_run(run);
                if let Some(s) = scribe.as_deref_mut() {
                    s.work(commit_cost::STAGE_RUN_NS + run.len * commit_cost::STAGE_BYTE_NS);
                }
                crash_window!(
                    inj,
                    CrashSite::MidPipelineStage {
                        tid: *tid,
                        runs_staged: k as u32 + 1,
                    }
                );
            }
        }
        crash_window!(inj, CrashSite::PostApplyPreRegisters);
        for (tid, regs) in record.staged_regs.iter().enumerate() {
            self.registers.apply_thread_at(tid, *regs, sequence);
            if let Some(s) = scribe.as_deref_mut() {
                s.work(commit_cost::REGISTER_SLOT_NS);
            }
            crash_window!(inj, CrashSite::MidRegisterApply { tid: tid as u32 });
        }
        self.registers.set_committed_sequence(sequence);
        self.pending = None;
        self.next_sequence = next_seq;
        crash_window!(inj, CrashSite::PostCommit);
        // Second hand-off: N+1 staged ahead in the overlap; only its
        // seal and apply remain. seal(N+1) sits strictly after the
        // drain of apply(N) — the sharpened invariant in code form.
        let mut record = ProcessCommitRecord {
            sequence: next_seq,
            staged_regs: self.live_regs.clone(),
            sealed: false,
        };
        self.pending = Some(record.clone());
        crash_window!(inj, CrashSite::PreSeal);
        if let Some(s) = scribe.as_deref_mut() {
            s.next_phase_for(StallCause::Seal, next_seq);
            s.work(
                self.live_regs.len() as u64 * commit_cost::BOOKKEEP_SLOT_NS + commit_cost::SEAL_NS,
            );
        }
        record.sealed = true;
        self.pending = Some(record.clone());
        crash_window!(inj, CrashSite::PostSeal);
        if let Some(s) = scribe.as_deref_mut() {
            s.next_phase(StallCause::Apply);
        }
        self.apply_record(&record, inj, scribe)
    }

    /// Modelled cost of staging or applying `runs` for one thread.
    fn runs_cost(runs: &[CopyRun], per_run_ns: u64, per_byte_ns: u64) -> u64 {
        runs.iter().map(|r| per_run_ns + r.len * per_byte_ns).sum()
    }

    /// Makespan of one parallel phase under work-stealing assignment:
    /// tasks are claimed in tid order by whichever worker frees up
    /// first, which the model reproduces as greedy list-scheduling —
    /// each task lands on the currently least-loaded worker — plus a
    /// fixed dispatch overhead. A parallel phase is as slow as its
    /// most-loaded worker; uneven per-thread run lists no longer
    /// inflate the bound the way pre-assigned contiguous chunks did.
    fn stolen_phase_cost(tids: &[u32], workers: usize, per_tid: impl Fn(u32) -> u64) -> u64 {
        let workers = workers.clamp(1, tids.len().max(1));
        let mut load = vec![0u64; workers];
        for &t in tids {
            if let Some(min) = load.iter_mut().min() {
                *min += per_tid(t);
            }
        }
        commit_cost::PHASE_BASE_NS + load.into_iter().max().unwrap_or(0)
    }

    /// Runs `f` over every stack, fanned out across at most `workers`
    /// scoped threads. Assignment is work-stealing: each worker claims
    /// the next unclaimed stack from a shared cursor as it frees up,
    /// so a worker stuck on a heavy stack never strands the light ones
    /// behind it (the PR-3 contiguous-chunk scheme did exactly that).
    fn for_each_stack<F>(stacks: &mut BTreeMap<u32, PersistentStack>, workers: usize, f: F)
    where
        F: Fn(u32, &mut PersistentStack) + Sync,
    {
        let refs: Vec<(u32, &mut PersistentStack)> =
            stacks.iter_mut().map(|(tid, s)| (*tid, s)).collect();
        let workers = workers.clamp(1, refs.len().max(1));
        if workers == 1 {
            for (tid, stack) in refs {
                f(tid, stack);
            }
            return;
        }
        let tasks: Vec<StackTask<'_>> = refs
            .into_iter()
            .map(|t| std::sync::Mutex::new(Some(t)))
            .collect();
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // lint:allow(PA-ATOMIC007): work-queue ticket counter — only uniqueness matters; each task is published through its Mutex, not this index
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    if let Some((tid, stack)) = task.lock().ok().and_then(|mut t| t.take()) {
                        f(tid, stack);
                    }
                });
            }
        });
    }

    /// [`Self::commit`] with a crash window at every step boundary.
    ///
    /// When the injector fires, the commit stops immediately and
    /// returns [`CrashInjected`], leaving the persistent state exactly
    /// as a power failure at that boundary would: the caller then
    /// simulates the crash ([`Self::crash`]) and recovers
    /// ([`Self::recover`]).
    ///
    /// # Errors
    ///
    /// Returns [`CrashInjected`] if the injector fired.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_with_faults(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
    ) -> Result<(), CrashInjected> {
        self.commit_with_faults_attributed(runs_per_thread, inj, None)
    }

    /// [`Self::commit_with_faults`] with stall attribution. A
    /// [`FaultScribe`] tracks the in-progress phase; when a crash
    /// window fires, the scribe closes the partial segment and the
    /// stall window at the crash instant, so a torn commit's ledger
    /// still conserves exactly — the property the crash-matrix
    /// attribution snapshot archives.
    ///
    /// # Errors
    ///
    /// Returns [`CrashInjected`] if the injector fired.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_with_faults_attributed(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
        acct: Option<&StallAccountant>,
    ) -> Result<(), CrashInjected> {
        let mut scribe = acct.map(|a| {
            FaultScribe::new(a, self.stacks.keys().copied().collect(), self.next_sequence)
        });
        let result = self.commit_with_faults_inner(runs_per_thread, inj, scribe.as_mut());
        if let Some(s) = scribe {
            s.finish();
        }
        result
    }

    fn commit_with_faults_inner(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
        mut scribe: Option<&mut FaultScribe<'_>>,
    ) -> Result<(), CrashInjected> {
        let sequence = self.next_sequence;
        crash_window!(inj, CrashSite::PreStage);
        // Phase one: stage every thread's runs...
        for (tid, stack) in &mut self.stacks {
            let runs = runs_per_thread
                .get(tid)
                .unwrap_or_else(|| panic!("no runs supplied for thread {tid}"));
            stack.begin_stage_at(sequence);
            for (k, run) in runs.iter().enumerate() {
                stack.stage_run(run);
                if let Some(s) = scribe.as_deref_mut() {
                    s.work(commit_cost::STAGE_RUN_NS + run.len * commit_cost::STAGE_BYTE_NS);
                }
                crash_window!(
                    inj,
                    CrashSite::MidStage {
                        tid: *tid,
                        runs_staged: k as u32 + 1,
                    }
                );
            }
        }
        // ...and the register file, into the unsealed commit record.
        let mut record = ProcessCommitRecord {
            sequence: self.next_sequence,
            staged_regs: self.live_regs.clone(),
            sealed: false,
        };
        self.pending = Some(record.clone());
        crash_window!(inj, CrashSite::PreSeal);
        if let Some(s) = scribe.as_deref_mut() {
            s.next_phase(StallCause::Seal);
            // Coordinator bookkeeping (the record's register staging)
            // is seal-phase work, matching the parallel path.
            s.work(self.live_regs.len() as u64 * commit_cost::BOOKKEEP_SLOT_NS);
        }
        // Seal: the single durable write that commits the checkpoint.
        record.sealed = true;
        self.pending = Some(record.clone());
        if let Some(s) = scribe.as_deref_mut() {
            s.work(commit_cost::SEAL_NS);
        }
        crash_window!(inj, CrashSite::PostSeal);
        if let Some(s) = scribe.as_deref_mut() {
            s.next_phase(StallCause::Apply);
        }
        // Phase two.
        if let Some(cfg) = self.spine_cfg {
            return self.spine_phase_two(&record, cfg, inj, scribe);
        }
        self.apply_record(&record, inj, scribe)
    }

    /// Spine-mode phase two of the fault-injected commit: every
    /// stack's sealed staging buffer is retired to its spine (a crash
    /// window at each [`CrashSite::BatchSeal`] boundary), the register
    /// tail runs as in eager mode, the record retires, and the
    /// deferred merge policy walks its crash-windowed steps
    /// ([`CrashSite::MidMerge`] between fold steps,
    /// [`CrashSite::MergeRetire`] after each spine retires).
    /// Idempotent end to end: recovery re-appends any staging still
    /// tagged with the record's sequence and re-folds any surviving
    /// spine.
    fn spine_phase_two(
        &mut self,
        record: &ProcessCommitRecord,
        cfg: SpineConfig,
        inj: &mut FaultInjector,
        mut scribe: Option<&mut FaultScribe<'_>>,
    ) -> Result<(), CrashInjected> {
        debug_assert!(record.sealed, "spine phase two before the seal");
        for (tid, stack) in &mut self.stacks {
            stack.seal_to_spine(record.sequence);
            if let Some(s) = scribe.as_deref_mut() {
                s.work(commit_cost::BATCH_APPEND_NS);
            }
            crash_window!(inj, CrashSite::BatchSeal { tid: *tid });
        }
        crash_window!(inj, CrashSite::PostApplyPreRegisters);
        for (tid, regs) in record.staged_regs.iter().enumerate() {
            self.registers.apply_thread_at(tid, *regs, record.sequence);
            if let Some(s) = scribe.as_deref_mut() {
                s.work(commit_cost::REGISTER_SLOT_NS);
            }
            crash_window!(inj, CrashSite::MidRegisterApply { tid: tid as u32 });
        }
        self.registers.set_committed_sequence(record.sequence);
        self.pending = None;
        self.next_sequence = record.sequence + 1;
        crash_window!(inj, CrashSite::PostCommit);
        // Deferred merge: policy-gated, and it never crosses an
        // unsealed batch — everything on the spine is sealed by
        // construction, and the commit above fully retired before the
        // first fold step runs.
        for (tid, stack) in &mut self.stacks {
            if !stack.should_merge(&cfg) {
                continue;
            }
            if let Some(s) = scribe.as_deref_mut() {
                s.next_phase(StallCause::Merge);
            }
            let plan = stack.merge_plan();
            for step in &plan {
                stack.apply_merge_step(step);
                if let Some(s) = scribe.as_deref_mut() {
                    s.work(commit_cost::MERGE_RUN_NS + step.bytes() * commit_cost::MERGE_BYTE_NS);
                }
                crash_window!(
                    inj,
                    CrashSite::MidMerge {
                        tid: *tid,
                        batches_folded: step.batches_folded(),
                    }
                );
            }
            stack.retire_spine();
            crash_window!(inj, CrashSite::MergeRetire { tid: *tid });
        }
        Ok(())
    }

    /// The parallel twin of [`Self::apply_record`]: applies every
    /// staging buffer across scoped workers, then the register slots
    /// serially, then retires the record. Idempotent, so recovery
    /// replays it from any interruption point; no crash windows — the
    /// deterministic sweep uses the serial path. Recovery's redo runs
    /// through here, so the path carries no `panic!`/`unwrap`/`expect`
    /// (enforced by lint rule `PA-PANIC004`).
    fn apply_record_parallel(
        &mut self,
        record: &ProcessCommitRecord,
        workers: usize,
        probe: Option<&CommitProbe>,
    ) {
        debug_assert!(record.sealed, "apply before the seal");
        let sequence = record.sequence;
        Self::for_each_stack(&mut self.stacks, workers, |tid, stack| {
            if stack.staging_sequence() > sequence {
                // Pipelined overlap: this stack finished applying
                // `sequence` and staged ahead for the next one before
                // the crash. The staged-ahead buffer is unsealed by
                // protocol (no seal(N+1) before apply(N) drains), so
                // redo discards it; the already-applied state stands.
                stack.discard_staging();
            } else {
                for k in 0..stack.staged_runs() {
                    stack.apply_run(k);
                }
                stack.finish_apply(sequence);
            }
            if let Some(p) = probe {
                p.record(CommitProbeEvent::ApplyThread { tid, sequence });
            }
        });
        for (tid, regs) in record.staged_regs.iter().enumerate() {
            self.registers.apply_thread_at(tid, *regs, sequence);
        }
        self.registers.set_committed_sequence(sequence);
        self.pending = None;
        self.next_sequence = sequence + 1;
        if let Some(p) = probe {
            p.record(CommitProbeEvent::Retire { sequence });
        }
    }

    /// Applies the sealed commit record: every staging buffer, then
    /// every register slot, then retires the record. Idempotent, so
    /// recovery replays it from any interruption point.
    fn apply_record(
        &mut self,
        record: &ProcessCommitRecord,
        inj: &mut FaultInjector,
        mut scribe: Option<&mut FaultScribe<'_>>,
    ) -> Result<(), CrashInjected> {
        debug_assert!(record.sealed, "apply before the seal");
        for (tid, stack) in &mut self.stacks {
            for k in 0..stack.staged_runs() {
                stack.apply_run(k);
                if let Some(s) = scribe.as_deref_mut() {
                    s.work(
                        commit_cost::APPLY_RUN_NS
                            + stack.staged_run_len(k) * commit_cost::APPLY_BYTE_NS,
                    );
                }
                crash_window!(
                    inj,
                    CrashSite::MidApply {
                        tid: *tid,
                        runs_applied: k as u32 + 1,
                    }
                );
            }
            stack.finish_apply(record.sequence);
            crash_window!(inj, CrashSite::PostApplyThread { tid: *tid });
        }
        crash_window!(inj, CrashSite::PostApplyPreRegisters);
        for (tid, regs) in record.staged_regs.iter().enumerate() {
            self.registers.apply_thread_at(tid, *regs, record.sequence);
            if let Some(s) = scribe.as_deref_mut() {
                s.work(commit_cost::REGISTER_SLOT_NS);
            }
            crash_window!(inj, CrashSite::MidRegisterApply { tid: tid as u32 });
        }
        self.registers.set_committed_sequence(record.sequence);
        self.pending = None;
        self.next_sequence = record.sequence + 1;
        crash_window!(inj, CrashSite::PostCommit);
        Ok(())
    }

    /// Simulates a power failure: all live registers and volatile
    /// stack images are lost.
    pub fn crash(&mut self) {
        for stack in self.stacks.values_mut() {
            stack.crash();
        }
        self.live_regs = vec![RegisterFile::default(); self.live_regs.len()];
    }

    /// Recovers the process to one coherent checkpoint.
    ///
    /// If a sealed commit record exists, the crash hit after the
    /// commit point: the apply is **redone** from the staged state
    /// (idempotently), landing every stack and every register slot on
    /// the record's sequence. Without a sealed record, all staging is
    /// discarded and the previous checkpoint stands. Either way no
    /// component can recover at a different sequence than the rest.
    ///
    /// # Errors
    ///
    /// Returns [`NoValidCheckpoint`] if no complete checkpoint exists.
    pub fn recover(&mut self) -> Result<RecoveredState, NoValidCheckpoint> {
        self.recover_attributed(None)
    }

    /// [`Self::recover`] with stall attribution: the whole replay —
    /// redo of a sealed record or discard of an unsealed one — is
    /// charged to every thread as a single `Recovery`-cause segment
    /// with a matching stall window, tagged with the sequence being
    /// redone (0 when nothing was sealed). Under a virtual clock the
    /// replay cost is modelled from the staged runs/bytes actually
    /// replayed, so crash-point choice shows up in the timeline.
    ///
    /// This is a recovery-surface function: it must stay panic-free
    /// (`PA-PANIC004`), which the accountant guarantees by never
    /// panicking on its own lock.
    ///
    /// # Errors
    ///
    /// Returns [`NoValidCheckpoint`] if no complete checkpoint exists.
    pub fn recover_attributed(
        &mut self,
        acct: Option<&StallAccountant>,
    ) -> Result<RecoveredState, NoValidCheckpoint> {
        let Some(acct) = acct else {
            return self.recover_inner();
        };
        // Spine mode also re-folds any surviving batches during the
        // replay; in eager mode the spines are empty and this is zero.
        let spine_fold_ns: u64 = self
            .stacks
            .values()
            .map(|s| {
                s.spine().iter().map(|b| b.runs() as u64).sum::<u64>()
                    * commit_cost::RECOVERY_RUN_NS
                    + s.spine_bytes() * commit_cost::RECOVERY_BYTE_NS
            })
            .sum();
        let (sequence, redo_ns) = match &self.pending {
            Some(record) if record.sealed => (
                record.sequence,
                commit_cost::RECOVERY_BASE_NS
                    + spine_fold_ns
                    + self
                        .stacks
                        .values()
                        .map(|s| {
                            s.staged_runs() as u64 * commit_cost::RECOVERY_RUN_NS
                                + s.staged_bytes() * commit_cost::RECOVERY_BYTE_NS
                        })
                        .sum::<u64>(),
            ),
            _ => (0, commit_cost::RECOVERY_BASE_NS + spine_fold_ns),
        };
        let start = acct.now_ns();
        let result = self.recover_inner();
        acct.advance(redo_ns);
        let end = acct.now_ns();
        for tid in self.stacks.keys() {
            acct.record_segment(*tid, StallCause::Recovery, sequence, start, end);
            acct.record_window(*tid, start, end);
        }
        result
    }

    fn recover_inner(&mut self) -> Result<RecoveredState, NoValidCheckpoint> {
        if self.spine_cfg.is_some() || self.stacks.values().any(|s| s.spine_batches() > 0) {
            return self.recover_inner_spine();
        }
        match self.pending.clone() {
            Some(record) if record.sealed => {
                // Redo through the parallel apply — the crash matrix
                // recovers after every post-seal crash, so this path is
                // exhaustively exercised against torn commits.
                let workers = Self::default_workers(self.stacks.len());
                self.apply_record_parallel(&record, workers, None);
            }
            Some(_) => {
                // The commit never sealed: discard it wholesale.
                self.pending = None;
                for stack in self.stacks.values_mut() {
                    stack.discard_staging();
                }
            }
            None => {}
        }
        for stack in self.stacks.values_mut() {
            stack.recover_after_crash();
        }
        let regs = self.registers.recover()?;
        self.live_regs.clone_from(&regs);
        Ok(RecoveredState {
            regs,
            sequence: self.registers.committed_sequence,
        })
    }

    /// Spine-mode recovery: a sealed record is redone by re-appending
    /// any staging still tagged with its sequence (a batch-seal crash
    /// leaves some stacks un-appended), staged-ahead or unsealed
    /// buffers are discarded, then every surviving spine is folded
    /// newest-wins into its persistent image and the volatile images
    /// rebuilt — recovery always sees a prefix-closed spine of sealed
    /// batches, so the fold lands byte-identical to eager apply.
    /// Panic-free (`PA-PANIC004`): this whole path is recovery
    /// surface.
    fn recover_inner_spine(&mut self) -> Result<RecoveredState, NoValidCheckpoint> {
        match self.pending.clone() {
            Some(record) if record.sealed => {
                for stack in self.stacks.values_mut() {
                    if stack.staging_sequence() == record.sequence {
                        // The seal was the commit point: redo the
                        // batch append the crash interrupted.
                        stack.seal_to_spine(record.sequence);
                    } else if stack.staging_sequence() > record.sequence {
                        // Staged ahead for a later, never-sealed
                        // sequence: discard.
                        stack.discard_staging();
                    }
                }
                for (tid, regs) in record.staged_regs.iter().enumerate() {
                    self.registers.apply_thread_at(tid, *regs, record.sequence);
                }
                self.registers.set_committed_sequence(record.sequence);
                self.pending = None;
                self.next_sequence = record.sequence + 1;
            }
            Some(_) => {
                // The commit never sealed: discard it wholesale.
                self.pending = None;
                for stack in self.stacks.values_mut() {
                    stack.discard_staging();
                }
            }
            None => {}
        }
        for stack in self.stacks.values_mut() {
            stack.merge_spine();
            stack.recover_after_crash();
        }
        let regs = self.registers.recover()?;
        self.live_regs.clone_from(&regs);
        Ok(RecoveredState {
            regs,
            sequence: self.registers.committed_sequence,
        })
    }

    /// Checks the cross-component sequence invariant: every thread's
    /// stack, every thread's register slot, and the process store
    /// itself agree on one committed sequence. The fault-injection
    /// harness runs this after every recovery.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceSkew`] naming the first disagreeing component.
    pub fn verify_coherent(&self) -> Result<u64, SequenceSkew> {
        let seq = self.registers.committed_sequence;
        for (tid, stack) in &self.stacks {
            if stack.committed_sequence() != seq {
                return Err(SequenceSkew {
                    detail: format!(
                        "thread {tid} stack at sequence {}, process at {seq}",
                        stack.committed_sequence()
                    ),
                });
            }
            // Spine-aware lookup: unmerged batches must form an
            // ascending, prefix-closed run of *committed* sequences —
            // a batch beyond the committed sequence would mean a merge
            // crossed an unsealed batch.
            let mut prev = 0u64;
            for batch in stack.spine() {
                if batch.sequence() <= prev {
                    return Err(SequenceSkew {
                        detail: format!(
                            "thread {tid} spine out of order: batch {} after {prev}",
                            batch.sequence()
                        ),
                    });
                }
                if batch.sequence() > seq {
                    return Err(SequenceSkew {
                        detail: format!(
                            "thread {tid} spine batch {} beyond committed sequence {seq}",
                            batch.sequence()
                        ),
                    });
                }
                prev = batch.sequence();
            }
        }
        if seq > 0 {
            let detailed = self
                .registers
                .recover_detailed()
                .map_err(|_| SequenceSkew {
                    detail: format!("process at sequence {seq} but registers unrecoverable"),
                })?;
            for (tid, (_, reg_seq)) in detailed.iter().enumerate() {
                if *reg_seq != seq {
                    return Err(SequenceSkew {
                        detail: format!(
                            "thread {tid} registers at sequence {reg_seq}, process at {seq}"
                        ),
                    });
                }
            }
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_gemos::crash::CrashPlan;
    use prosper_memsim::addr::VirtAddr;

    fn ranges(n: u64) -> Vec<VirtRange> {
        (0..n)
            .map(|i| {
                let top = 0x7000_0000 + (i + 1) * 0x10_0000;
                VirtRange::new(VirtAddr::new(top - 0x8000), VirtAddr::new(top))
            })
            .collect()
    }

    fn full_runs(p: &PersistentProcess, tids: &[u32]) -> BTreeMap<u32, Vec<CopyRun>> {
        tids.iter()
            .map(|&tid| {
                let r = p.stack(tid).range();
                (
                    tid,
                    vec![CopyRun {
                        start: r.start(),
                        len: r.len(),
                    }],
                )
            })
            .collect()
    }

    #[test]
    fn commit_binds_registers_and_memory() {
        let mut p = PersistentProcess::new(&ranges(2));
        let r0 = p.stack(0).range();
        p.record_store(0, r0.start() + 64, b"thread-zero");
        p.regs_mut(0).rip = 0x1111;
        p.regs_mut(1).rip = 0x2222;
        let runs = full_runs(&p, &[0, 1]);
        p.commit(&runs);

        // Post-commit mutations are lost at the crash.
        p.record_store(0, r0.start() + 64, b"overwrote!!");
        p.regs_mut(0).rip = 0x9999;
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 1);
        assert_eq!(rec.regs[0].rip, 0x1111);
        assert_eq!(rec.regs[1].rip, 0x2222);
        assert_eq!(
            p.stack(0).volatile().read(r0.start() + 64, 11),
            b"thread-zero"
        );
        assert_eq!(p.verify_coherent().unwrap(), 1);
    }

    #[test]
    fn recover_without_commit_fails() {
        let mut p = PersistentProcess::new(&ranges(1));
        p.crash();
        assert!(p.recover().is_err());
    }

    #[test]
    fn repeated_commits_recover_latest() {
        let mut p = PersistentProcess::new(&ranges(1));
        let runs = full_runs(&p, &[0]);
        for seq in 1..=3u64 {
            p.regs_mut(0).gpr[5] = seq * 7;
            p.commit(&runs);
        }
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 3);
        assert_eq!(rec.regs[0].gpr[5], 21);
    }

    #[test]
    #[should_panic(expected = "no runs supplied for thread")]
    fn missing_thread_runs_rejected() {
        let mut p = PersistentProcess::new(&ranges(2));
        let runs = full_runs(&p, &[0]); // thread 1 missing
        p.commit(&runs);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_process_rejected() {
        PersistentProcess::new(&[]);
    }

    /// Sets up a two-thread process with one clean commit at sequence
    /// 1 and distinct per-thread data staged for commit 2.
    fn two_thread_mid_commit_setup() -> (PersistentProcess, BTreeMap<u32, Vec<CopyRun>>) {
        let mut p = PersistentProcess::new(&ranges(2));
        for tid in 0..2u32 {
            let r = p.stack(tid).range();
            p.record_store(tid, r.start() + 32, &[0x10 + tid as u8; 16]);
            p.regs_mut(tid).rip = 0x100 + u64::from(tid);
        }
        let runs = full_runs(&p, &[0, 1]);
        p.commit(&runs);
        for tid in 0..2u32 {
            let r = p.stack(tid).range();
            p.record_store(tid, r.start() + 32, &[0x20 + tid as u8; 16]);
            p.regs_mut(tid).rip = 0x200 + u64::from(tid);
        }
        (p, runs)
    }

    /// Satellite regression: a crash **between two thread-stack
    /// applies** must not recover thread 0 at sequence 2 with thread 1
    /// at sequence 1. Under the pre-two-phase commit (each stack
    /// checkpointed independently) this exact schedule was torn.
    #[test]
    fn crash_between_thread_stack_applies_recovers_one_sequence() {
        let (mut p, runs) = two_thread_mid_commit_setup();
        let err = p
            .commit_with_faults(
                &runs,
                &mut FaultInjector::at_site(CrashSite::PostApplyThread { tid: 0 }),
            )
            .unwrap_err();
        assert_eq!(err.site, CrashSite::PostApplyThread { tid: 0 });
        p.crash();
        let rec = p.recover().unwrap();
        // The seal preceded the crash: recovery redoes the whole
        // commit, landing both stacks and the registers on sequence 2.
        assert_eq!(rec.sequence, 2);
        assert_eq!(p.verify_coherent().unwrap(), 2);
        for tid in 0..2u32 {
            let r = p.stack(tid).range();
            assert_eq!(
                p.stack(tid).volatile().read(r.start() + 32, 16),
                vec![0x20 + tid as u8; 16],
                "thread {tid} recovered the redone commit"
            );
            assert_eq!(rec.regs[tid as usize].rip, 0x200 + u64::from(tid));
        }
    }

    /// Satellite regression: a crash **between the stack applies and
    /// the register apply** must not recover stacks at sequence 2 with
    /// registers at sequence 1 — the torn state the two-step protocol
    /// exists to prevent.
    #[test]
    fn crash_between_stacks_and_registers_recovers_one_sequence() {
        let (mut p, runs) = two_thread_mid_commit_setup();
        let err = p
            .commit_with_faults(
                &runs,
                &mut FaultInjector::at_site(CrashSite::PostApplyPreRegisters),
            )
            .unwrap_err();
        assert_eq!(err.site, CrashSite::PostApplyPreRegisters);
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 2);
        assert_eq!(p.verify_coherent().unwrap(), 2);
        assert_eq!(rec.regs[0].rip, 0x200, "registers redone with the stacks");
        assert_eq!(rec.regs[1].rip, 0x201);
    }

    /// A crash before the seal discards the whole in-flight commit:
    /// everything recovers at the previous sequence.
    #[test]
    fn crash_before_seal_discards_whole_commit() {
        let (mut p, runs) = two_thread_mid_commit_setup();
        for plan in [
            CrashPlan::AtSite(CrashSite::PreStage),
            CrashPlan::AtSite(CrashSite::MidStage {
                tid: 1,
                runs_staged: 1,
            }),
            CrashPlan::AtSite(CrashSite::PreSeal),
        ] {
            let mut inj = FaultInjector::new(plan);
            p.commit_with_faults(&runs, &mut inj).unwrap_err();
            p.crash();
            let rec = p.recover().unwrap();
            assert_eq!(rec.sequence, 1, "pre-seal crash keeps sequence 1");
            assert_eq!(p.verify_coherent().unwrap(), 1);
            for tid in 0..2u32 {
                let r = p.stack(tid).range();
                assert_eq!(
                    p.stack(tid).volatile().read(r.start() + 32, 16),
                    vec![0x10 + tid as u8; 16]
                );
                assert_eq!(rec.regs[tid as usize].rip, 0x100 + u64::from(tid));
            }
            // Rebuild the live state the crash wiped, then retry.
            for tid in 0..2u32 {
                let r = p.stack(tid).range();
                p.record_store(tid, r.start() + 32, &[0x20 + tid as u8; 16]);
                p.regs_mut(tid).rip = 0x200 + u64::from(tid);
            }
        }
        // The interrupted commits retried cleanly.
        p.commit(&runs);
        assert_eq!(p.verify_coherent().unwrap(), 2);
    }

    /// The parallel commit and the serial crash-windowed commit must
    /// land on byte-identical persistent state.
    #[test]
    fn parallel_commit_matches_serial() {
        let build = || {
            let mut p = PersistentProcess::new(&ranges(4));
            for tid in 0..4u32 {
                let r = p.stack(tid).range();
                for k in 0..8u64 {
                    p.record_store(tid, r.start() + k * 512, &[tid as u8 ^ k as u8; 64]);
                }
                p.regs_mut(tid).rip = 0x1000 + u64::from(tid);
                p.regs_mut(tid).gpr[3] = u64::from(tid) * 17;
            }
            p
        };
        let mut serial = build();
        let mut parallel = build();
        let runs = full_runs(&serial, &[0, 1, 2, 3]);
        serial
            .commit_with_faults(&runs, &mut FaultInjector::disabled())
            .expect("a disabled injector never fires");
        parallel.commit_with_workers(&runs, 4);
        assert_eq!(serial.committed_sequence(), parallel.committed_sequence());
        serial.crash();
        parallel.crash();
        let rs = serial.recover().unwrap();
        let rp = parallel.recover().unwrap();
        assert_eq!(rs.sequence, rp.sequence);
        for tid in 0..4u32 {
            let r = serial.stack(tid).range();
            assert_eq!(
                serial.stack(tid).volatile().read(r.start(), 4096),
                parallel.stack(tid).volatile().read(r.start(), 4096),
                "thread {tid} recovered identical bytes"
            );
            assert_eq!(rs.regs[tid as usize], rp.regs[tid as usize]);
        }
        assert_eq!(parallel.verify_coherent().unwrap(), 1);
    }

    /// Commits stay coherent at every worker width, including widths
    /// above the thread count and repeated commits on one process.
    #[test]
    fn commit_coherent_across_worker_counts() {
        let mut p = PersistentProcess::new(&ranges(8));
        let tids: Vec<u32> = (0..8).collect();
        let runs = full_runs(&p, &tids);
        for (i, workers) in [1usize, 2, 3, 8, 64].into_iter().enumerate() {
            for tid in 0..8u32 {
                let r = p.stack(tid).range();
                p.record_store(tid, r.start() + 128, &[i as u8 + 1; 32]);
            }
            p.commit_with_workers(&runs, workers);
            assert_eq!(p.committed_sequence(), i as u64 + 1);
            assert_eq!(p.verify_coherent().unwrap(), i as u64 + 1);
        }
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 5);
        let r = p.stack(7).range();
        assert_eq!(
            p.stack(7).volatile().read(r.start() + 128, 32),
            vec![5u8; 32],
            "last commit's bytes survive the crash"
        );
    }

    /// Double crash: a crash during recovery's redo (modelled as a
    /// second crash+recover without a completed first recovery) still
    /// converges to the committed checkpoint.
    #[test]
    fn repeated_recovery_is_idempotent() {
        let (mut p, runs) = two_thread_mid_commit_setup();
        p.commit_with_faults(
            &runs,
            &mut FaultInjector::at_site(CrashSite::MidApply {
                tid: 0,
                runs_applied: 1,
            }),
        )
        .unwrap_err();
        for _ in 0..3 {
            p.crash();
            let rec = p.recover().unwrap();
            assert_eq!(rec.sequence, 2);
            assert_eq!(p.verify_coherent().unwrap(), 2);
        }
    }

    fn uniform_runs(tids: &[u32], count: usize, len: u64) -> BTreeMap<u32, Vec<CopyRun>> {
        tids.iter()
            .map(|&tid| {
                (
                    tid,
                    (0..count)
                        .map(|k| CopyRun {
                            start: VirtAddr::new(0x7000_0000 + k as u64 * 0x1000),
                            len,
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// Satellite regression (PR 7): the adaptive selector must never
    /// choose a multi-worker configuration whose modelled cost exceeds
    /// serial — the regression BENCH_pr3.json recorded as w=2 running
    /// at 0.85x serial and w=8 at 0.59x when `commit` fanned out
    /// unconditionally.
    #[test]
    fn selector_never_picks_a_modelled_regression() {
        for threads in [1usize, 2, 3, 8, 17] {
            let tids: Vec<u32> = (0..threads as u32).collect();
            for (count, len) in [(0usize, 0u64), (1, 16), (1, 64), (4, 256), (64, 4096)] {
                let runs = uniform_runs(&tids, count, len);
                let serial = PersistentProcess::modeled_commit_ns(&tids, 1, &runs, false);
                for cap in [1usize, 2, 4, 8, 64] {
                    let w = PersistentProcess::argmin_workers(cap, |w| {
                        PersistentProcess::modeled_commit_ns(&tids, w, &runs, false)
                    });
                    let chosen = PersistentProcess::modeled_commit_ns(&tids, w, &runs, false);
                    assert!(
                        chosen <= serial,
                        "threads={threads} count={count} len={len} cap={cap}: \
                         selected w={w} costs {chosen} > serial {serial}"
                    );
                    if threads == 1 || cap == 1 {
                        assert_eq!(w, 1, "no parallelism to exploit");
                    }
                }
            }
            // Tiny commits sit below the spawn break-even: serial wins
            // even with parallelism available.
            let tiny = uniform_runs(&tids, 1, 16);
            let w = PersistentProcess::argmin_workers(8, |w| {
                PersistentProcess::modeled_commit_ns(&tids, w, &tiny, false)
            });
            assert_eq!(w, 1, "threads={threads}: tiny commit must stay serial");
        }
    }

    /// Satellite regression (PR 7): the stage phase covers only
    /// staging work. Coordinator bookkeeping — staging the register
    /// file into the commit record — is charged to the seal phase, in
    /// the ledger and in the cost model alike.
    #[test]
    fn stage_phase_excludes_coordinator_bookkeeping() {
        let mut p = PersistentProcess::new(&ranges(3));
        let tids: Vec<u32> = vec![0, 1, 2];
        for &tid in &tids {
            let r = p.stack(tid).range();
            p.record_store(tid, r.start() + 64, &[0x5a; 32]);
        }
        let runs = full_runs(&p, &tids);
        let acct = StallAccountant::new_virtual();
        p.commit_attributed(&runs, 1, None, Some(&acct));
        let snap = acct.snapshot();
        snap.verify_conservation().unwrap();
        let expected_stage = PersistentProcess::stolen_phase_cost(&tids, 1, |tid| {
            PersistentProcess::runs_cost(
                &runs[&tid],
                commit_cost::STAGE_RUN_NS,
                commit_cost::STAGE_BYTE_NS,
            )
        });
        let expected_seal =
            commit_cost::SEAL_NS + tids.len() as u64 * commit_cost::BOOKKEEP_SLOT_NS;
        for &tid in &tids {
            let of_cause = |cause: StallCause| -> u64 {
                snap.segments
                    .iter()
                    .filter(|s| s.tid == tid && s.cause == cause)
                    .map(telemetry::StallSegment::duration_ns)
                    .sum()
            };
            assert_eq!(
                of_cause(StallCause::Stage),
                expected_stage,
                "thread {tid}: stage segment must be staging work only"
            );
            assert_eq!(
                of_cause(StallCause::Seal),
                expected_seal,
                "thread {tid}: bookkeeping belongs to the seal segment"
            );
        }
    }

    /// The pipelined burst must land byte-identical persistent state
    /// to the same batches committed one by one, at every worker
    /// width.
    #[test]
    fn pipelined_burst_matches_sequential_commits() {
        for workers in [1usize, 2, 4] {
            let build = || {
                let mut p = PersistentProcess::new(&ranges(4));
                for tid in 0..4u32 {
                    let r = p.stack(tid).range();
                    for k in 0..12u64 {
                        p.record_store(tid, r.start() + k * 256, &[tid as u8 + k as u8; 32]);
                    }
                    p.regs_mut(tid).rip = 0x4000 + u64::from(tid);
                }
                p
            };
            // Batch i covers a distinct slice of each stack.
            let mut sequential = build();
            let mut pipelined = build();
            let batches: Vec<BTreeMap<u32, Vec<CopyRun>>> = (0..3u64)
                .map(|i| {
                    (0..4u32)
                        .map(|tid| {
                            let r = sequential.stack(tid).range();
                            (
                                tid,
                                vec![CopyRun {
                                    start: r.start() + i * 1024,
                                    len: 1024,
                                }],
                            )
                        })
                        .collect()
                })
                .collect();
            for batch in &batches {
                sequential.commit_with_workers(batch, workers);
            }
            pipelined.commit_pipelined_with_workers(&batches, workers);
            assert_eq!(
                sequential.committed_sequence(),
                pipelined.committed_sequence()
            );
            sequential.crash();
            pipelined.crash();
            let rs = sequential.recover().unwrap();
            let rp = pipelined.recover().unwrap();
            assert_eq!(rs.sequence, rp.sequence);
            assert_eq!(pipelined.verify_coherent().unwrap(), 3);
            for tid in 0..4u32 {
                let r = sequential.stack(tid).range();
                assert_eq!(
                    sequential.stack(tid).volatile().read(r.start(), 4096),
                    pipelined.stack(tid).volatile().read(r.start(), 4096),
                    "workers={workers} thread {tid}: identical recovered bytes"
                );
                assert_eq!(rs.regs[tid as usize], rp.regs[tid as usize]);
            }
        }
    }

    /// The serial pipelined probe stream shows exactly the legal
    /// overlap: stage(N+1) after seal(N) but before retire(N), and
    /// seal(N+1) only after every apply(N).
    #[test]
    fn pipelined_probe_stream_overlaps_legally() {
        let mut p = PersistentProcess::new(&ranges(2));
        for tid in 0..2u32 {
            let r = p.stack(tid).range();
            p.record_store(tid, r.start() + 16, &[7; 8]);
        }
        let batches: Vec<BTreeMap<u32, Vec<CopyRun>>> =
            (0..2).map(|_| full_runs(&p, &[0, 1])).collect();
        let probe = CommitProbe::new();
        p.commit_pipelined_attributed(&batches, 1, Some(&probe), None);
        let events = probe.events();
        use CommitProbeEvent as E;
        assert_eq!(
            events,
            vec![
                E::StageThread {
                    tid: 0,
                    sequence: 1
                },
                E::StageThread {
                    tid: 1,
                    sequence: 1
                },
                E::Seal { sequence: 1 },
                E::ApplyThread {
                    tid: 0,
                    sequence: 1
                },
                E::StageThread {
                    tid: 0,
                    sequence: 2
                },
                E::ApplyThread {
                    tid: 1,
                    sequence: 1
                },
                E::StageThread {
                    tid: 1,
                    sequence: 2
                },
                E::Retire { sequence: 1 },
                E::Seal { sequence: 2 },
                E::ApplyThread {
                    tid: 0,
                    sequence: 2
                },
                E::ApplyThread {
                    tid: 1,
                    sequence: 2
                },
                E::Retire { sequence: 2 },
            ],
            "stage(2) interleaves apply(1) — after seal(1), before retire(1)"
        );
        // At any width the sharpened invariant holds on the stream.
        let mut p4 = PersistentProcess::new(&ranges(4));
        let batches4: Vec<BTreeMap<u32, Vec<CopyRun>>> =
            (0..3).map(|_| full_runs(&p4, &[0, 1, 2, 3])).collect();
        let probe4 = CommitProbe::new();
        p4.commit_pipelined_attributed(&batches4, 4, Some(&probe4), None);
        let ev4 = probe4.events();
        let pos_seal = |seq: u64| {
            ev4.iter()
                .position(|e| *e == E::Seal { sequence: seq })
                .unwrap()
        };
        for seq in 2..=3u64 {
            let seal_prior = pos_seal(seq - 1);
            let seal_this = pos_seal(seq);
            for (i, e) in ev4.iter().enumerate() {
                if let E::StageThread { sequence, .. } = e {
                    if *sequence == seq {
                        assert!(i > seal_prior, "stage({seq}) before seal({})", seq - 1);
                    }
                }
                if let E::ApplyThread { sequence, .. } = e {
                    if *sequence == seq - 1 {
                        assert!(
                            i < seal_this,
                            "seal({seq}) before apply({}) drained",
                            seq - 1
                        );
                    }
                }
            }
        }
    }

    /// Exhaustive sweep of the pipelined pair's crash windows: from
    /// any site — including every `MidPipelineStage` inside the
    /// overlap — recovery lands on exactly N or N+1 (decided by how
    /// many seals went durable), stays coherent, and the stall ledger
    /// still conserves.
    #[test]
    fn pipelined_pair_crash_sweep_lands_on_n_or_n_plus_one() {
        let base = || {
            let mut p = PersistentProcess::new(&ranges(2));
            for tid in 0..2u32 {
                let r = p.stack(tid).range();
                p.record_store(tid, r.start() + 0x100, &[0xaa; 16]);
            }
            let prior = full_runs(&p, &[0, 1]);
            p.commit(&prior);
            // Distinct per-sequence payloads at disjoint offsets.
            for tid in 0..2u32 {
                let r = p.stack(tid).range();
                p.record_store(tid, r.start() + 0x200, &[0xbb; 16]);
                p.record_store(tid, r.start() + 0x400, &[0xcc; 16]);
            }
            let runs_n: BTreeMap<u32, Vec<CopyRun>> = (0..2u32)
                .map(|tid| {
                    let r = p.stack(tid).range();
                    (
                        tid,
                        vec![
                            CopyRun {
                                start: r.start() + 0x200,
                                len: 16,
                            },
                            CopyRun {
                                start: r.start() + 0x210,
                                len: 16,
                            },
                        ],
                    )
                })
                .collect();
            let runs_n1: BTreeMap<u32, Vec<CopyRun>> = (0..2u32)
                .map(|tid| {
                    let r = p.stack(tid).range();
                    (
                        tid,
                        vec![
                            CopyRun {
                                start: r.start() + 0x400,
                                len: 16,
                            },
                            CopyRun {
                                start: r.start() + 0x410,
                                len: 16,
                            },
                        ],
                    )
                })
                .collect();
            (p, runs_n, runs_n1)
        };
        // Enumerate every crash window of the pair.
        let (mut p, runs_n, runs_n1) = base();
        let mut rec_inj = FaultInjector::disabled();
        p.commit_pipelined_pair_with_faults(&runs_n, &runs_n1, &mut rec_inj)
            .unwrap();
        assert_eq!(p.verify_coherent().unwrap(), 3, "clean pair lands on N+1");
        let sites: Vec<CrashSite> = rec_inj.crossed().to_vec();
        assert!(
            sites
                .iter()
                .any(|s| matches!(s, CrashSite::MidPipelineStage { .. })),
            "the pair schedule must cross the overlap window"
        );
        for (index, site) in sites.iter().enumerate() {
            let (mut p, runs_n, runs_n1) = base();
            let acct = StallAccountant::new_virtual();
            let mut inj = FaultInjector::at_index(index as u64);
            let err = p
                .commit_pipelined_pair_with_faults_attributed(
                    &runs_n,
                    &runs_n1,
                    &mut inj,
                    Some(&acct),
                )
                .unwrap_err();
            assert_eq!(err.site, *site, "deterministic site order");
            let seals = inj
                .crossed()
                .iter()
                .filter(|s| **s == CrashSite::PostSeal)
                .count() as u64;
            let expected = 1 + seals; // pre-pair sequence was 1
            p.crash();
            let rec = p.recover_attributed(Some(&acct)).unwrap();
            assert_eq!(
                rec.sequence, expected,
                "site {site}: recovery must land on exactly N or N+1"
            );
            assert!(
                (2..=3).contains(&expected) || expected == 1,
                "expected sequence in the pair's range"
            );
            assert_eq!(p.verify_coherent().unwrap(), expected);
            // Payload visibility follows the recovered sequence.
            for tid in 0..2u32 {
                let r = p.stack(tid).range();
                let has_n = p.stack(tid).volatile().read(r.start() + 0x200, 16) == vec![0xbb; 16];
                let has_n1 = p.stack(tid).volatile().read(r.start() + 0x400, 16) == vec![0xcc; 16];
                assert_eq!(has_n, expected >= 2, "site {site}: N payload");
                assert_eq!(has_n1, expected >= 3, "site {site}: N+1 payload");
            }
            acct.snapshot()
                .verify_conservation()
                .unwrap_or_else(|e| panic!("site {site}: torn pair must conserve: {e}"));
        }
    }

    /// Drives `commits` identical store/commit rounds through a spine
    /// process and an eager twin, returning both.
    fn twin_processes(commits: u64, cfg: SpineConfig) -> (PersistentProcess, PersistentProcess) {
        let mut spine = PersistentProcess::new_with_spine(&ranges(2), cfg);
        let mut eager = PersistentProcess::new(&ranges(2));
        for seq in 0..commits {
            for p in [&mut spine, &mut eager] {
                for tid in 0..2u32 {
                    let r = p.stack(tid).range();
                    // Hot word rewritten every round + one moving cold run.
                    p.record_store(tid, r.start() + 0x100, &seq.to_le_bytes());
                    p.record_store(tid, r.start() + 0x800 + seq * 32, &[seq as u8; 16]);
                    p.regs_mut(tid).rip = 0x1000 + seq;
                }
                let runs: BTreeMap<u32, Vec<CopyRun>> = (0..2u32)
                    .map(|tid| {
                        let r = p.stack(tid).range();
                        (
                            tid,
                            vec![
                                CopyRun {
                                    start: r.start() + 0x100,
                                    len: 8,
                                },
                                CopyRun {
                                    start: r.start() + 0x800 + seq * 32,
                                    len: 16,
                                },
                            ],
                        )
                    })
                    .collect();
                p.commit(&runs);
            }
        }
        (spine, eager)
    }

    #[test]
    fn spine_commit_keeps_apply_copy_off_critical_path() {
        // A lazy policy never merges during the run: every commit's
        // phase two is an O(1) batch append, and all batches sit on
        // the spine until explicitly drained.
        let (mut spine, eager) = twin_processes(4, SpineConfig::lazy(64));
        assert_eq!(spine.committed_sequence(), eager.committed_sequence());
        assert_eq!(
            spine.spine_batches(),
            2 * 4,
            "one batch per stack per commit"
        );
        // The persistent images lag until the drain...
        let stats = spine.merge_all_spines();
        assert_eq!(stats.batches_folded, 8);
        assert!(
            stats.written_bytes < stats.input_bytes,
            "the repeated hot word must dedup in the fold"
        );
        // ...and then match eager apply byte for byte.
        for tid in 0..2u32 {
            assert!(
                spine
                    .stack(tid)
                    .persistent()
                    .matches(eager.stack(tid).persistent(), spine.stack(tid).range()),
                "thread {tid}: spine fold differs from eager apply"
            );
        }
    }

    #[test]
    fn spine_policy_merges_during_commit_and_stays_coherent() {
        let (mut spine, eager) = twin_processes(6, SpineConfig::merge_always());
        // merge_always folds after every commit, so at most the
        // freshest batch per stack survives — here none, because the
        // policy fires while the spine holds two.
        assert!(
            spine.spine_batches() <= 2,
            "merge_always must keep the spine short, got {}",
            spine.spine_batches()
        );
        spine.merge_all_spines();
        for tid in 0..2u32 {
            assert!(
                spine
                    .stack(tid)
                    .persistent()
                    .matches(eager.stack(tid).persistent(), spine.stack(tid).range()),
                "thread {tid}: spine fold differs from eager apply"
            );
        }
        assert_eq!(spine.verify_coherent().unwrap(), 6);
    }

    #[test]
    fn spine_recovery_folds_to_eager_image() {
        let (mut spine, eager) = twin_processes(5, SpineConfig::lazy(64));
        spine.crash();
        let rec = spine.recover().unwrap();
        assert_eq!(rec.sequence, 5);
        assert_eq!(spine.verify_coherent().unwrap(), 5);
        assert_eq!(spine.spine_batches(), 0, "recovery folds the whole spine");
        for tid in 0..2u32 {
            assert!(
                spine
                    .stack(tid)
                    .volatile()
                    .matches(eager.stack(tid).persistent(), spine.stack(tid).range()),
                "thread {tid}: recovered image differs from eager apply"
            );
            assert_eq!(spine.regs(tid).rip, 0x1000 + 4);
        }
    }

    #[test]
    fn spine_crash_sites_recover_on_the_committed_sequence() {
        // Walk every crash site the spine-mode fault-injected commit
        // exposes; all spine sites are post-seal, so recovery must
        // land on the sealed sequence with the full payload visible.
        let cfg = SpineConfig::merge_always();
        let mut probe_p = PersistentProcess::new_with_spine(&ranges(2), cfg);
        // Two warm-up commits put batches on the spine so the third
        // commit's merge policy fires and MidMerge/MergeRetire appear.
        let sites = {
            let mut inj = FaultInjector::new(CrashPlan::Record);
            for round in 0..3u64 {
                for tid in 0..2u32 {
                    let r = probe_p.stack(tid).range();
                    probe_p.record_store(tid, r.start() + 0x100, &[round as u8; 8]);
                }
                let runs = partial_runs(&probe_p, 0x100, 8);
                probe_p
                    .commit_with_faults(&runs, &mut inj)
                    .expect("record mode never fires");
            }
            inj.crossed().to_vec()
        };
        assert!(
            sites
                .iter()
                .any(|s| matches!(s, CrashSite::BatchSeal { .. })),
            "spine commit must cross a batch-seal site"
        );
        assert!(
            sites
                .iter()
                .any(|s| matches!(s, CrashSite::MidMerge { .. })),
            "merge_always must cross a mid-merge site"
        );
        assert!(
            sites
                .iter()
                .any(|s| matches!(s, CrashSite::MergeRetire { .. })),
            "merge_always must cross a merge-retire site"
        );
        for (idx, site) in sites.iter().enumerate() {
            let mut p = PersistentProcess::new_with_spine(&ranges(2), cfg);
            let mut inj = FaultInjector::new(CrashPlan::AtIndex(idx as u64));
            let mut expected = 0u64;
            let mut crashed = None;
            for round in 0..3u64 {
                for tid in 0..2u32 {
                    let r = p.stack(tid).range();
                    p.record_store(tid, r.start() + 0x100, &[round as u8; 8]);
                }
                let runs = partial_runs(&p, 0x100, 8);
                match p.commit_with_faults(&runs, &mut inj) {
                    Ok(()) => expected = round + 1,
                    Err(c) => {
                        if c.site.is_post_seal() {
                            expected = round + 1;
                        }
                        crashed = Some(c.site);
                        break;
                    }
                }
            }
            let crashed = crashed.unwrap_or_else(|| panic!("site {idx} ({site}) never fired"));
            assert_eq!(crashed, *site, "enumeration must be deterministic");
            p.crash();
            if expected == 0 {
                assert!(p.recover().is_err(), "site {site}: nothing to recover");
                continue;
            }
            let rec = p.recover().unwrap();
            assert_eq!(
                rec.sequence, expected,
                "site {site}: wrong recovered sequence"
            );
            assert_eq!(p.verify_coherent().unwrap(), expected);
            if expected > 0 {
                for tid in 0..2u32 {
                    let r = p.stack(tid).range();
                    assert_eq!(
                        p.stack(tid).volatile().read(r.start() + 0x100, 8),
                        vec![(expected - 1) as u8; 8],
                        "site {site}: payload must match sequence {expected}"
                    );
                }
            }
        }
    }

    fn partial_runs(p: &PersistentProcess, offset: u64, len: u64) -> BTreeMap<u32, Vec<CopyRun>> {
        (0..p.threads() as u32)
            .map(|tid| {
                let r = p.stack(tid).range();
                (
                    tid,
                    vec![CopyRun {
                        start: r.start() + offset,
                        len,
                    }],
                )
            })
            .collect()
    }

    #[test]
    fn spine_pipelined_burst_degenerates_to_sequential_commits() {
        let mut spine = PersistentProcess::new_with_spine(&ranges(2), SpineConfig::lazy(64));
        let mut eager = PersistentProcess::new(&ranges(2));
        for p in [&mut spine, &mut eager] {
            let mut batches = Vec::new();
            for seq in 0..3u64 {
                for tid in 0..2u32 {
                    let r = p.stack(tid).range();
                    p.record_store(tid, r.start() + 0x40 * (seq + 1), &[seq as u8 + 1; 8]);
                }
                batches.push(
                    (0..2u32)
                        .map(|tid| {
                            let r = p.stack(tid).range();
                            (
                                tid,
                                vec![CopyRun {
                                    start: r.start() + 0x40 * (seq + 1),
                                    len: 8,
                                }],
                            )
                        })
                        .collect::<BTreeMap<_, _>>(),
                );
            }
            p.commit_pipelined(&batches);
        }
        assert_eq!(spine.committed_sequence(), 3);
        assert_eq!(eager.committed_sequence(), 3);
        spine.merge_all_spines();
        for tid in 0..2u32 {
            assert!(
                spine
                    .stack(tid)
                    .persistent()
                    .matches(eager.stack(tid).persistent(), spine.stack(tid).range()),
                "thread {tid}: pipelined spine burst differs from eager"
            );
        }
    }

    #[test]
    fn spine_commit_attributes_merge_stalls() {
        let acct = StallAccountant::new_virtual();
        let mut p = PersistentProcess::new_with_spine(&ranges(2), SpineConfig::merge_always());
        for round in 0..2u64 {
            for tid in 0..2u32 {
                let r = p.stack(tid).range();
                p.record_store(tid, r.start() + 0x100, &[round as u8; 8]);
            }
            let runs = partial_runs(&p, 0x100, 8);
            p.commit_attributed(&runs, 1, None, Some(&acct));
        }
        let snap = acct.snapshot();
        snap.verify_conservation().unwrap();
        assert!(
            snap.segments.iter().any(|s| s.cause == StallCause::Merge),
            "merge_always under attribution must record Merge segments"
        );
    }
}
