//! Whole-process recovery: registers + per-thread persistent stacks
//! under one commit boundary.
//!
//! The paper's end-to-end solution checkpoints *all* process state
//! (Section III-D: "The GemOS baseline checkpoint mechanism captures
//! all process states (including the stack) in an incremental manner
//! and stores them in the NVM"). [`PersistentProcess`] is that
//! facade: one `commit` captures every thread's registers and stack
//! runs atomically with respect to recovery — after a crash, the
//! recovered registers and memory always belong to the *same*
//! checkpoint.

use std::collections::BTreeMap;

use prosper_gemos::process::RegisterFile;
use prosper_gemos::restore::{NoValidCheckpoint, ProcessCheckpointStore};
use prosper_memsim::addr::VirtRange;

use crate::bitmap::CopyRun;
use crate::persist::PersistentStack;

/// A process whose registers and stacks are persisted together.
#[derive(Debug)]
pub struct PersistentProcess {
    registers: ProcessCheckpointStore,
    stacks: BTreeMap<u32, PersistentStack>,
    /// Live register state per thread (what a checkpoint captures).
    live_regs: Vec<RegisterFile>,
}

/// A recovered execution state.
#[derive(Debug)]
pub struct RecoveredState {
    /// Per-thread registers as of the recovered checkpoint.
    pub regs: Vec<RegisterFile>,
    /// Sequence number of the recovered checkpoint.
    pub sequence: u64,
}

impl PersistentProcess {
    /// Creates a persistent process with `threads` threads whose
    /// stacks occupy the given ranges.
    ///
    /// # Panics
    ///
    /// Panics if `stack_ranges` is empty.
    pub fn new(stack_ranges: &[VirtRange]) -> Self {
        assert!(
            !stack_ranges.is_empty(),
            "process needs at least one thread"
        );
        Self {
            registers: ProcessCheckpointStore::new(stack_ranges.len()),
            stacks: stack_ranges
                .iter()
                .enumerate()
                .map(|(tid, r)| (tid as u32, PersistentStack::new(tid as u32, *r)))
                .collect(),
            live_regs: vec![RegisterFile::default(); stack_ranges.len()],
        }
    }

    /// Mutable access to thread `tid`'s live registers.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    pub fn regs_mut(&mut self, tid: u32) -> &mut RegisterFile {
        &mut self.live_regs[tid as usize]
    }

    /// Records a store into thread `tid`'s stack data plane.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist or the store leaves its
    /// stack range.
    pub fn record_store(&mut self, tid: u32, addr: prosper_memsim::addr::VirtAddr, bytes: &[u8]) {
        self.stacks
            .get_mut(&tid)
            .unwrap_or_else(|| panic!("thread {tid} not registered"))
            .record_store(addr, bytes);
    }

    /// The persistent stack of thread `tid`.
    pub fn stack(&self, tid: u32) -> &PersistentStack {
        &self.stacks[&tid]
    }

    /// Commits one whole-process checkpoint: every thread's stack runs
    /// (from its tracker's bitmap inspection) plus every thread's
    /// registers.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit(&mut self, runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>) {
        for (tid, stack) in &mut self.stacks {
            let runs = runs_per_thread
                .get(tid)
                .unwrap_or_else(|| panic!("no runs supplied for thread {tid}"));
            stack.checkpoint(runs);
        }
        self.registers.checkpoint(&self.live_regs);
    }

    /// Simulates a power failure: all live registers and volatile
    /// stack images are lost.
    pub fn crash(&mut self) {
        for stack in self.stacks.values_mut() {
            stack.crash();
        }
        self.live_regs = vec![RegisterFile::default(); self.live_regs.len()];
    }

    /// Recovers the process: every stack replays/discards its staging
    /// buffer and the newest valid register checkpoint is loaded.
    ///
    /// # Errors
    ///
    /// Returns [`NoValidCheckpoint`] if no complete checkpoint exists.
    pub fn recover(&mut self) -> Result<RecoveredState, NoValidCheckpoint> {
        for stack in self.stacks.values_mut() {
            stack.recover_after_crash();
        }
        let regs = self.registers.recover()?;
        self.live_regs.clone_from(&regs);
        Ok(RecoveredState {
            regs,
            sequence: self.registers.committed_sequence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_memsim::addr::VirtAddr;

    fn ranges(n: u64) -> Vec<VirtRange> {
        (0..n)
            .map(|i| {
                let top = 0x7000_0000 + (i + 1) * 0x10_0000;
                VirtRange::new(VirtAddr::new(top - 0x8000), VirtAddr::new(top))
            })
            .collect()
    }

    fn full_runs(p: &PersistentProcess, tids: &[u32]) -> BTreeMap<u32, Vec<CopyRun>> {
        tids.iter()
            .map(|&tid| {
                let r = p.stack(tid).range();
                (
                    tid,
                    vec![CopyRun {
                        start: r.start(),
                        len: r.len(),
                    }],
                )
            })
            .collect()
    }

    #[test]
    fn commit_binds_registers_and_memory() {
        let mut p = PersistentProcess::new(&ranges(2));
        let r0 = p.stack(0).range();
        p.record_store(0, r0.start() + 64, b"thread-zero");
        p.regs_mut(0).rip = 0x1111;
        p.regs_mut(1).rip = 0x2222;
        let runs = full_runs(&p, &[0, 1]);
        p.commit(&runs);

        // Post-commit mutations are lost at the crash.
        p.record_store(0, r0.start() + 64, b"overwrote!!");
        p.regs_mut(0).rip = 0x9999;
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 1);
        assert_eq!(rec.regs[0].rip, 0x1111);
        assert_eq!(rec.regs[1].rip, 0x2222);
        assert_eq!(
            p.stack(0).volatile().read(r0.start() + 64, 11),
            b"thread-zero"
        );
    }

    #[test]
    fn recover_without_commit_fails() {
        let mut p = PersistentProcess::new(&ranges(1));
        p.crash();
        assert!(p.recover().is_err());
    }

    #[test]
    fn repeated_commits_recover_latest() {
        let mut p = PersistentProcess::new(&ranges(1));
        let runs = full_runs(&p, &[0]);
        for seq in 1..=3u64 {
            p.regs_mut(0).gpr[5] = seq * 7;
            p.commit(&runs);
        }
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 3);
        assert_eq!(rec.regs[0].gpr[5], 21);
    }

    #[test]
    #[should_panic(expected = "no runs supplied for thread")]
    fn missing_thread_runs_rejected() {
        let mut p = PersistentProcess::new(&ranges(2));
        let runs = full_runs(&p, &[0]); // thread 1 missing
        p.commit(&runs);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_process_rejected() {
        PersistentProcess::new(&[]);
    }
}
