//! Whole-process recovery: registers + per-thread persistent stacks
//! under one commit boundary.
//!
//! The paper's end-to-end solution checkpoints *all* process state
//! (Section III-D: "The GemOS baseline checkpoint mechanism captures
//! all process states (including the stack) in an incremental manner
//! and stores them in the NVM"). [`PersistentProcess`] is that
//! facade: one `commit` captures every thread's registers and stack
//! runs atomically with respect to recovery — after a crash, the
//! recovered registers and memory always belong to the *same*
//! checkpoint.
//!
//! # The two-phase whole-process commit
//!
//! A naive commit that applies each thread's stack checkpoint and then
//! the register checkpoint independently is torn by a mid-commit
//! crash: thread 0's stack recovers at sequence N+1 while thread 1's
//! stack — or the registers — recover at N. The protocol here extends
//! the paper's two-step stack commit (Section III-B, Figure 6) to the
//! whole process:
//!
//! 1. **Stage**: every thread's dirty runs are copied into its NVM
//!    staging buffer, and the register file is staged into a process
//!    commit record — nothing is applied yet.
//! 2. **Seal**: the process commit record is sealed with one durable
//!    write. This is the commit point: a crash before it discards all
//!    staging (recovery sees sequence N), a crash after it redoes the
//!    apply from the staged state (recovery sees N+1). Either way all
//!    threads and the registers land on the *same* sequence.
//! 3. **Apply**: each staging buffer is applied to its persistent
//!    stack, then every thread's register slot is written; finally the
//!    record is retired.
//!
//! Every step boundary is a named [`CrashSite`] observed through a
//! [`FaultInjector`], so the exhaustive crash-point sweep in
//! [`crate::faultinject`] can fire a simulated power failure at each
//! one and assert the invariants above.
//!
//! # Parallel staging and apply
//!
//! Stage and apply touch strictly per-thread state (each thread's
//! staging buffer and persistent stack), so [`PersistentProcess::commit`]
//! fans them out over `std::thread::scope` workers; the **seal stays
//! the single serialization point** — one durable write on the
//! coordinating thread — so crash atomicity is unchanged. Recovery's
//! redo of a sealed record takes the same parallel apply path, which
//! means the exhaustive crash matrix exercises it after every
//! post-seal crash. Deterministic fault injection needs a fixed
//! boundary order, so [`PersistentProcess::commit_with_faults`] keeps
//! the serial schedule with its crash windows; the
//! `parallel_commit_matches_serial` test pins the two paths to the
//! same persistent state.

use std::collections::BTreeMap;

use prosper_telemetry as telemetry;
use prosper_telemetry::{StallAccountant, StallCause};

use prosper_gemos::crash::{CrashInjected, CrashSite, FaultInjector};
use prosper_gemos::process::RegisterFile;
use prosper_gemos::restore::{NoValidCheckpoint, ProcessCheckpointStore};
use prosper_memsim::addr::VirtRange;

use crate::bitmap::CopyRun;
use crate::persist::PersistentStack;

/// The NVM process commit record: the staged register file plus the
/// seal marker whose single durable write is the whole-process commit
/// point.
#[derive(Clone, Debug)]
struct ProcessCommitRecord {
    /// Sequence this commit will carry once sealed.
    sequence: u64,
    /// Registers of every thread as staged in phase one.
    staged_regs: Vec<RegisterFile>,
    /// Written last in phase one; a crash before this leaves the whole
    /// commit discardable.
    sealed: bool,
}

/// One protocol-boundary event recorded by a [`CommitProbe`] during a
/// parallel commit. The event stream is the observable ordering of the
/// stage → seal → apply protocol: `prosper-analysis` checks it against
/// the same happens-before invariants its interleaving explorer
/// enforces on the protocol model (all stages before the seal, the
/// seal before all applies, no overlap across sequence numbers).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommitProbeEvent {
    /// Worker finished staging thread `tid`'s runs for `sequence`.
    StageThread {
        /// Thread whose runs were staged.
        tid: u32,
        /// Sequence the commit will carry.
        sequence: u64,
    },
    /// The coordinator sealed the process commit record — the single
    /// serial commit point.
    Seal {
        /// Sequence the seal committed.
        sequence: u64,
    },
    /// Worker finished applying thread `tid`'s staging buffer.
    ApplyThread {
        /// Thread whose staging buffer was applied.
        tid: u32,
        /// Sequence being applied.
        sequence: u64,
    },
    /// The commit record was retired; the commit is complete.
    Retire {
        /// Sequence that completed.
        sequence: u64,
    },
}

/// Collects [`CommitProbeEvent`]s from the parallel commit path.
///
/// Shared by reference with the scoped stage/apply workers, so the
/// recorded order is the *actual* cross-thread order of protocol
/// boundaries, not a reconstruction.
#[derive(Debug, Default)]
pub struct CommitProbe {
    log: std::sync::Mutex<Vec<CommitProbeEvent>>,
}

impl CommitProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, ev: CommitProbeEvent) {
        if let Ok(mut log) = self.log.lock() {
            log.push(ev);
        }
    }

    /// The events recorded so far, in observation order.
    pub fn events(&self) -> Vec<CommitProbeEvent> {
        self.log.lock().map(|log| log.clone()).unwrap_or_default()
    }
}

/// Deterministic virtual-time cost model for the attributed commit
/// path (see `prosper_telemetry::attribution`).
///
/// Under a virtual-clock [`StallAccountant`] the coordinator advances
/// the clock by these modelled costs — computed from the same
/// contiguous chunk assignment `for_each_stack` uses — so attributed
/// timelines are byte-identical across runs and still sensitive to
/// the worker count. Under a wall-clock accountant `advance` is a
/// no-op and real elapsed time is measured instead. Units are virtual
/// ns; the values are loosely calibrated to the simulator's cycle
/// costs — they only need to be *stable*, not accurate, because the
/// conservation invariant holds under any clock.
pub mod commit_cost {
    /// Fixed per-phase dispatch overhead.
    pub const PHASE_BASE_NS: u64 = 100;
    /// Staging: per staged run.
    pub const STAGE_RUN_NS: u64 = 60;
    /// Staging: per staged byte.
    pub const STAGE_BYTE_NS: u64 = 1;
    /// The single durable seal write.
    pub const SEAL_NS: u64 = 250;
    /// Apply: per staged run.
    pub const APPLY_RUN_NS: u64 = 40;
    /// Apply: per staged byte.
    pub const APPLY_BYTE_NS: u64 = 1;
    /// Apply: per register slot (the serial tail).
    pub const REGISTER_SLOT_NS: u64 = 30;
    /// Recovery redo: per staged run replayed.
    pub const RECOVERY_RUN_NS: u64 = 50;
    /// Recovery redo: per staged byte replayed.
    pub const RECOVERY_BYTE_NS: u64 = 1;
    /// Recovery fixed overhead (record scan + register restore).
    pub const RECOVERY_BASE_NS: u64 = 400;
}

/// Records cause-tagged phase boundaries for the serial fault-injected
/// commit. The scribe closes the in-progress phase when a crash window
/// fires, so even a torn commit's stall window is exactly tiled by its
/// segments — attribution survives injected crashes by construction.
struct FaultScribe<'a> {
    acct: &'a StallAccountant,
    tids: Vec<u32>,
    sequence: u64,
    window_start: u64,
    phase_start: u64,
    cause: StallCause,
}

impl<'a> FaultScribe<'a> {
    fn new(acct: &'a StallAccountant, tids: Vec<u32>, sequence: u64) -> Self {
        let now = acct.now_ns();
        FaultScribe {
            acct,
            tids,
            sequence,
            window_start: now,
            phase_start: now,
            cause: StallCause::Stage,
        }
    }

    /// Advances the virtual clock by one unit of modelled work.
    fn work(&self, ns: u64) {
        self.acct.advance(ns);
    }

    /// Closes the current phase at `now` and opens `cause`.
    fn next_phase(&mut self, cause: StallCause) {
        self.close_phase();
        self.cause = cause;
    }

    fn close_phase(&mut self) {
        let now = self.acct.now_ns();
        for &tid in &self.tids {
            self.acct
                .record_segment(tid, self.cause, self.sequence, self.phase_start, now);
        }
        self.phase_start = now;
    }

    /// Closes the final (possibly crash-interrupted) phase and the
    /// per-thread stall windows.
    fn finish(mut self) {
        self.close_phase();
        for &tid in &self.tids {
            self.acct
                .record_window(tid, self.window_start, self.phase_start);
        }
    }
}

/// A process whose registers and stacks are persisted together.
#[derive(Debug)]
pub struct PersistentProcess {
    registers: ProcessCheckpointStore,
    stacks: BTreeMap<u32, PersistentStack>,
    /// Live register state per thread (what a checkpoint captures).
    live_regs: Vec<RegisterFile>,
    /// NVM: the in-flight commit record, if a commit was interrupted.
    pending: Option<ProcessCommitRecord>,
    /// NVM: sequence number the next commit will use.
    next_sequence: u64,
}

/// A recovered execution state.
#[derive(Debug)]
pub struct RecoveredState {
    /// Per-thread registers as of the recovered checkpoint.
    pub regs: Vec<RegisterFile>,
    /// Sequence number of the recovered checkpoint.
    pub sequence: u64,
}

/// A sequence-coherence violation found by
/// [`PersistentProcess::verify_coherent`]: two parts of the recovered
/// state belong to different checkpoints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SequenceSkew {
    /// Human-readable description of the skewed component.
    pub detail: String,
}

impl std::fmt::Display for SequenceSkew {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sequence skew: {}", self.detail)
    }
}

impl std::error::Error for SequenceSkew {}

/// Fires the injector at `site`, aborting the interrupted operation
/// exactly as a power failure would: persistent state is left as-is,
/// the in-flight operation never continues.
macro_rules! crash_window {
    ($inj:expr, $site:expr) => {
        if $inj.observe($site) {
            return Err(CrashInjected { site: $site });
        }
    };
}

impl PersistentProcess {
    /// Creates a persistent process with `threads` threads whose
    /// stacks occupy the given ranges.
    ///
    /// # Panics
    ///
    /// Panics if `stack_ranges` is empty.
    pub fn new(stack_ranges: &[VirtRange]) -> Self {
        assert!(
            !stack_ranges.is_empty(),
            "process needs at least one thread"
        );
        Self {
            registers: ProcessCheckpointStore::new(stack_ranges.len()),
            stacks: stack_ranges
                .iter()
                .enumerate()
                .map(|(tid, r)| (tid as u32, PersistentStack::new(tid as u32, *r)))
                .collect(),
            live_regs: vec![RegisterFile::default(); stack_ranges.len()],
            pending: None,
            next_sequence: 1,
        }
    }

    /// Mutable access to thread `tid`'s live registers.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    pub fn regs_mut(&mut self, tid: u32) -> &mut RegisterFile {
        &mut self.live_regs[tid as usize]
    }

    /// Records a store into thread `tid`'s stack data plane.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist or the store leaves its
    /// stack range.
    pub fn record_store(&mut self, tid: u32, addr: prosper_memsim::addr::VirtAddr, bytes: &[u8]) {
        self.stacks
            .get_mut(&tid)
            .unwrap_or_else(|| panic!("thread {tid} not registered"))
            .record_store(addr, bytes);
    }

    /// The persistent stack of thread `tid`.
    pub fn stack(&self, tid: u32) -> &PersistentStack {
        &self.stacks[&tid]
    }

    /// Thread `tid`'s live registers.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    pub fn regs(&self, tid: u32) -> &RegisterFile {
        &self.live_regs[tid as usize]
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.live_regs.len()
    }

    /// Sequence of the last fully-committed whole-process checkpoint.
    pub fn committed_sequence(&self) -> u64 {
        self.registers.committed_sequence
    }

    /// Worker count for the parallel commit phases: one per thread, up
    /// to the machine's parallelism.
    fn default_workers(threads: usize) -> usize {
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(threads)
            .max(1)
    }

    /// Commits one whole-process checkpoint: every thread's stack runs
    /// (from its tracker's bitmap inspection) plus every thread's
    /// registers, under the two-phase stage/seal/apply protocol, with
    /// staging and apply fanned out across scoped workers (see the
    /// module docs).
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit(&mut self, runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>) {
        self.commit_with_workers(runs_per_thread, Self::default_workers(self.stacks.len()));
    }

    /// [`Self::commit`] with an explicit worker count (the perf suite
    /// sweeps this to measure commit scaling).
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_with_workers(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        workers: usize,
    ) {
        self.commit_with_workers_probed(runs_per_thread, workers, None);
    }

    /// [`Self::commit_with_workers`] with a [`CommitProbe`] observing
    /// every protocol boundary the workers and the coordinator cross —
    /// the instrumentation hook the `prosper-analysis` conformance
    /// suite drives to check the *real* parallel path against the
    /// protocol-order invariants.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_with_workers_probed(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        workers: usize,
        probe: Option<&CommitProbe>,
    ) {
        self.commit_attributed(runs_per_thread, workers, probe, None);
    }

    /// [`Self::commit_with_workers_probed`] plus causal stall
    /// attribution: each phase boundary the coordinator crosses is
    /// charged to every thread as a cause-tagged [`StallSegment`]
    /// (during a whole-process commit *every* thread is stalled, so
    /// the per-thread segments share the coordinator's boundaries),
    /// and one [`StallWindow`] per thread brackets the whole commit.
    /// The segments tile the window by construction — the telescoping
    /// sum `(t1-t0)+(t2-t1)+(t3-t2) = t3-t0` — which the conservation
    /// tests verify end-to-end. Under a virtual-clock accountant the
    /// coordinator advances time from the [`commit_cost`] model over
    /// the same chunk assignment the workers use; the workers never
    /// touch the clock, so attributed timelines stay deterministic at
    /// any worker count.
    ///
    /// [`StallSegment`]: prosper_telemetry::StallSegment
    /// [`StallWindow`]: prosper_telemetry::StallWindow
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_attributed(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        workers: usize,
        probe: Option<&CommitProbe>,
        acct: Option<&StallAccountant>,
    ) {
        for tid in self.stacks.keys() {
            assert!(
                runs_per_thread.contains_key(tid),
                "no runs supplied for thread {tid}"
            );
        }
        let sequence = self.next_sequence;
        let tids: Vec<u32> = self.stacks.keys().copied().collect();
        let t0 = acct.map(StallAccountant::now_ns);
        // Phase one (parallel): stage every thread's runs into its own
        // NVM staging buffer — strictly per-thread state.
        let stage_watch = telemetry::Stopwatch::start();
        Self::for_each_stack(&mut self.stacks, workers, |tid, stack| {
            stack.begin_stage();
            for run in &runs_per_thread[&tid] {
                stack.stage_run(run);
            }
            if let Some(p) = probe {
                p.record(CommitProbeEvent::StageThread { tid, sequence });
            }
        });
        // ...and the register file, into the unsealed commit record.
        let mut record = ProcessCommitRecord {
            sequence,
            staged_regs: self.live_regs.clone(),
            sealed: false,
        };
        self.pending = Some(record.clone());
        let stage_ns = stage_watch.elapsed_ns();
        let t1 = acct.map(|a| {
            a.advance(Self::chunked_phase_cost(&tids, workers, |tid| {
                Self::runs_cost(
                    &runs_per_thread[&tid],
                    commit_cost::STAGE_RUN_NS,
                    commit_cost::STAGE_BYTE_NS,
                )
            }));
            a.now_ns()
        });
        // Seal: the single durable write — and the single serialization
        // point — that commits the checkpoint.
        let seal_watch = telemetry::Stopwatch::start();
        record.sealed = true;
        self.pending = Some(record.clone());
        if let Some(p) = probe {
            p.record(CommitProbeEvent::Seal { sequence });
        }
        let seal_ns = seal_watch.elapsed_ns();
        let t2 = acct.map(|a| {
            a.advance(commit_cost::SEAL_NS);
            a.now_ns()
        });
        // Phase two (parallel apply; the register slots stay serial).
        let apply_watch = telemetry::Stopwatch::start();
        self.apply_record_parallel(&record, workers, probe);
        let apply_ns = apply_watch.elapsed_ns();
        let t3 = acct.map(|a| {
            a.advance(
                Self::chunked_phase_cost(&tids, workers, |tid| {
                    Self::runs_cost(
                        &runs_per_thread[&tid],
                        commit_cost::APPLY_RUN_NS,
                        commit_cost::APPLY_BYTE_NS,
                    )
                }) + tids.len() as u64 * commit_cost::REGISTER_SLOT_NS,
            );
            a.now_ns()
        });
        if let (Some(a), Some(t0), Some(t1), Some(t2), Some(t3)) = (acct, t0, t1, t2, t3) {
            for &tid in &tids {
                a.record_segment(tid, StallCause::Stage, sequence, t0, t1);
                a.record_segment(tid, StallCause::Seal, sequence, t1, t2);
                a.record_segment(tid, StallCause::Apply, sequence, t2, t3);
                a.record_window(tid, t0, t3);
            }
        }
        if telemetry::enabled() {
            telemetry::with(|t| {
                let r = t.registry();
                r.gauge("prosper.commit.workers").set(workers as i64);
                r.histogram("prosper.commit.phase.stage_ns")
                    .record(stage_ns);
                r.histogram("prosper.commit.phase.seal_ns").record(seal_ns);
                r.histogram("prosper.commit.phase.apply_ns")
                    .record(apply_ns);
            });
        }
    }

    /// Modelled cost of staging or applying `runs` for one thread.
    fn runs_cost(runs: &[CopyRun], per_run_ns: u64, per_byte_ns: u64) -> u64 {
        runs.iter().map(|r| per_run_ns + r.len * per_byte_ns).sum()
    }

    /// Max-over-chunks phase cost under the exact chunk assignment
    /// [`Self::for_each_stack`] uses (contiguous chunks of the
    /// tid-ordered list): a parallel phase is as slow as its slowest
    /// worker, plus a fixed dispatch overhead.
    fn chunked_phase_cost(tids: &[u32], workers: usize, per_tid: impl Fn(u32) -> u64) -> u64 {
        let workers = workers.clamp(1, tids.len().max(1));
        let chunk = tids.len().div_ceil(workers).max(1);
        commit_cost::PHASE_BASE_NS
            + tids
                .chunks(chunk)
                .map(|c| c.iter().map(|&t| per_tid(t)).sum::<u64>())
                .max()
                .unwrap_or(0)
    }

    /// Runs `f` over every stack, fanned out across at most `workers`
    /// scoped threads (contiguous chunks of the tid-ordered list).
    fn for_each_stack<F>(stacks: &mut BTreeMap<u32, PersistentStack>, workers: usize, f: F)
    where
        F: Fn(u32, &mut PersistentStack) + Sync,
    {
        let mut refs: Vec<(u32, &mut PersistentStack)> =
            stacks.iter_mut().map(|(tid, s)| (*tid, s)).collect();
        let workers = workers.clamp(1, refs.len().max(1));
        if workers == 1 {
            for (tid, stack) in refs {
                f(tid, stack);
            }
            return;
        }
        let chunk = refs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for slice in refs.chunks_mut(chunk) {
                let f = &f;
                scope.spawn(move || {
                    for (tid, stack) in slice.iter_mut() {
                        f(*tid, stack);
                    }
                });
            }
        });
    }

    /// [`Self::commit`] with a crash window at every step boundary.
    ///
    /// When the injector fires, the commit stops immediately and
    /// returns [`CrashInjected`], leaving the persistent state exactly
    /// as a power failure at that boundary would: the caller then
    /// simulates the crash ([`Self::crash`]) and recovers
    /// ([`Self::recover`]).
    ///
    /// # Errors
    ///
    /// Returns [`CrashInjected`] if the injector fired.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_with_faults(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
    ) -> Result<(), CrashInjected> {
        self.commit_with_faults_attributed(runs_per_thread, inj, None)
    }

    /// [`Self::commit_with_faults`] with stall attribution. A
    /// [`FaultScribe`] tracks the in-progress phase; when a crash
    /// window fires, the scribe closes the partial segment and the
    /// stall window at the crash instant, so a torn commit's ledger
    /// still conserves exactly — the property the crash-matrix
    /// attribution snapshot archives.
    ///
    /// # Errors
    ///
    /// Returns [`CrashInjected`] if the injector fired.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_thread` misses a registered thread.
    pub fn commit_with_faults_attributed(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
        acct: Option<&StallAccountant>,
    ) -> Result<(), CrashInjected> {
        let mut scribe = acct.map(|a| {
            FaultScribe::new(a, self.stacks.keys().copied().collect(), self.next_sequence)
        });
        let result = self.commit_with_faults_inner(runs_per_thread, inj, scribe.as_mut());
        if let Some(s) = scribe {
            s.finish();
        }
        result
    }

    fn commit_with_faults_inner(
        &mut self,
        runs_per_thread: &BTreeMap<u32, Vec<CopyRun>>,
        inj: &mut FaultInjector,
        mut scribe: Option<&mut FaultScribe<'_>>,
    ) -> Result<(), CrashInjected> {
        crash_window!(inj, CrashSite::PreStage);
        // Phase one: stage every thread's runs...
        for (tid, stack) in &mut self.stacks {
            let runs = runs_per_thread
                .get(tid)
                .unwrap_or_else(|| panic!("no runs supplied for thread {tid}"));
            stack.begin_stage();
            for (k, run) in runs.iter().enumerate() {
                stack.stage_run(run);
                if let Some(s) = scribe.as_deref_mut() {
                    s.work(commit_cost::STAGE_RUN_NS + run.len * commit_cost::STAGE_BYTE_NS);
                }
                crash_window!(
                    inj,
                    CrashSite::MidStage {
                        tid: *tid,
                        runs_staged: k as u32 + 1,
                    }
                );
            }
        }
        // ...and the register file, into the unsealed commit record.
        let mut record = ProcessCommitRecord {
            sequence: self.next_sequence,
            staged_regs: self.live_regs.clone(),
            sealed: false,
        };
        self.pending = Some(record.clone());
        crash_window!(inj, CrashSite::PreSeal);
        if let Some(s) = scribe.as_deref_mut() {
            s.next_phase(StallCause::Seal);
        }
        // Seal: the single durable write that commits the checkpoint.
        record.sealed = true;
        self.pending = Some(record.clone());
        if let Some(s) = scribe.as_deref_mut() {
            s.work(commit_cost::SEAL_NS);
        }
        crash_window!(inj, CrashSite::PostSeal);
        if let Some(s) = scribe.as_deref_mut() {
            s.next_phase(StallCause::Apply);
        }
        // Phase two.
        self.apply_record(&record, inj, scribe)
    }

    /// The parallel twin of [`Self::apply_record`]: applies every
    /// staging buffer across scoped workers, then the register slots
    /// serially, then retires the record. Idempotent, so recovery
    /// replays it from any interruption point; no crash windows — the
    /// deterministic sweep uses the serial path. Recovery's redo runs
    /// through here, so the path carries no `panic!`/`unwrap`/`expect`
    /// (enforced by lint rule `PA-PANIC004`).
    fn apply_record_parallel(
        &mut self,
        record: &ProcessCommitRecord,
        workers: usize,
        probe: Option<&CommitProbe>,
    ) {
        debug_assert!(record.sealed, "apply before the seal");
        let sequence = record.sequence;
        Self::for_each_stack(&mut self.stacks, workers, |tid, stack| {
            for k in 0..stack.staged_runs() {
                stack.apply_run(k);
            }
            stack.finish_apply(sequence);
            if let Some(p) = probe {
                p.record(CommitProbeEvent::ApplyThread { tid, sequence });
            }
        });
        for (tid, regs) in record.staged_regs.iter().enumerate() {
            self.registers.apply_thread_at(tid, *regs, sequence);
        }
        self.registers.set_committed_sequence(sequence);
        self.pending = None;
        self.next_sequence = sequence + 1;
        if let Some(p) = probe {
            p.record(CommitProbeEvent::Retire { sequence });
        }
    }

    /// Applies the sealed commit record: every staging buffer, then
    /// every register slot, then retires the record. Idempotent, so
    /// recovery replays it from any interruption point.
    fn apply_record(
        &mut self,
        record: &ProcessCommitRecord,
        inj: &mut FaultInjector,
        mut scribe: Option<&mut FaultScribe<'_>>,
    ) -> Result<(), CrashInjected> {
        debug_assert!(record.sealed, "apply before the seal");
        for (tid, stack) in &mut self.stacks {
            for k in 0..stack.staged_runs() {
                stack.apply_run(k);
                if let Some(s) = scribe.as_deref_mut() {
                    s.work(
                        commit_cost::APPLY_RUN_NS
                            + stack.staged_run_len(k) * commit_cost::APPLY_BYTE_NS,
                    );
                }
                crash_window!(
                    inj,
                    CrashSite::MidApply {
                        tid: *tid,
                        runs_applied: k as u32 + 1,
                    }
                );
            }
            stack.finish_apply(record.sequence);
            crash_window!(inj, CrashSite::PostApplyThread { tid: *tid });
        }
        crash_window!(inj, CrashSite::PostApplyPreRegisters);
        for (tid, regs) in record.staged_regs.iter().enumerate() {
            self.registers.apply_thread_at(tid, *regs, record.sequence);
            if let Some(s) = scribe.as_deref_mut() {
                s.work(commit_cost::REGISTER_SLOT_NS);
            }
            crash_window!(inj, CrashSite::MidRegisterApply { tid: tid as u32 });
        }
        self.registers.set_committed_sequence(record.sequence);
        self.pending = None;
        self.next_sequence = record.sequence + 1;
        crash_window!(inj, CrashSite::PostCommit);
        Ok(())
    }

    /// Simulates a power failure: all live registers and volatile
    /// stack images are lost.
    pub fn crash(&mut self) {
        for stack in self.stacks.values_mut() {
            stack.crash();
        }
        self.live_regs = vec![RegisterFile::default(); self.live_regs.len()];
    }

    /// Recovers the process to one coherent checkpoint.
    ///
    /// If a sealed commit record exists, the crash hit after the
    /// commit point: the apply is **redone** from the staged state
    /// (idempotently), landing every stack and every register slot on
    /// the record's sequence. Without a sealed record, all staging is
    /// discarded and the previous checkpoint stands. Either way no
    /// component can recover at a different sequence than the rest.
    ///
    /// # Errors
    ///
    /// Returns [`NoValidCheckpoint`] if no complete checkpoint exists.
    pub fn recover(&mut self) -> Result<RecoveredState, NoValidCheckpoint> {
        self.recover_attributed(None)
    }

    /// [`Self::recover`] with stall attribution: the whole replay —
    /// redo of a sealed record or discard of an unsealed one — is
    /// charged to every thread as a single `Recovery`-cause segment
    /// with a matching stall window, tagged with the sequence being
    /// redone (0 when nothing was sealed). Under a virtual clock the
    /// replay cost is modelled from the staged runs/bytes actually
    /// replayed, so crash-point choice shows up in the timeline.
    ///
    /// This is a recovery-surface function: it must stay panic-free
    /// (`PA-PANIC004`), which the accountant guarantees by never
    /// panicking on its own lock.
    ///
    /// # Errors
    ///
    /// Returns [`NoValidCheckpoint`] if no complete checkpoint exists.
    pub fn recover_attributed(
        &mut self,
        acct: Option<&StallAccountant>,
    ) -> Result<RecoveredState, NoValidCheckpoint> {
        let Some(acct) = acct else {
            return self.recover_inner();
        };
        let (sequence, redo_ns) = match &self.pending {
            Some(record) if record.sealed => (
                record.sequence,
                commit_cost::RECOVERY_BASE_NS
                    + self
                        .stacks
                        .values()
                        .map(|s| {
                            s.staged_runs() as u64 * commit_cost::RECOVERY_RUN_NS
                                + s.staged_bytes() * commit_cost::RECOVERY_BYTE_NS
                        })
                        .sum::<u64>(),
            ),
            _ => (0, commit_cost::RECOVERY_BASE_NS),
        };
        let start = acct.now_ns();
        let result = self.recover_inner();
        acct.advance(redo_ns);
        let end = acct.now_ns();
        for tid in self.stacks.keys() {
            acct.record_segment(*tid, StallCause::Recovery, sequence, start, end);
            acct.record_window(*tid, start, end);
        }
        result
    }

    fn recover_inner(&mut self) -> Result<RecoveredState, NoValidCheckpoint> {
        match self.pending.clone() {
            Some(record) if record.sealed => {
                // Redo through the parallel apply — the crash matrix
                // recovers after every post-seal crash, so this path is
                // exhaustively exercised against torn commits.
                let workers = Self::default_workers(self.stacks.len());
                self.apply_record_parallel(&record, workers, None);
            }
            Some(_) => {
                // The commit never sealed: discard it wholesale.
                self.pending = None;
                for stack in self.stacks.values_mut() {
                    stack.discard_staging();
                }
            }
            None => {}
        }
        for stack in self.stacks.values_mut() {
            stack.recover_after_crash();
        }
        let regs = self.registers.recover()?;
        self.live_regs.clone_from(&regs);
        Ok(RecoveredState {
            regs,
            sequence: self.registers.committed_sequence,
        })
    }

    /// Checks the cross-component sequence invariant: every thread's
    /// stack, every thread's register slot, and the process store
    /// itself agree on one committed sequence. The fault-injection
    /// harness runs this after every recovery.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceSkew`] naming the first disagreeing component.
    pub fn verify_coherent(&self) -> Result<u64, SequenceSkew> {
        let seq = self.registers.committed_sequence;
        for (tid, stack) in &self.stacks {
            if stack.committed_sequence() != seq {
                return Err(SequenceSkew {
                    detail: format!(
                        "thread {tid} stack at sequence {}, process at {seq}",
                        stack.committed_sequence()
                    ),
                });
            }
        }
        if seq > 0 {
            let detailed = self
                .registers
                .recover_detailed()
                .map_err(|_| SequenceSkew {
                    detail: format!("process at sequence {seq} but registers unrecoverable"),
                })?;
            for (tid, (_, reg_seq)) in detailed.iter().enumerate() {
                if *reg_seq != seq {
                    return Err(SequenceSkew {
                        detail: format!(
                            "thread {tid} registers at sequence {reg_seq}, process at {seq}"
                        ),
                    });
                }
            }
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_gemos::crash::CrashPlan;
    use prosper_memsim::addr::VirtAddr;

    fn ranges(n: u64) -> Vec<VirtRange> {
        (0..n)
            .map(|i| {
                let top = 0x7000_0000 + (i + 1) * 0x10_0000;
                VirtRange::new(VirtAddr::new(top - 0x8000), VirtAddr::new(top))
            })
            .collect()
    }

    fn full_runs(p: &PersistentProcess, tids: &[u32]) -> BTreeMap<u32, Vec<CopyRun>> {
        tids.iter()
            .map(|&tid| {
                let r = p.stack(tid).range();
                (
                    tid,
                    vec![CopyRun {
                        start: r.start(),
                        len: r.len(),
                    }],
                )
            })
            .collect()
    }

    #[test]
    fn commit_binds_registers_and_memory() {
        let mut p = PersistentProcess::new(&ranges(2));
        let r0 = p.stack(0).range();
        p.record_store(0, r0.start() + 64, b"thread-zero");
        p.regs_mut(0).rip = 0x1111;
        p.regs_mut(1).rip = 0x2222;
        let runs = full_runs(&p, &[0, 1]);
        p.commit(&runs);

        // Post-commit mutations are lost at the crash.
        p.record_store(0, r0.start() + 64, b"overwrote!!");
        p.regs_mut(0).rip = 0x9999;
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 1);
        assert_eq!(rec.regs[0].rip, 0x1111);
        assert_eq!(rec.regs[1].rip, 0x2222);
        assert_eq!(
            p.stack(0).volatile().read(r0.start() + 64, 11),
            b"thread-zero"
        );
        assert_eq!(p.verify_coherent().unwrap(), 1);
    }

    #[test]
    fn recover_without_commit_fails() {
        let mut p = PersistentProcess::new(&ranges(1));
        p.crash();
        assert!(p.recover().is_err());
    }

    #[test]
    fn repeated_commits_recover_latest() {
        let mut p = PersistentProcess::new(&ranges(1));
        let runs = full_runs(&p, &[0]);
        for seq in 1..=3u64 {
            p.regs_mut(0).gpr[5] = seq * 7;
            p.commit(&runs);
        }
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 3);
        assert_eq!(rec.regs[0].gpr[5], 21);
    }

    #[test]
    #[should_panic(expected = "no runs supplied for thread")]
    fn missing_thread_runs_rejected() {
        let mut p = PersistentProcess::new(&ranges(2));
        let runs = full_runs(&p, &[0]); // thread 1 missing
        p.commit(&runs);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_process_rejected() {
        PersistentProcess::new(&[]);
    }

    /// Sets up a two-thread process with one clean commit at sequence
    /// 1 and distinct per-thread data staged for commit 2.
    fn two_thread_mid_commit_setup() -> (PersistentProcess, BTreeMap<u32, Vec<CopyRun>>) {
        let mut p = PersistentProcess::new(&ranges(2));
        for tid in 0..2u32 {
            let r = p.stack(tid).range();
            p.record_store(tid, r.start() + 32, &[0x10 + tid as u8; 16]);
            p.regs_mut(tid).rip = 0x100 + u64::from(tid);
        }
        let runs = full_runs(&p, &[0, 1]);
        p.commit(&runs);
        for tid in 0..2u32 {
            let r = p.stack(tid).range();
            p.record_store(tid, r.start() + 32, &[0x20 + tid as u8; 16]);
            p.regs_mut(tid).rip = 0x200 + u64::from(tid);
        }
        (p, runs)
    }

    /// Satellite regression: a crash **between two thread-stack
    /// applies** must not recover thread 0 at sequence 2 with thread 1
    /// at sequence 1. Under the pre-two-phase commit (each stack
    /// checkpointed independently) this exact schedule was torn.
    #[test]
    fn crash_between_thread_stack_applies_recovers_one_sequence() {
        let (mut p, runs) = two_thread_mid_commit_setup();
        let err = p
            .commit_with_faults(
                &runs,
                &mut FaultInjector::at_site(CrashSite::PostApplyThread { tid: 0 }),
            )
            .unwrap_err();
        assert_eq!(err.site, CrashSite::PostApplyThread { tid: 0 });
        p.crash();
        let rec = p.recover().unwrap();
        // The seal preceded the crash: recovery redoes the whole
        // commit, landing both stacks and the registers on sequence 2.
        assert_eq!(rec.sequence, 2);
        assert_eq!(p.verify_coherent().unwrap(), 2);
        for tid in 0..2u32 {
            let r = p.stack(tid).range();
            assert_eq!(
                p.stack(tid).volatile().read(r.start() + 32, 16),
                vec![0x20 + tid as u8; 16],
                "thread {tid} recovered the redone commit"
            );
            assert_eq!(rec.regs[tid as usize].rip, 0x200 + u64::from(tid));
        }
    }

    /// Satellite regression: a crash **between the stack applies and
    /// the register apply** must not recover stacks at sequence 2 with
    /// registers at sequence 1 — the torn state the two-step protocol
    /// exists to prevent.
    #[test]
    fn crash_between_stacks_and_registers_recovers_one_sequence() {
        let (mut p, runs) = two_thread_mid_commit_setup();
        let err = p
            .commit_with_faults(
                &runs,
                &mut FaultInjector::at_site(CrashSite::PostApplyPreRegisters),
            )
            .unwrap_err();
        assert_eq!(err.site, CrashSite::PostApplyPreRegisters);
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 2);
        assert_eq!(p.verify_coherent().unwrap(), 2);
        assert_eq!(rec.regs[0].rip, 0x200, "registers redone with the stacks");
        assert_eq!(rec.regs[1].rip, 0x201);
    }

    /// A crash before the seal discards the whole in-flight commit:
    /// everything recovers at the previous sequence.
    #[test]
    fn crash_before_seal_discards_whole_commit() {
        let (mut p, runs) = two_thread_mid_commit_setup();
        for plan in [
            CrashPlan::AtSite(CrashSite::PreStage),
            CrashPlan::AtSite(CrashSite::MidStage {
                tid: 1,
                runs_staged: 1,
            }),
            CrashPlan::AtSite(CrashSite::PreSeal),
        ] {
            let mut inj = FaultInjector::new(plan);
            p.commit_with_faults(&runs, &mut inj).unwrap_err();
            p.crash();
            let rec = p.recover().unwrap();
            assert_eq!(rec.sequence, 1, "pre-seal crash keeps sequence 1");
            assert_eq!(p.verify_coherent().unwrap(), 1);
            for tid in 0..2u32 {
                let r = p.stack(tid).range();
                assert_eq!(
                    p.stack(tid).volatile().read(r.start() + 32, 16),
                    vec![0x10 + tid as u8; 16]
                );
                assert_eq!(rec.regs[tid as usize].rip, 0x100 + u64::from(tid));
            }
            // Rebuild the live state the crash wiped, then retry.
            for tid in 0..2u32 {
                let r = p.stack(tid).range();
                p.record_store(tid, r.start() + 32, &[0x20 + tid as u8; 16]);
                p.regs_mut(tid).rip = 0x200 + u64::from(tid);
            }
        }
        // The interrupted commits retried cleanly.
        p.commit(&runs);
        assert_eq!(p.verify_coherent().unwrap(), 2);
    }

    /// The parallel commit and the serial crash-windowed commit must
    /// land on byte-identical persistent state.
    #[test]
    fn parallel_commit_matches_serial() {
        let build = || {
            let mut p = PersistentProcess::new(&ranges(4));
            for tid in 0..4u32 {
                let r = p.stack(tid).range();
                for k in 0..8u64 {
                    p.record_store(tid, r.start() + k * 512, &[tid as u8 ^ k as u8; 64]);
                }
                p.regs_mut(tid).rip = 0x1000 + u64::from(tid);
                p.regs_mut(tid).gpr[3] = u64::from(tid) * 17;
            }
            p
        };
        let mut serial = build();
        let mut parallel = build();
        let runs = full_runs(&serial, &[0, 1, 2, 3]);
        serial
            .commit_with_faults(&runs, &mut FaultInjector::disabled())
            .expect("a disabled injector never fires");
        parallel.commit_with_workers(&runs, 4);
        assert_eq!(serial.committed_sequence(), parallel.committed_sequence());
        serial.crash();
        parallel.crash();
        let rs = serial.recover().unwrap();
        let rp = parallel.recover().unwrap();
        assert_eq!(rs.sequence, rp.sequence);
        for tid in 0..4u32 {
            let r = serial.stack(tid).range();
            assert_eq!(
                serial.stack(tid).volatile().read(r.start(), 4096),
                parallel.stack(tid).volatile().read(r.start(), 4096),
                "thread {tid} recovered identical bytes"
            );
            assert_eq!(rs.regs[tid as usize], rp.regs[tid as usize]);
        }
        assert_eq!(parallel.verify_coherent().unwrap(), 1);
    }

    /// Commits stay coherent at every worker width, including widths
    /// above the thread count and repeated commits on one process.
    #[test]
    fn commit_coherent_across_worker_counts() {
        let mut p = PersistentProcess::new(&ranges(8));
        let tids: Vec<u32> = (0..8).collect();
        let runs = full_runs(&p, &tids);
        for (i, workers) in [1usize, 2, 3, 8, 64].into_iter().enumerate() {
            for tid in 0..8u32 {
                let r = p.stack(tid).range();
                p.record_store(tid, r.start() + 128, &[i as u8 + 1; 32]);
            }
            p.commit_with_workers(&runs, workers);
            assert_eq!(p.committed_sequence(), i as u64 + 1);
            assert_eq!(p.verify_coherent().unwrap(), i as u64 + 1);
        }
        p.crash();
        let rec = p.recover().unwrap();
        assert_eq!(rec.sequence, 5);
        let r = p.stack(7).range();
        assert_eq!(
            p.stack(7).volatile().read(r.start() + 128, 32),
            vec![5u8; 32],
            "last commit's bytes survive the crash"
        );
    }

    /// Double crash: a crash during recovery's redo (modelled as a
    /// second crash+recover without a completed first recovery) still
    /// converges to the committed checkpoint.
    #[test]
    fn repeated_recovery_is_idempotent() {
        let (mut p, runs) = two_thread_mid_commit_setup();
        p.commit_with_faults(
            &runs,
            &mut FaultInjector::at_site(CrashSite::MidApply {
                tid: 0,
                runs_applied: 1,
            }),
        )
        .unwrap_err();
        for _ in 0..3 {
            p.crash();
            let rec = p.recover().unwrap();
            assert_eq!(rec.sequence, 2);
            assert_eq!(p.verify_coherent().unwrap(), 2);
        }
    }
}
