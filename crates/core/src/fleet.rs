//! Fleet-scale checkpoint orchestration with staggered shard offsets.
//!
//! A datacenter node running Prosper does not checkpoint one process:
//! it checkpoints a *fleet* of tenants, and if every tenant's interval
//! timer fires at the same instant the NVM write channel saturates once
//! per interval and idles the rest of it. [`CheckpointFleet`] models
//! the orchestrator that fixes this: `N` shards, each owning `M`
//! tenant [`PersistentProcess`] threads and a private dirty-bitmap
//! domain, with checkpoint intervals *deterministically staggered* —
//! shard `k` commits at offset `k·(interval/N)` — so the same total
//! bytes spread across the whole interval instead of piling into one
//! window.
//!
//! Two fleet-level effects are modelled on top of the per-process
//! commit machinery:
//!
//! * **Write-bandwidth smoothing**, measured as the peak-to-mean ratio
//!   of NVM checkpoint bytes per fixed-width virtual-time window
//!   ([`prosper_memsim::BandwidthWindows`]). The perf suite gates on
//!   staggered being *strictly* below aligned at equal total bytes.
//! * **Global backpressure**: shards share a staging pool that drains
//!   at a fixed rate (the spine merge / apply retire path). When a
//!   shard's commit would push pool occupancy past the high-water
//!   mark, the commit is deferred until the pool drains below it, and
//!   the wait is charged to [`StallCause::Backpressure`] in the PR-6
//!   attribution ledger — the conservation invariant (segments exactly
//!   tile windows) holds by construction, backpressure included.
//!
//! Everything runs on the deterministic virtual clock: commit
//! durations come from the [`commit_cost`] model, NVM bytes are tagged
//! per phase through the memsim machine's checkpoint-phase ledger, and
//! per-tenant commit latency (scheduled tick → apply completion) feeds
//! an [`SloTracker`] so tail percentiles survive aggregation.

use std::collections::BTreeMap;

use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::{BandwidthWindows, CkptPhase, Machine, MachineConfig, NvmPhaseBytes};
use prosper_telemetry::{AttributionSnapshot, SloReport, SloTracker, StallAccountant, StallCause};

use crate::bitmap::{BitmapGeometry, CopyRun, DirtyBitmap};
use crate::recovery::{commit_cost, PersistentProcess};

/// Bytes of one tenant's stack span (what the dirty bitmap tracks and
/// the store generator writes into).
const TENANT_STACK_BYTES: u64 = 32 * 1024;

/// Virtual-address stride between tenant stacks; keeps every tenant in
/// a disjoint, page-aligned span.
const TENANT_SPAN_BYTES: u64 = 1 << 20;

/// Base of the fleet's stack arena.
const STACK_ARENA_BASE: u64 = 0x7000_0000_0000;

/// Base of the per-shard bitmap arenas (disjoint from the stacks).
const BITMAP_ARENA_BASE: u64 = 0x1000_0000_0000;

/// Virtual-address stride between per-shard bitmap domains.
const BITMAP_SPAN_BYTES: u64 = 1 << 24;

/// Dirty-tracking granularity (bytes per bitmap bit).
const GRANULARITY: u64 = 64;

/// Modelled size of one durable seal record (bytes written to NVM at
/// the commit's durability point).
const SEAL_RECORD_BYTES: u64 = 64;

/// Configuration for one fleet run. All times are virtual nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of shards (commit-scheduling domains).
    pub shards: u32,
    /// Tenant threads per shard (each is one `PersistentProcess`
    /// thread with its own stack and SLO series).
    pub tenants_per_shard: u32,
    /// Number of checkpoint intervals to simulate.
    pub intervals: u32,
    /// Checkpoint interval length.
    pub interval_ns: u64,
    /// Stores each tenant issues per interval.
    pub stores_per_interval: u32,
    /// Bytes per store.
    pub store_bytes: u64,
    /// When `true`, shard `k` commits at offset `k·(interval/N)`;
    /// when `false`, every shard commits at the interval boundary
    /// (the aligned baseline the perf gate compares against).
    pub staggered: bool,
    /// Seed for the deterministic store-address generator.
    pub seed: u64,
    /// Shared staging-pool capacity.
    pub staging_capacity_bytes: u64,
    /// Backpressure threshold in permille of capacity: a commit that
    /// finds occupancy above `capacity·hw/1000` is deferred until the
    /// pool drains back to the mark.
    pub high_water_permille: u32,
    /// Staging-pool drain rate (bytes per virtual ns) — the modelled
    /// throughput of the retire path emptying the pool.
    pub drain_bytes_per_ns: u64,
    /// Width of one bandwidth-accounting window.
    pub window_ns: u64,
    /// Per-tenant commit-latency SLO objective.
    pub slo_objective_ns: u64,
    /// Allowed SLO violation fraction.
    pub slo_error_budget: f64,
}

impl FleetConfig {
    /// A small deterministic fleet sized so backpressure never
    /// triggers: 4 shards × 2 tenants over 8 one-millisecond
    /// intervals, bandwidth windows of `interval/shards` so staggered
    /// commits land in distinct windows.
    #[must_use]
    pub fn smoke() -> Self {
        let interval_ns = 1_000_000;
        let shards = 4;
        FleetConfig {
            shards,
            tenants_per_shard: 2,
            intervals: 8,
            interval_ns,
            stores_per_interval: 64,
            store_bytes: 64,
            staggered: true,
            seed: 0x5eed_f1ee,
            staging_capacity_bytes: 1 << 20,
            high_water_permille: 800,
            drain_bytes_per_ns: 4,
            window_ns: interval_ns / u64::from(shards),
            slo_objective_ns: 200_000,
            slo_error_budget: 0.001,
        }
    }

    /// [`Self::smoke`] with the stagger disabled (aligned baseline).
    #[must_use]
    pub fn smoke_aligned() -> Self {
        FleetConfig {
            staggered: false,
            ..Self::smoke()
        }
    }

    /// [`Self::smoke`] with the staging pool constrained — intervals
    /// too short to drain between ticks, a small pool, a low mark —
    /// so a fraction of commits defer and the
    /// [`StallCause::Backpressure`] cause shows up in the ledger. The
    /// preset the checkpoint-tax report's `fleet` section runs.
    #[must_use]
    pub fn choked() -> Self {
        FleetConfig {
            interval_ns: 2_000,
            staging_capacity_bytes: 8 * 1024,
            high_water_permille: 250,
            drain_bytes_per_ns: 1,
            stores_per_interval: 256,
            window_ns: 500,
            ..Self::smoke()
        }
    }

    /// Shard `k`'s deterministic commit offset within an interval.
    #[must_use]
    pub fn shard_offset_ns(&self, shard: u32) -> u64 {
        if self.staggered {
            u64::from(shard) * (self.interval_ns / u64::from(self.shards.max(1)))
        } else {
            0
        }
    }

    /// Total tenant threads across the fleet.
    #[must_use]
    pub fn total_tenants(&self) -> u32 {
        self.shards * self.tenants_per_shard
    }

    /// Absolute backpressure threshold in bytes.
    #[must_use]
    pub fn high_water_bytes(&self) -> u64 {
        self.staging_capacity_bytes / 1000 * u64::from(self.high_water_permille)
            + self.staging_capacity_bytes % 1000 * u64::from(self.high_water_permille) / 1000
    }
}

/// Everything measured by one fleet run.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Shard commits performed (`shards × intervals`).
    pub commits: u64,
    /// Commits that hit the high-water mark and were deferred.
    pub deferred_commits: u64,
    /// Total ns of deferral charged to [`StallCause::Backpressure`].
    pub backpressure_ns: u64,
    /// Per-phase NVM checkpoint bytes from the machine's tagged
    /// ledger (stage/seal/apply).
    pub nvm_phase_bytes: NvmPhaseBytes,
    /// Peak bytes written in any single bandwidth window.
    pub peak_window_bytes: u64,
    /// `1000 × peak/mean` NVM checkpoint write bandwidth over the
    /// run horizon — the smoothing figure of merit (1000 = flat).
    pub peak_to_mean_milli: u64,
    /// Width of the bandwidth windows used.
    pub window_ns: u64,
    /// Virtual-time horizon the mean was taken over.
    pub horizon_ns: u64,
    /// Per-tenant commit-latency SLO report (latency measured from
    /// scheduled tick to apply completion, queueing included).
    pub slo: SloReport,
    /// The full attribution ledger (verifiable via
    /// [`AttributionSnapshot::verify_conservation`]).
    pub attribution: AttributionSnapshot,
}

/// Deterministic xorshift64 store-address generator.
struct Xorshift64(u64);

impl Xorshift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Shared staging-pool occupancy with a linear drain model.
struct StagingPool {
    occupancy: u64,
    /// Virtual time the occupancy was last brought current.
    as_of_ns: u64,
    drain_bytes_per_ns: u64,
}

impl StagingPool {
    /// Advances the drain model to `t` (never backwards) and returns
    /// the occupancy there.
    fn occupancy_at(&mut self, t: u64) -> u64 {
        if t > self.as_of_ns {
            let drained = (t - self.as_of_ns).saturating_mul(self.drain_bytes_per_ns);
            self.occupancy = self.occupancy.saturating_sub(drained);
            self.as_of_ns = t;
        }
        self.occupancy
    }

    /// Ns until occupancy drains from `occ` down to `mark` (0 if
    /// already at or below, `u64::MAX` if the pool never drains).
    fn drain_wait_ns(&self, occ: u64, mark: u64) -> u64 {
        let excess = occ.saturating_sub(mark);
        if excess == 0 {
            0
        } else if self.drain_bytes_per_ns == 0 {
            u64::MAX
        } else {
            excess.div_ceil(self.drain_bytes_per_ns)
        }
    }
}

/// One shard: a tenant process, its private dirty-bitmap domain, and
/// its scheduling state.
struct Shard {
    process: PersistentProcess,
    bitmap: DirtyBitmap,
    geom: BitmapGeometry,
    /// First tenant stack base (tenant `m` lives at
    /// `base + m·TENANT_SPAN_BYTES`).
    stack_base: u64,
    /// End of this shard's previous commit window; the next window
    /// starts no earlier (keeps per-tid ledger windows disjoint).
    prev_end_ns: u64,
    /// Reused run buffer for bitmap inspection.
    run_buf: Vec<CopyRun>,
}

impl Shard {
    fn tenant_range(&self, tenant: u32) -> VirtRange {
        let base = self.stack_base + u64::from(tenant) * TENANT_SPAN_BYTES;
        VirtRange::new(
            VirtAddr::new(base),
            VirtAddr::new(base + TENANT_STACK_BYTES),
        )
    }
}

/// The fleet orchestrator. Construct with [`CheckpointFleet::new`],
/// run to completion with [`CheckpointFleet::run`].
#[derive(Debug)]
pub struct CheckpointFleet {
    cfg: FleetConfig,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("stack_base", &self.stack_base)
            .field("prev_end_ns", &self.prev_end_ns)
            .finish_non_exhaustive()
    }
}

impl CheckpointFleet {
    /// Creates a fleet orchestrator for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has zero shards, tenants, intervals, or window
    /// width, or an interval too short to stagger.
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.shards > 0, "fleet needs at least one shard");
        assert!(cfg.tenants_per_shard > 0, "shard needs at least one tenant");
        assert!(cfg.intervals > 0, "fleet needs at least one interval");
        assert!(cfg.window_ns > 0, "bandwidth window must be non-zero");
        assert!(
            cfg.interval_ns >= u64::from(cfg.shards),
            "interval too short to stagger across shards"
        );
        assert!(
            cfg.drain_bytes_per_ns > 0,
            "staging pool must drain at a non-zero rate"
        );
        CheckpointFleet { cfg }
    }

    /// The configuration the fleet was built with.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    fn build_shards(&self) -> Vec<Shard> {
        let cfg = &self.cfg;
        (0..cfg.shards)
            .map(|s| {
                let stack_base = STACK_ARENA_BASE
                    + u64::from(s) * u64::from(cfg.tenants_per_shard) * TENANT_SPAN_BYTES;
                let ranges: Vec<VirtRange> = (0..cfg.tenants_per_shard)
                    .map(|m| {
                        let base = stack_base + u64::from(m) * TENANT_SPAN_BYTES;
                        VirtRange::new(
                            VirtAddr::new(base),
                            VirtAddr::new(base + TENANT_STACK_BYTES),
                        )
                    })
                    .collect();
                Shard {
                    process: PersistentProcess::new(&ranges),
                    bitmap: DirtyBitmap::new(),
                    geom: BitmapGeometry {
                        range_start: VirtAddr::new(stack_base),
                        bitmap_base: VirtAddr::new(
                            BITMAP_ARENA_BASE + u64::from(s) * BITMAP_SPAN_BYTES,
                        ),
                        granularity: GRANULARITY,
                    },
                    stack_base,
                    prev_end_ns: 0,
                    run_buf: Vec::new(),
                }
            })
            .collect()
    }

    /// Issues one interval's stores for every tenant of `shard`:
    /// records them into the process stacks and marks the shard's
    /// dirty-bitmap domain, granule by granule.
    fn issue_stores(cfg: &FleetConfig, shard: &mut Shard, rng: &mut Xorshift64, interval: u32) {
        for m in 0..cfg.tenants_per_shard {
            let range = shard.tenant_range(m);
            let span = range.end() - range.start();
            for _ in 0..cfg.stores_per_interval {
                let len = cfg.store_bytes.min(span);
                let max_off = span - len;
                let off = if max_off == 0 {
                    0
                } else {
                    rng.next() % max_off
                };
                let addr = range.start() + off;
                let byte = (rng.next() ^ u64::from(interval)) as u8;
                let data = vec![byte; len as usize];
                shard.process.record_store(m, addr, &data);
                // Mark every granule the store touches.
                let mut g = addr.raw() / GRANULARITY * GRANULARITY;
                while g < addr.raw() + len {
                    let (word_addr, bit) = shard.geom.locate(VirtAddr::new(g));
                    shard.bitmap.merge_word(word_addr, 1 << bit);
                    g += GRANULARITY;
                }
            }
        }
    }

    /// Runs the fleet to completion and returns the measurements.
    #[must_use]
    pub fn run(&mut self) -> FleetResult {
        let cfg = self.cfg;
        let mut shards = self.build_shards();
        let mut rng = Xorshift64(cfg.seed | 1);
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut bw = BandwidthWindows::new(cfg.window_ns);
        let acct = StallAccountant::new_virtual();
        let slo = SloTracker::new(cfg.slo_objective_ns, cfg.slo_error_budget);
        let mut pool = StagingPool {
            occupancy: 0,
            as_of_ns: 0,
            drain_bytes_per_ns: cfg.drain_bytes_per_ns,
        };
        let high_water = cfg.high_water_bytes();

        let mut commits = 0u64;
        let mut deferred = 0u64;
        let mut backpressure_ns = 0u64;

        for interval in 0..cfg.intervals {
            // Stores for this interval land before any shard's commit
            // tick fires.
            for shard in shards.iter_mut() {
                Self::issue_stores(&cfg, shard, &mut rng, interval);
            }
            // Commit ticks in deterministic time order across shards.
            let mut ticks: Vec<(u64, u32)> = (0..cfg.shards)
                .map(|k| {
                    (
                        u64::from(interval) * cfg.interval_ns + cfg.shard_offset_ns(k),
                        k,
                    )
                })
                .collect();
            ticks.sort_unstable();
            for (t_sched, k) in ticks {
                let shard = &mut shards[k as usize];
                let sequence = u64::from(interval) + 1;

                // Inspect this shard's bitmap domain per tenant.
                let mut runs_map: BTreeMap<u32, Vec<CopyRun>> = BTreeMap::new();
                let mut total_runs = 0u64;
                let mut total_bytes = 0u64;
                for m in 0..cfg.tenants_per_shard {
                    let active = shard.tenant_range(m);
                    let geom = shard.geom;
                    let _ = shard
                        .bitmap
                        .inspect_and_clear_into(&geom, active, &mut shard.run_buf);
                    total_runs += shard.run_buf.len() as u64;
                    total_bytes += shard.run_buf.iter().map(|r| r.len).sum::<u64>();
                    runs_map.insert(m, shard.run_buf.clone());
                }

                // Ledger window opens at the scheduled tick, clamped
                // so this shard's windows never overlap.
                let win_start = t_sched.max(shard.prev_end_ns);
                let occ = pool.occupancy_at(win_start);
                let wait = pool.drain_wait_ns(occ, high_water);
                let t_start = if wait > 0 {
                    deferred += 1;
                    win_start.saturating_add(wait)
                } else {
                    win_start
                };
                pool.occupancy_at(t_start);
                pool.occupancy = pool
                    .occupancy
                    .saturating_add(total_bytes)
                    .min(cfg.staging_capacity_bytes);

                // Modelled serial commit durations (workers = 1).
                let stage_ns = commit_cost::PHASE_BASE_NS
                    + total_runs * commit_cost::STAGE_RUN_NS
                    + total_bytes * commit_cost::STAGE_BYTE_NS;
                let seal_ns = commit_cost::SEAL_NS
                    + u64::from(cfg.tenants_per_shard) * commit_cost::BOOKKEEP_SLOT_NS;
                let apply_ns = commit_cost::PHASE_BASE_NS
                    + total_runs * commit_cost::APPLY_RUN_NS
                    + total_bytes * commit_cost::APPLY_BYTE_NS
                    + u64::from(cfg.tenants_per_shard) * commit_cost::REGISTER_SLOT_NS;
                let t_end = t_start + stage_ns + seal_ns + apply_ns;

                // The real commit, for bytes and crash-consistency
                // correctness; timing comes from the model above.
                shard.process.commit_with_workers(&runs_map, 1);
                commits += 1;

                // Tagged NVM traffic: stage copy, seal record, apply
                // copy — the same per-phase ledger the spine perf
                // section reads.
                machine.bulk_copy_dram_to_nvm_phase(total_bytes, CkptPhase::Stage);
                let seal_paddr = machine.nvm_base();
                machine.persist_seal_record(seal_paddr, SEAL_RECORD_BYTES);
                machine.bulk_copy_nvm_to_nvm_phase(total_bytes, CkptPhase::Apply);
                // The whole commit's NVM traffic is charged to the
                // window containing its start; commits are short
                // relative to the window width.
                bw.record(t_start, total_bytes * 2 + SEAL_RECORD_BYTES);

                // Attribution: each tenant's window is exactly tiled
                // by backpressure + stage + seal + apply segments.
                for m in 0..cfg.tenants_per_shard {
                    let tid = k * cfg.tenants_per_shard + m;
                    acct.record_window(tid, win_start, t_end);
                    if t_start > win_start {
                        acct.record_segment(
                            tid,
                            StallCause::Backpressure,
                            sequence,
                            win_start,
                            t_start,
                        );
                    }
                    acct.record_segment(
                        tid,
                        StallCause::Stage,
                        sequence,
                        t_start,
                        t_start + stage_ns,
                    );
                    acct.record_segment(
                        tid,
                        StallCause::Seal,
                        sequence,
                        t_start + stage_ns,
                        t_start + stage_ns + seal_ns,
                    );
                    acct.record_segment(
                        tid,
                        StallCause::Apply,
                        sequence,
                        t_start + stage_ns + seal_ns,
                        t_end,
                    );
                    // SLO latency runs from the *scheduled* tick, so
                    // queueing behind the previous commit counts too.
                    slo.record(tid, t_end - t_sched);
                }
                backpressure_ns += (t_start - win_start) * u64::from(cfg.tenants_per_shard);
                shard.prev_end_ns = t_end;
            }
        }

        let horizon_ns = u64::from(cfg.intervals) * cfg.interval_ns - 1;
        let nvm_phase_bytes = machine.ckpt_nvm_bytes();
        let result = FleetResult {
            commits,
            deferred_commits: deferred,
            backpressure_ns,
            nvm_phase_bytes,
            peak_window_bytes: bw.peak_bytes(),
            peak_to_mean_milli: bw.peak_to_mean_milli(horizon_ns),
            window_ns: cfg.window_ns,
            horizon_ns,
            slo: slo.report(),
            attribution: acct.snapshot(),
        };
        Self::publish(&result);
        result
    }

    /// Publishes fleet counters/gauges under the registered
    /// `prosper.fleet.*` names (no-op without a telemetry context).
    fn publish(result: &FleetResult) {
        if !prosper_telemetry::enabled() {
            return;
        }
        prosper_telemetry::with(|t| {
            let r = t.registry();
            r.counter("prosper.fleet.commits").add(result.commits);
            r.counter("prosper.fleet.deferred_commits")
                .add(result.deferred_commits);
            r.counter("prosper.fleet.ckpt_nvm_bytes")
                .add(result.nvm_phase_bytes.total());
            r.gauge("prosper.fleet.peak_to_mean_milli")
                .set(i64::try_from(result.peak_to_mean_milli).unwrap_or(i64::MAX));
            prosper_telemetry::report_to_registry(&result.attribution, r);
            prosper_telemetry::slo_to_registry(&result.slo, r);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_offsets_are_deterministic_and_spread() {
        let cfg = FleetConfig::smoke();
        let offsets: Vec<u64> = (0..cfg.shards).map(|k| cfg.shard_offset_ns(k)).collect();
        assert_eq!(offsets, vec![0, 250_000, 500_000, 750_000]);
        let aligned = FleetConfig::smoke_aligned();
        assert!((0..aligned.shards).all(|k| aligned.shard_offset_ns(k) == 0));
    }

    #[test]
    fn staggered_peak_to_mean_strictly_below_aligned_at_equal_bytes() {
        let stag = CheckpointFleet::new(FleetConfig::smoke()).run();
        let alig = CheckpointFleet::new(FleetConfig::smoke_aligned()).run();
        assert_eq!(
            stag.nvm_phase_bytes.total(),
            alig.nvm_phase_bytes.total(),
            "same workload must write the same total bytes"
        );
        assert!(stag.nvm_phase_bytes.total() > 0);
        assert!(
            stag.peak_to_mean_milli < alig.peak_to_mean_milli,
            "staggering must strictly lower peak-to-mean ({} vs {})",
            stag.peak_to_mean_milli,
            alig.peak_to_mean_milli
        );
    }

    #[test]
    fn attribution_conserves_with_and_without_backpressure() {
        let calm = CheckpointFleet::new(FleetConfig::smoke()).run();
        calm.attribution
            .verify_conservation()
            .expect("calm fleet ledger must tile");
        assert_eq!(calm.deferred_commits, 0);
        assert_eq!(calm.backpressure_ns, 0);

        let choked = CheckpointFleet::new(FleetConfig::choked()).run();
        choked
            .attribution
            .verify_conservation()
            .expect("backpressured ledger must still tile");
        assert!(choked.deferred_commits > 0, "choked fleet must defer");
        assert!(choked.backpressure_ns > 0);
        let ledger_bp: u64 = choked
            .attribution
            .segments
            .iter()
            .filter(|s| s.cause == StallCause::Backpressure)
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        assert_eq!(ledger_bp, choked.backpressure_ns);
    }

    #[test]
    fn every_tenant_gets_slo_series_and_commits_complete() {
        let cfg = FleetConfig::smoke();
        let result = CheckpointFleet::new(cfg).run();
        assert_eq!(
            result.commits,
            u64::from(cfg.shards) * u64::from(cfg.intervals)
        );
        assert_eq!(
            result.slo.per_thread.len() as u32,
            cfg.total_tenants(),
            "one SLO series per tenant"
        );
        for stats in result.slo.per_thread.values() {
            assert!(stats.p99_ns > 0, "latencies must be recorded");
        }
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let a = CheckpointFleet::new(FleetConfig::smoke()).run();
        let b = CheckpointFleet::new(FleetConfig::smoke()).run();
        assert_eq!(a.nvm_phase_bytes, b.nvm_phase_bytes);
        assert_eq!(a.peak_to_mean_milli, b.peak_to_mean_milli);
        assert_eq!(a.attribution, b.attribution);
    }

    #[test]
    fn high_water_bytes_is_exact_permille() {
        let mut cfg = FleetConfig::smoke();
        cfg.staging_capacity_bytes = 10_000;
        cfg.high_water_permille = 800;
        assert_eq!(cfg.high_water_bytes(), 8000);
        cfg.staging_capacity_bytes = 1001;
        cfg.high_water_permille = 500;
        assert_eq!(cfg.high_water_bytes(), 500);
    }
}
